//! Integration tests of protocol mechanics across crates: determinism,
//! churn, protocol flags, and cache maintenance behaviour end-to-end.

use guess_suite::guess::config::Config;
use guess_suite::guess::engine::GuessSim;
use guess_suite::guess::policy::SelectionPolicy;
use guess_suite::simkit::time::SimDuration;
use simkit::sim::Runnable;

fn small(seed: u64) -> Config {
    let mut cfg = Config::small_test(seed);
    cfg.run.duration = SimDuration::from_secs(300.0);
    cfg.run.warmup = SimDuration::from_secs(80.0);
    cfg
}

#[test]
fn identical_seeds_reproduce_bit_identical_reports() {
    let a = GuessSim::new(small(11)).unwrap().run();
    let b = GuessSim::new(small(11)).unwrap().run();
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.unsatisfied, b.unsatisfied);
    assert_eq!(a.loads, b.loads);
    assert_eq!(a.good_probes.mean(), b.good_probes.mean());
    assert_eq!(a.dead_probes.mean(), b.dead_probes.mean());
    assert_eq!(a.response_time.mean(), b.response_time.mean());
    assert_eq!(a.live_fraction, b.live_fraction);
    assert_eq!(a.largest_component, b.largest_component);
    let counters_a: Vec<_> = a.counters.iter().collect();
    let counters_b: Vec<_> = b.counters.iter().collect();
    assert_eq!(counters_a, counters_b);
}

#[test]
fn population_is_constant_under_churn() {
    let mut cfg = small(12);
    cfg.system.lifespan_multiplier = 0.1;
    let report = GuessSim::new(cfg.clone()).unwrap().run();
    assert!(report.counters.get("deaths") > 50, "heavy churn expected");
    assert_eq!(
        report.counters.get("births") - report.counters.get("deaths"),
        cfg.system.network_size as u64
    );
    // Loads were recorded for every dead peer plus everyone alive at the end.
    assert_eq!(report.loads.len() as u64, report.counters.get("births"));
}

#[test]
fn introduction_probability_zero_disables_introductions() {
    let mut cfg = small(13);
    cfg.protocol.intro_prob = 0.0;
    let report = GuessSim::new(cfg).unwrap().run();
    assert_eq!(report.counters.get("introductions"), 0);

    let mut cfg_on = small(13);
    cfg_on.protocol.intro_prob = 0.5;
    let report_on = GuessSim::new(cfg_on).unwrap().run();
    assert!(report_on.counters.get("introductions") > 0);
}

#[test]
fn pings_maintain_liveness() {
    // With no queries, faster pinging yields a higher live fraction.
    let mut lazy = small(14);
    lazy.run.simulate_queries = false;
    lazy.system.lifespan_multiplier = 0.2;
    lazy.protocol.ping_interval = SimDuration::from_secs(600.0);
    let mut eager = lazy.clone();
    eager.protocol.ping_interval = SimDuration::from_secs(5.0);
    let lazy_report = GuessSim::new(lazy).unwrap().run();
    let eager_report = GuessSim::new(eager).unwrap().run();
    assert!(
        eager_report.live_fraction.unwrap() > lazy_report.live_fraction.unwrap(),
        "eager pings {:.3} must beat lazy pings {:.3}",
        eager_report.live_fraction.unwrap(),
        lazy_report.live_fraction.unwrap()
    );
    assert!(eager_report.counters.get("pings_sent") > lazy_report.counters.get("pings_sent"));
}

#[test]
fn backoff_flag_preserves_entries_on_refusal() {
    // With a choked network, DoBackoff=false evicts refused peers while
    // DoBackoff=true retains them; both must refuse a similar amount.
    let mut churnless = small(15);
    churnless.system.max_probes_per_second = Some(1);
    churnless.protocol = churnless.protocol.with_uniform_policy(SelectionPolicy::Mfs);
    let mut with_backoff = churnless.clone();
    with_backoff.protocol.do_backoff = true;
    let evicting = GuessSim::new(churnless).unwrap().run();
    let retaining = GuessSim::new(with_backoff).unwrap().run();
    assert!(evicting.refused_per_query() > 0.0);
    assert!(retaining.refused_per_query() > 0.0);
}

#[test]
fn desired_results_extend_the_search() {
    let one = GuessSim::new(small(16)).unwrap().run();
    let mut cfg = small(16);
    cfg.system.num_desired_results = 5;
    let five = GuessSim::new(cfg).unwrap().run();
    assert!(
        five.probes_per_query() > one.probes_per_query(),
        "asking for 5 results ({:.1} probes) must cost more than 1 ({:.1})",
        five.probes_per_query(),
        one.probes_per_query()
    );
    assert!(five.unsatisfaction() >= one.unsatisfaction());
}

#[test]
fn reset_num_results_changes_mr_behaviour() {
    let mut mr = small(17);
    mr.protocol = mr.protocol.with_uniform_policy(SelectionPolicy::Mr);
    let mut mr_star = mr.clone();
    mr_star.protocol.reset_num_results = true;
    let a = GuessSim::new(mr).unwrap().run();
    let b = GuessSim::new(mr_star).unwrap().run();
    // Identical seeds, different information flow: the runs must diverge.
    assert_ne!(
        (a.queries, a.probes_per_query()),
        (b.queries, b.probes_per_query()),
        "MR and MR* should not be identical"
    );
}

#[test]
fn query_rate_scales_query_volume() {
    let base = GuessSim::new(small(18)).unwrap().run();
    let mut fast = small(18);
    fast.system.query_rate *= 4.0;
    let busy = GuessSim::new(fast).unwrap().run();
    let ratio = busy.queries as f64 / base.queries.max(1) as f64;
    assert!(
        (2.0..8.0).contains(&ratio),
        "4x rate should give ~4x queries, got {ratio:.2}x"
    );
}

#[test]
fn invalid_configs_are_rejected_not_simulated() {
    let mut cfg = small(19);
    cfg.protocol.cache_size = 0;
    assert!(GuessSim::new(cfg).is_err());

    let mut cfg = small(19);
    cfg.system.network_size = 0;
    assert!(GuessSim::new(cfg).is_err());

    let mut cfg = small(19);
    cfg.run.warmup = cfg.run.duration;
    assert!(GuessSim::new(cfg).is_err());
}

#[test]
fn response_time_is_probe_interval_scaled() {
    let mut cfg = small(20);
    cfg.protocol.probe_interval = SimDuration::from_secs(0.2);
    let slow = GuessSim::new(cfg.clone()).unwrap().run();
    cfg.protocol.probe_interval = SimDuration::from_secs(0.05);
    cfg.run.seed = 20; // same seed, same probing pattern
    let fast = GuessSim::new(cfg).unwrap().run();
    assert!(
        fast.mean_response_secs() < slow.mean_response_secs(),
        "shorter probe interval must reduce response time"
    );
}
