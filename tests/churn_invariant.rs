//! Cross-engine churn invariant: every simulator on the shared kernel
//! maintains a constant population. At every kernel sample tick the
//! live-peer count must be exactly `network_size` — a death and its
//! replacement birth happen in the same event, so no tick can ever
//! observe a hole.

use gnutella::dynamic::GnutellaConfig;
use gossip::{Config as GossipConfig, GossipSim};
use guess::config::Config;
use guess::engine::GuessSim;
use simkit::sim::Runnable;
use simkit::time::SimDuration;
use simkit::trace::{RecordingSink, TraceRecord};

/// Every [`TraceRecord::Sample`] must report exactly `expect` live
/// peers, there must be samples at all, and churn must actually have
/// happened (otherwise the invariant is vacuous).
fn assert_constant_population(records: &RecordingSink, expect: u64, engine: &str, seed: u64) {
    let mut samples = 0u64;
    for (at, rec) in records.select(|r| matches!(r, TraceRecord::Sample { .. })) {
        samples += 1;
        let TraceRecord::Sample { live } = rec else {
            unreachable!()
        };
        assert_eq!(
            *live, expect,
            "{engine} seed {seed}: live count {live} != {expect} at t={at}"
        );
    }
    assert!(samples > 0, "{engine} seed {seed}: no sample ticks fired");
    let deaths = records
        .select(|r| matches!(r, TraceRecord::PeerDeath { .. }))
        .count();
    assert!(
        deaths > 0,
        "{engine} seed {seed}: no churn happened; invariant untested"
    );
}

#[test]
fn guess_live_count_stays_at_network_size_under_churn() {
    for seed in [11u64, 12] {
        let mut cfg = Config::small_test(seed);
        cfg.run.duration = SimDuration::from_secs(400.0);
        cfg.run.warmup = SimDuration::from_secs(50.0);
        cfg.run.sample_interval = SimDuration::from_secs(20.0);
        cfg.system.lifespan_multiplier = 0.1; // aggressive churn
        let n = cfg.system.network_size as u64;
        let (report, sink) = GuessSim::new(cfg).unwrap().run_traced(RecordingSink::new());
        assert!(report.counters.get("deaths") > 0);
        assert_constant_population(&sink, n, "guess", seed);
    }
}

#[test]
fn gossip_live_count_stays_at_network_size_under_churn() {
    for seed in [11u64, 12] {
        let cfg = GossipConfig::small_test(seed)
            .with_duration(SimDuration::from_secs(400.0))
            .with_warmup(SimDuration::from_secs(50.0))
            .with_sample_interval(Some(SimDuration::from_secs(20.0)))
            .with_lifespan_multiplier(0.1);
        let n = cfg.network_size as u64;
        let (report, sink) = GossipSim::new(cfg)
            .unwrap()
            .run_traced(RecordingSink::new());
        assert!(report.counters.get("deaths") > 0);
        assert_constant_population(&sink, n, "gossip", seed);
    }
}

#[test]
fn gnutella_live_count_stays_at_network_size_under_churn() {
    for seed in [11u64, 12] {
        let cfg = GnutellaConfig::small_test(seed)
            .with_warmup(SimDuration::from_secs(50.0))
            .with_sample_interval(Some(SimDuration::from_secs(20.0)))
            .with_lifespan_multiplier(0.1);
        let n = cfg.network_size as u64;
        let (report, sink) = cfg.build().unwrap().run_traced(RecordingSink::new());
        assert!(report.counters.get("deaths") > 0);
        assert_constant_population(&sink, n, "gnutella", seed);
    }
}
