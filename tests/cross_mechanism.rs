//! Cross-crate integration: GUESS and the forwarding baselines evaluated
//! on the same content model (the Figure 8 comparison, small scale).

use guess_suite::gnutella::iterative::{evaluate, DeepeningPolicy};
use guess_suite::gnutella::population::Population;
use guess_suite::gnutella::{FixedExtentCurve, Topology};
use guess_suite::guess::config::Config;
use guess_suite::guess::engine::GuessSim;
use guess_suite::guess::policy::SelectionPolicy;
use guess_suite::simkit::rng::RngStream;
use guess_suite::simkit::time::SimDuration;
use guess_suite::workload::content::CatalogParams;
use simkit::sim::Runnable;

const N: usize = 300;

fn guess_cfg(seed: u64) -> Config {
    let mut cfg = Config::small_test(seed);
    cfg.system.network_size = N;
    cfg.protocol.cache_size = 60;
    cfg.run.duration = SimDuration::from_secs(600.0);
    cfg.run.warmup = SimDuration::from_secs(150.0);
    cfg
}

#[test]
fn guess_dominates_fixed_extent() {
    // GUESS with a decent pong policy.
    let mut cfg = guess_cfg(31);
    cfg.protocol.query_pong = SelectionPolicy::Mfs;
    let guess = GuessSim::new(cfg).unwrap().run();

    // The fixed-extent mechanism on an equivalent population.
    let pop = Population::generate(N, CatalogParams::default(), 31).unwrap();
    let mut rng = RngStream::from_seed(31, "cross");
    let curve = FixedExtentCurve::evaluate(&pop, 1500, &mut rng);

    // At GUESS's average cost, fixed extent leaves far more unsatisfied.
    let budget = guess.probes_per_query().ceil() as usize;
    let fixed_unsat = curve.unsatisfaction_at(budget);
    assert!(
        fixed_unsat > guess.unsatisfaction() + 0.05,
        "at a budget of {budget} probes, fixed extent ({fixed_unsat:.3}) must trail \
         GUESS ({:.3})",
        guess.unsatisfaction()
    );

    // Conversely, matching GUESS's satisfaction costs fixed extent far more.
    if let Some(needed) = curve.extent_for_unsatisfaction(guess.unsatisfaction()) {
        assert!(
            (needed as f64) > 3.0 * guess.probes_per_query(),
            "fixed extent needs {needed} probes where GUESS spends {:.1}",
            guess.probes_per_query()
        );
    }
}

#[test]
fn iterative_deepening_sits_between() {
    let pop = Population::generate(N, CatalogParams::default(), 32).unwrap();
    let mut rng = RngStream::from_seed(32, "cross");
    let topo = Topology::random_regular(N, 4, &mut rng);
    let policy = DeepeningPolicy::new(vec![1, 2, 4, 6]).unwrap();
    let (iter_cost, iter_unsat) = evaluate(&topo, &pop, &policy, 600, 1, &mut rng);

    let curve = FixedExtentCurve::evaluate(&pop, 1500, &mut rng);
    // Fixed extent at the deepening's satisfaction level costs more than
    // the deepening itself (coarse flexibility already helps)...
    if let Some(fixed_needed) = curve.extent_for_unsatisfaction(iter_unsat + 0.01) {
        assert!(
            (fixed_needed as f64) > iter_cost * 0.8,
            "deepening (cost {iter_cost:.0}, unsat {iter_unsat:.3}) should not be \
             dominated by fixed extent ({fixed_needed})"
        );
    }

    // ...while fine-grained GUESS still beats the deepening on cost at
    // comparable satisfaction.
    let mut cfg = guess_cfg(32);
    cfg.protocol.query_pong = SelectionPolicy::Mfs;
    let guess = GuessSim::new(cfg).unwrap().run();
    assert!(
        guess.probes_per_query() < iter_cost,
        "GUESS ({:.1} probes) should undercut iterative deepening ({iter_cost:.1})",
        guess.probes_per_query()
    );
}

#[test]
fn shared_catalog_gives_equivalent_floors() {
    // The unsatisfiable floor is a property of the content model, so the
    // static population and the churning simulation should land close.
    let pop = Population::generate(1000, CatalogParams::default(), 33).unwrap();
    let mut rng = RngStream::from_seed(33, "cross");
    let curve = FixedExtentCurve::evaluate(&pop, 2000, &mut rng);
    let floor = curve.unsatisfiable_fraction();
    assert!(
        (0.01..0.12).contains(&floor),
        "calibrated floor should be near the paper's ~6%, got {floor:.3}"
    );
}
