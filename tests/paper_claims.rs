//! End-to-end assertions of the paper's qualitative claims, at reduced
//! scale. Each test names the section/figure whose conclusion it checks.

use guess_suite::guess::config::{BadPongBehavior, Config};
use guess_suite::guess::engine::GuessSim;
use guess_suite::guess::policy::SelectionPolicy;
use guess_suite::simkit::time::SimDuration;
use simkit::sim::Runnable;

fn cfg(seed: u64) -> Config {
    let mut cfg = Config::small_test(seed);
    cfg.system.network_size = 250;
    cfg.protocol.cache_size = 50;
    cfg.run.duration = SimDuration::from_secs(500.0);
    cfg.run.warmup = SimDuration::from_secs(150.0);
    cfg
}

/// §6.2 / Figures 10–11: metadata-driven policies slash probe cost.
#[test]
fn good_policies_slash_query_cost() {
    let random = GuessSim::new(cfg(1)).unwrap().run();
    let mut mfs_cfg = cfg(1);
    mfs_cfg.protocol = mfs_cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
    let mfs = GuessSim::new(mfs_cfg).unwrap().run();
    let speedup = random.probes_per_query() / mfs.probes_per_query();
    assert!(
        speedup > 3.0,
        "MFS/MFS/LFS should be several times cheaper than Random, got {speedup:.1}x"
    );
    // ...without sacrificing satisfaction.
    assert!(mfs.unsatisfaction() < random.unsatisfaction() + 0.08);
}

/// §6.1 / Figure 3: probe cost grows with cache size.
#[test]
fn probe_cost_grows_with_cache_size() {
    let run = |cache: usize| {
        let mut c = cfg(2);
        c.system.lifespan_multiplier = 0.2;
        c.protocol.cache_size = cache;
        GuessSim::new(c).unwrap().run().probes_per_query()
    };
    let small = run(10);
    let large = run(250);
    // At this reduced scale the query cache lets even tiny link caches
    // reach much of the network, so the gap is milder than Figure 3's.
    assert!(
        large > small * 1.2,
        "cache 250 ({large:.1}) should cost well above cache 10 ({small:.1})"
    );
}

/// §6.1 / Figure 5: extra probes at large cache sizes are mostly dead.
#[test]
fn large_caches_mostly_add_dead_probes() {
    let run = |cache: usize| {
        let mut c = cfg(3);
        c.system.lifespan_multiplier = 0.2;
        c.protocol.cache_size = cache;
        let r = GuessSim::new(c).unwrap().run();
        (r.good_per_query(), r.dead_per_query())
    };
    let (good_small, dead_small) = run(20);
    let (good_large, dead_large) = run(250);
    let dead_growth = dead_large - dead_small;
    let good_growth = good_large - good_small;
    assert!(
        dead_growth > good_growth,
        "dead probes (+{dead_growth:.1}) should grow faster than good (+{good_growth:.1})"
    );
}

/// §6.3 / Figure 13: efficiency-seeking policies concentrate load.
#[test]
fn mfs_concentrates_load_random_spreads_it() {
    let mut mfs_cfg = cfg(4);
    mfs_cfg.protocol.query_probe = SelectionPolicy::Mfs;
    mfs_cfg.protocol.cache_replacement = SelectionPolicy::Mfs.mirror_replacement();
    let mfs = GuessSim::new(mfs_cfg).unwrap().run();
    let random = GuessSim::new(cfg(4)).unwrap().run();

    let top_share = |loads: &[u64]| {
        let total: u64 = loads.iter().sum();
        let top: u64 = loads.iter().take(loads.len() / 20).sum();
        top as f64 / total.max(1) as f64
    };
    let mfs_share = top_share(&mfs.loads);
    let random_share = top_share(&random.loads);
    assert!(
        mfs_share > random_share,
        "top-5% share under MFS ({mfs_share:.2}) must exceed Random ({random_share:.2})"
    );
    // And Random pays far more total probes for the same workload.
    let total = |loads: &[u64]| loads.iter().sum::<u64>() as f64;
    assert!(total(&random.loads) > 2.0 * total(&mfs.loads));
}

/// §6.3 / Figures 14–15: capacity limits refuse probes without collapsing
/// satisfaction.
#[test]
fn capacity_limits_refuse_but_do_not_starve() {
    let mut limited = cfg(5);
    limited.protocol = limited.protocol.with_uniform_policy(SelectionPolicy::Mr);
    limited.system.max_probes_per_second = Some(1);
    let mut unlimited = limited.clone();
    unlimited.system.max_probes_per_second = None;
    let lim = GuessSim::new(limited).unwrap().run();
    let unlim = GuessSim::new(unlimited).unwrap().run();
    assert!(
        lim.refused_per_query() > 0.0,
        "a 1/s cap must refuse something"
    );
    assert_eq!(unlim.refused_per_query(), 0.0);
    assert!(
        lim.unsatisfaction() < unlim.unsatisfaction() + 0.12,
        "satisfaction should be barely affected: {:.3} vs {:.3}",
        lim.unsatisfaction(),
        unlim.unsatisfaction()
    );
}

/// §6.4 / Figures 16–18: without collusion, MFS collapses but MR holds.
#[test]
fn dead_ip_poisoning_breaks_mfs_not_mr() {
    let attacked = |policy: SelectionPolicy, reset: bool| {
        let mut c = cfg(6);
        c.protocol = c.protocol.with_uniform_policy(policy);
        c.protocol.reset_num_results = reset;
        c.system.bad_peer_fraction = 0.20;
        c.system.bad_pong_behavior = BadPongBehavior::Dead;
        GuessSim::new(c).unwrap().run()
    };
    let mfs = attacked(SelectionPolicy::Mfs, false);
    let mr = attacked(SelectionPolicy::Mr, false);
    assert!(
        mfs.unsatisfaction() > mr.unsatisfaction() + 0.15,
        "MFS ({:.2}) must degrade far beyond MR ({:.2}) under dead-IP poisoning",
        mfs.unsatisfaction(),
        mr.unsatisfaction()
    );
    assert!(
        mfs.good_entries.unwrap() < mr.good_entries.unwrap(),
        "MFS caches must be more poisoned than MR caches"
    );
}

/// §6.4 / Figures 19–21: under collusion MR collapses too; MR* survives.
#[test]
fn collusion_breaks_mr_but_not_mr_star() {
    let attacked = |reset: bool, seed: u64| {
        let mut c = cfg(seed);
        c.protocol = c.protocol.with_uniform_policy(SelectionPolicy::Mr);
        c.protocol.reset_num_results = reset;
        c.system.bad_peer_fraction = 0.20;
        c.system.bad_pong_behavior = BadPongBehavior::Bad;
        GuessSim::new(c).unwrap().run()
    };
    let mr = attacked(false, 7);
    let mr_star = attacked(true, 7);
    assert!(
        mr.unsatisfaction() > mr_star.unsatisfaction() + 0.1,
        "colluding attackers: MR ({:.2}) must fare worse than MR* ({:.2})",
        mr.unsatisfaction(),
        mr_star.unsatisfaction()
    );
    assert!(mr_star.good_entries.unwrap() > mr.good_entries.unwrap());
}

/// §6.2: response time falls with parallel walks at bounded extra probes.
#[test]
fn parallel_walks_trade_probes_for_latency() {
    let run = |k: usize| {
        let mut c = cfg(8);
        c.protocol.query_pong = SelectionPolicy::Mfs;
        c.protocol.parallel_probes = k;
        GuessSim::new(c).unwrap().run()
    };
    let serial = run(1);
    let walked = run(5);
    assert!(
        walked.mean_response_secs() < serial.mean_response_secs() / 2.0,
        "k=5 should cut response time at least in half: {:.2}s vs {:.2}s",
        walked.mean_response_secs(),
        serial.mean_response_secs()
    );
    assert!(
        walked.probes_per_query() < serial.probes_per_query() + 5.0,
        "k=5 costs at most ~k-1 extra probes ({:.1} vs {:.1})",
        walked.probes_per_query(),
        serial.probes_per_query()
    );
}

/// §3.3: a benign "Good" bad-pong control barely hurts anyone.
#[test]
fn good_pong_attackers_are_mostly_harmless() {
    let mut c = cfg(9);
    c.system.bad_peer_fraction = 0.20;
    c.system.bad_pong_behavior = BadPongBehavior::Good;
    let attacked = GuessSim::new(c).unwrap().run();
    let clean = GuessSim::new(cfg(9)).unwrap().run();
    assert!(
        attacked.unsatisfaction() < clean.unsatisfaction() + 0.25,
        "pointing at real good peers is weak poison: {:.2} vs clean {:.2}",
        attacked.unsatisfaction(),
        clean.unsatisfaction()
    );
}
