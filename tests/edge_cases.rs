//! Failure injection and boundary conditions for the full simulator.

use guess_suite::guess::config::{BadPongBehavior, Config};
use guess_suite::guess::engine::GuessSim;
use guess_suite::guess::policy::{ReplacementPolicy, SelectionPolicy};
use guess_suite::simkit::time::SimDuration;
use simkit::sim::Runnable;

fn base(seed: u64) -> Config {
    let mut cfg = Config::small_test(seed);
    cfg.run.duration = SimDuration::from_secs(250.0);
    cfg.run.warmup = SimDuration::from_secs(60.0);
    cfg
}

#[test]
fn extreme_churn_never_panics() {
    // Median lifetime of a few seconds: nearly every probe targets a peer
    // that is about to die or already has.
    let mut cfg = base(41);
    cfg.system.lifespan_multiplier = 0.01;
    let report = GuessSim::new(cfg).unwrap().run();
    assert!(report.counters.get("deaths") > report.counters.get("births") / 2);
    assert!(report.unsatisfaction() <= 1.0);
}

#[test]
fn unseeded_caches_strand_queries() {
    // cache_seed_size = 0: nobody knows anybody at t=0. Introductions
    // cannot bootstrap (there is no first contact), so queries find
    // nothing and connectivity is nil — the "pong server matters" story.
    let mut cfg = base(42);
    cfg.run.cache_seed_size = 0;
    let report = GuessSim::new(cfg).unwrap().run();
    assert!(
        report.unsatisfaction() > 0.95,
        "unsat {}",
        report.unsatisfaction()
    );
    assert!(report.largest_component.unwrap_or(0.0) <= 1.5);
}

#[test]
fn minimal_network_of_two_peers_works() {
    let mut cfg = base(43);
    cfg.system.network_size = 2;
    cfg.protocol.cache_size = 1;
    cfg.run.cache_seed_size = 1;
    let report = GuessSim::new(cfg).unwrap().run();
    // The run completes and produces sane numbers.
    assert!(report.queries > 0);
    assert!(report.probes_per_query() <= 2.0);
}

#[test]
fn tiny_cache_of_one_entry_is_survivable() {
    let mut cfg = base(44);
    cfg.protocol.cache_size = 1;
    cfg.run.cache_seed_size = 1;
    let report = GuessSim::new(cfg).unwrap().run();
    assert!(report.queries > 0);
    // The single pointer plus the query cache still finds some results.
    assert!(report.unsatisfaction() < 1.0);
}

#[test]
fn all_policies_complete_under_attack() {
    // Exhaustive policy × behavior matrix at tiny scale: nothing panics,
    // every report is internally consistent.
    let selections = [
        SelectionPolicy::Random,
        SelectionPolicy::Mru,
        SelectionPolicy::Lru,
        SelectionPolicy::Mfs,
        SelectionPolicy::Mr,
    ];
    let replacements = [
        ReplacementPolicy::Random,
        ReplacementPolicy::Lru,
        ReplacementPolicy::Mru,
        ReplacementPolicy::Lfs,
        ReplacementPolicy::Lr,
    ];
    for (i, &qp) in selections.iter().enumerate() {
        for (j, &cr) in replacements.iter().enumerate() {
            let mut cfg = base(100 + (i * 5 + j) as u64);
            cfg.system.network_size = 60;
            cfg.protocol.cache_size = 15;
            cfg.run.cache_seed_size = 2;
            cfg.run.duration = SimDuration::from_secs(150.0);
            cfg.run.warmup = SimDuration::from_secs(40.0);
            cfg.protocol.query_probe = qp;
            cfg.protocol.query_pong = qp;
            cfg.protocol.ping_probe = qp;
            cfg.protocol.ping_pong = qp;
            cfg.protocol.cache_replacement = cr;
            cfg.system.bad_peer_fraction = 0.15;
            cfg.system.bad_pong_behavior = if (i + j) % 2 == 0 {
                BadPongBehavior::Dead
            } else {
                BadPongBehavior::Bad
            };
            let report = GuessSim::new(cfg).unwrap().run();
            let total =
                report.good_per_query() + report.dead_per_query() + report.refused_per_query();
            assert!(
                (total - report.probes_per_query()).abs() < 1e-9,
                "probe breakdown must sum to the total for {qp:?}/{cr:?}"
            );
            assert!(report.unsatisfied <= report.queries);
        }
    }
}

#[test]
fn zero_intro_zero_pong_sized_one_still_runs() {
    let mut cfg = base(45);
    cfg.protocol.intro_prob = 0.0;
    cfg.protocol.pong_size = 1;
    let report = GuessSim::new(cfg).unwrap().run();
    assert!(report.queries > 0);
}

#[test]
fn saturated_bad_network_fails_gracefully() {
    // 80% attackers, colluding: good peers should mostly fail but the
    // simulation stays well-defined. (0.8 < 1.0 so the config is valid.)
    let mut cfg = base(46);
    cfg.system.bad_peer_fraction = 0.8;
    cfg.system.bad_pong_behavior = BadPongBehavior::Bad;
    cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
    let report = GuessSim::new(cfg).unwrap().run();
    assert!(
        report.unsatisfaction() > 0.3,
        "a saturated attack must hurt"
    );
}

#[test]
fn long_ping_interval_with_tiny_cache_fragments() {
    let mut cfg = base(47);
    cfg.run.simulate_queries = false;
    cfg.run.duration = SimDuration::from_secs(900.0);
    cfg.run.warmup = SimDuration::from_secs(400.0);
    cfg.system.lifespan_multiplier = 0.05; // several generations die off
    cfg.protocol.cache_size = 4;
    cfg.run.cache_seed_size = 2;
    cfg.protocol.ping_interval = SimDuration::from_secs(3000.0);
    let report = GuessSim::new(cfg.clone()).unwrap().run();
    let lcc = report.largest_component.unwrap();
    assert!(
        lcc < cfg.system.network_size as f64 * 0.85,
        "neglected 4-entry caches must fragment, LCC {lcc}"
    );
}

#[test]
fn burst_sizes_multiply_queries() {
    // The burst model emits 1..=5 queries per burst; the total query
    // count must exceed the number of bursts processed.
    let report = GuessSim::new(base(48)).unwrap().run();
    assert!(report.queries > 0);
    // Mean burst size is 3, so queries ≈ 3 × bursts; just sanity-check
    // that multiple queries happen per peer on average.
    let n = Config::small_test(48).system.network_size as u64;
    assert!(report.queries > n / 2);
}
