#!/usr/bin/env bash
# CI-style verification: build, test, then smoke-run the repro driver in
# parallel with JSON output and check the artifacts exist and parse.
set -euo pipefail
cd "$(dirname "$0")/.."

out=/tmp/repro-ci

cargo build --release --workspace
cargo test -q --workspace
cargo run --release -p guess-bench --bin repro -- \
    table3 fig9 --quick --jobs 2 --json --out "$out"

for name in table3 fig9; do
    for ext in txt json; do
        [ -s "$out/$name.$ext" ] || { echo "missing $out/$name.$ext" >&2; exit 1; }
    done
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/$name.json"
done
echo "verify: OK"
