#!/usr/bin/env bash
# CI-style verification: lint, build, test, then smoke-run the repro
# driver in parallel with JSON output and a traced run, checking that
# every artifact exists and parses.
set -euo pipefail
cd "$(dirname "$0")/.."

out=/tmp/repro-ci

cargo fmt --all -- --check
cargo clippy --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
cargo test --doc --workspace -q

# Determinism gates (gossip included) and the quick-scale golden guard:
# every experiment's quick report must stay byte-identical to the
# committed manifest (tests/golden/quick.fnv1a.txt).
cargo test -q --release -p guess-bench --test determinism
cargo test -q --release -p guess-bench --test quick_goldens -- --ignored

cargo run --release -p guess-bench --bin repro -- \
    table3 fig9 --quick --jobs 2 --json --out "$out"

for name in table3 fig9; do
    for ext in txt json; do
        [ -s "$out/$name.$ext" ] || { echo "missing $out/$name.$ext" >&2; exit 1; }
    done
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/$name.json"
done

# Traced runs: the binary itself reconciles each trace against the run
# report (exits non-zero on mismatch); then check every line is JSON.
cargo run --release -p guess-bench --bin repro -- --trace "$out/trace.jsonl" --quick
cargo run --release -p guess-bench --bin repro -- \
    --trace "$out/gossip-trace.jsonl" --engine gossip --quick
for trace in trace gossip-trace; do
    python3 - "$out/$trace.jsonl" <<'EOF'
import json, sys
n = 0
with open(sys.argv[1]) as f:
    for line in f:
        json.loads(line)
        n += 1
assert n > 0, "empty trace"
print(f"{sys.argv[1]}: {n} well-formed JSONL records")
EOF
done
echo "verify: OK"
