#!/usr/bin/env bash
# CI-style verification: lint, build, test, then smoke-run the repro
# driver in parallel with JSON output and a traced run, checking that
# every artifact exists and parses.
set -euo pipefail
cd "$(dirname "$0")/.."

out=/tmp/repro-ci

cargo fmt --all -- --check
cargo clippy --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
cargo test --doc --workspace -q

# Determinism gates (gossip included) and the quick-scale golden guard:
# every experiment's quick report must stay byte-identical to the
# committed manifest (tests/golden/quick.fnv1a.txt).
cargo test -q --release -p guess-bench --test determinism
cargo test -q --release -p guess-bench --test quick_goldens -- --ignored

# Scenario gates: an empty timeline is byte-identical to a plain run on
# every engine, the seven-entry catalog (push-storm included) matches
# its own committed manifest (tests/golden/scenarios.fnv1a.txt), and a
# catalog entry renders identically across --jobs levels.
cargo test -q --release -p guess-bench --test scenario_noop
cargo test -q --release -p guess-bench --test scenario_goldens -- --ignored

# Scenario CLI smoke: one catalog entry end to end through the repro
# driver, with the text artifact present and the JSON parsing.
rm -rf "$out/scenarios"
cargo run --release -p guess-bench --bin repro -- \
    scenario param-flip --quick --jobs 2 --json --out "$out/scenarios"
[ -s "$out/scenarios/param-flip.txt" ] || { echo "missing $out/scenarios/param-flip.txt" >&2; exit 1; }
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/scenarios/param-flip.json"

# Maintenance-plane gate: the CUP-style experiment's quick golden is
# pinned in quick.fnv1a.txt with the rest of the registry; here, the
# report must additionally be byte-identical across --jobs levels, which
# (with the manifest) pins that the default pull mode leaves every other
# report's RNG streams untouched.
rm -rf "$out/maint-j1" "$out/maint-j4"
cargo run --release -p guess-bench --bin repro -- \
    maintenance --quick --jobs 1 --out "$out/maint-j1"
cargo run --release -p guess-bench --bin repro -- \
    maintenance --quick --jobs 4 --out "$out/maint-j4"
diff "$out/maint-j1/maintenance.txt" "$out/maint-j4/maintenance.txt"
echo "maintenance gate: quick report byte-identical at --jobs 1 and 4"

# Parallel-kernel gates. The lanes=1 serial-identity properties run in
# the plain workspace suite above; here the quick-scale contract gets
# its release run: with lanes > 1 the report must be byte-identical at
# --threads 1 and 4 on the bench configs (output is a pure function of
# (seed, lanes), never of the worker count).
cargo test -q --release -p guess-bench --test thread_identity -- --ignored

# Threaded bench smoke: --threads through the CLI produces both the
# serial row and the lane-mode @tN row, with the threads column wired.
rm -rf "$out/bench-threads"
cargo run --release -p guess-bench --bin repro -- \
    bench --quick --iters 1 --only guess-quick --threads 1,4 --out "$out/bench-threads"
python3 - "$out/bench-threads/BENCH_0.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
table = next(b for b in doc["blocks"] if b.get("type") == "table")
cols = table["columns"]
for needed in ("workload", "threads", "cores"):
    assert needed in cols, f"{needed} column missing: {cols}"
w, t = cols.index("workload"), cols.index("threads")
rows = {row[w]: int(row[t]) for row in table["rows"]}
assert rows == {"guess-quick": 1, "guess-quick@t4": 4}, f"unexpected rows: {rows}"
print("bench gate: --threads 1,4 emitted serial and @t4 rows")
EOF

# Bench smoke gate: the quick workload matrix completes under a generous
# ceiling, emits valid BENCH JSON, and no quick workload's median has
# regressed by more than 2x against the committed baseline (BENCH_2 —
# the post-wavefront trajectory point).
cargo test -q --release -p guess-bench --test bench_smoke -- --ignored
rm -rf "$out/bench"
cargo run --release -p guess-bench --bin repro -- bench --quick --iters 3 --out "$out/bench"
python3 - "$out/bench/BENCH_0.json" BENCH_2.json <<'EOF'
import json, sys

def medians(path):
    doc = json.load(open(path))
    table = next(b for b in doc["blocks"] if b.get("type") == "table")
    cols = table["columns"]
    w, m = cols.index("workload"), cols.index("median_s")
    return {row[w]: row[m] for row in table["rows"]}

fresh, base = medians(sys.argv[1]), medians(sys.argv[2])
bad = []
for name, got in fresh.items():
    want = base.get(name)
    assert want is not None, f"workload {name} missing from committed baseline"
    print(f"bench gate: {name:<16} committed {want:.4f}s  fresh {got:.4f}s")
    if got > 2.0 * want:
        bad.append(f"{name}: {got:.4f}s vs committed {want:.4f}s (>2x)")
assert not bad, "bench medians regressed:\n" + "\n".join(bad)

# Memory accounting: every fresh row must carry a positive
# bytes_per_peer figure from the counting allocator.
doc = json.load(open(sys.argv[1]))
table = next(b for b in doc["blocks"] if b.get("type") == "table")
cols = table["columns"]
assert "bytes_per_peer" in cols, f"bytes_per_peer column missing: {cols}"
b = cols.index("bytes_per_peer")
for row in table["rows"]:
    assert int(row[b]) > 0, f"non-positive bytes_per_peer in row {row}"
print(f"bench gate: bytes_per_peer present on {len(table['rows'])} row(s)")
EOF

# Per-engine gate through the --only filter: the gnutella wavefront path
# is checked in isolation so a regression there cannot hide behind the
# aggregate matrix (and the filter plumbing itself stays exercised).
rm -rf "$out/bench-gnutella"
cargo run --release -p guess-bench --bin repro -- \
    bench --quick --iters 3 --only gnutella-quick --out "$out/bench-gnutella"
python3 - "$out/bench-gnutella/BENCH_0.json" BENCH_2.json <<'EOF'
import json, sys

def medians(path):
    doc = json.load(open(path))
    table = next(b for b in doc["blocks"] if b.get("type") == "table")
    cols = table["columns"]
    w, m = cols.index("workload"), cols.index("median_s")
    return {row[w]: row[m] for row in table["rows"]}

fresh, base = medians(sys.argv[1]), medians(sys.argv[2])
assert set(fresh) == {"gnutella-quick"}, f"--only filter leaked: {sorted(fresh)}"
got, want = fresh["gnutella-quick"], base["gnutella-quick"]
print(f"bench gate: gnutella-quick (solo) committed {want:.4f}s  fresh {got:.4f}s")
assert got <= 2.0 * want, f"gnutella-quick regressed: {got:.4f}s vs {want:.4f}s (>2x)"
EOF

cargo run --release -p guess-bench --bin repro -- \
    table3 fig9 --quick --jobs 2 --json --out "$out"

for name in table3 fig9; do
    for ext in txt json; do
        [ -s "$out/$name.$ext" ] || { echo "missing $out/$name.$ext" >&2; exit 1; }
    done
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out/$name.json"
done

# Shard-determinism gate: splitting a grid across --shard invocations
# and taking the union of the output files must be byte-identical to
# the unsharded run (seed-addressed determinism makes merging trivial).
rm -rf "$out/shard-all" "$out/shard-0" "$out/shard-1" "$out/shard-merged"
cargo run --release -p guess-bench --bin repro -- \
    table3 fig9 forwarding3 --quick --jobs 2 --json --out "$out/shard-all"
cargo run --release -p guess-bench --bin repro -- \
    table3 fig9 forwarding3 --quick --jobs 2 --json --shard 0/2 --out "$out/shard-0"
cargo run --release -p guess-bench --bin repro -- \
    table3 fig9 forwarding3 --quick --jobs 2 --json --shard 1/2 --out "$out/shard-1"
mkdir -p "$out/shard-merged"
cp "$out/shard-0"/* "$out/shard-1"/* "$out/shard-merged/"
diff -r "$out/shard-all" "$out/shard-merged"
echo "shard gate: 0/2 + 1/2 merge is byte-identical to the unsharded grid"

# Traced runs: the binary itself reconciles each trace against the run
# report (exits non-zero on mismatch); then check every line is JSON.
cargo run --release -p guess-bench --bin repro -- --trace "$out/trace.jsonl" --quick
cargo run --release -p guess-bench --bin repro -- \
    --trace "$out/gossip-trace.jsonl" --engine gossip --quick
for trace in trace gossip-trace; do
    python3 - "$out/$trace.jsonl" <<'EOF'
import json, sys
n = 0
with open(sys.argv[1]) as f:
    for line in f:
        json.loads(line)
        n += 1
assert n > 0, "empty trace"
print(f"{sys.argv[1]}: {n} well-formed JSONL records")
EOF
done
echo "verify: OK"
