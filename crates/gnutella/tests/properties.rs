//! Property-style tests for the forwarding baselines.
//!
//! Driven by `RngStream` instead of proptest (offline build environment):
//! each test runs many randomized cases from a fixed seed.

use gnutella::fixed::FixedExtentCurve;
use gnutella::flood::flood;
use gnutella::iterative::{iterative_deepening, DeepeningPolicy};
use gnutella::population::Population;
use gnutella::topology::Topology;
use gnutella::wavefront::{advance, VisitTable};
use simkit::rng::RngStream;
use workload::content::CatalogParams;

fn small_catalog() -> CatalogParams {
    CatalogParams {
        items: 1500,
        ..CatalogParams::default()
    }
}

/// Generated topologies have no self loops and symmetric adjacency.
#[test]
fn topologies_are_simple_and_symmetric() {
    let mut gen = RngStream::from_seed(0x31, "cases");
    for _ in 0..24 {
        let n = 10 + gen.below(140);
        let k = (1 + gen.below(5)).min(n - 1);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let t = Topology::random_regular(n, k, &mut rng);
        for u in 0..n {
            for &v in t.neighbors(u) {
                assert_ne!(v as usize, u, "self loop");
                assert!(
                    t.neighbors(v as usize).contains(&(u as u32)),
                    "asymmetric edge"
                );
            }
        }
    }
}

/// BFS reach grows monotonically with TTL and never exceeds n.
#[test]
fn bfs_reach_monotone() {
    let mut gen = RngStream::from_seed(0x32, "cases");
    for _ in 0..24 {
        let n = 10 + gen.below(190);
        let src = gen.below(n);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let t = Topology::random_regular(n, 3, &mut rng);
        let mut last = 0;
        for ttl in 0..10 {
            let reach = t.bfs_within(src, ttl).len();
            assert!(reach >= last);
            assert!(reach <= n);
            last = reach;
        }
    }
}

/// Flood results are bounded by the target's replication, and message
/// count is at least the delivery count.
#[test]
fn flood_invariants() {
    let mut gen = RngStream::from_seed(0x33, "cases");
    for _ in 0..24 {
        let n = 20 + gen.below(130);
        let ttl = gen.below(8);
        let seed = gen.next_u64();
        let mut rng = RngStream::from_seed(seed, "prop");
        let topo = Topology::random_regular(n, 3, &mut rng);
        let pop = Population::generate(n, small_catalog(), seed).unwrap();
        let target = pop.sample_target(&mut rng);
        let out = flood(&topo, &pop, 0, ttl, target);
        assert!(out.peers_reached < n);
        assert!(out.results <= pop.holders(target));
        assert!(out.messages >= out.peers_reached);
    }
}

/// The fixed-extent unsatisfaction curve is non-increasing and ends at the
/// unsatisfiable floor.
#[test]
fn fixed_extent_curve_monotone() {
    let mut gen = RngStream::from_seed(0x34, "cases");
    for _ in 0..24 {
        let n = 20 + gen.below(130);
        let seed = gen.next_u64();
        let pop = Population::generate(n, small_catalog(), seed).unwrap();
        let mut rng = RngStream::from_seed(seed, "prop");
        let curve = FixedExtentCurve::evaluate(&pop, 150, &mut rng);
        let mut last = 1.0f64;
        for e in 0..=n {
            let u = curve.unsatisfaction_at(e);
            assert!(u <= last + 1e-12);
            last = u;
        }
        assert!((curve.unsatisfaction_at(n) - curve.unsatisfiable_fraction()).abs() < 1e-12);
    }
}

/// Runs a whole TTL flood through the wavefront hop loop — the same
/// frontier/`advance` structure the dynamic engine drives one kernel
/// event per hop — and returns the discovery order (peer, hop depth)
/// plus the total message count.
fn wavefront_flood(
    topo: &Topology,
    src: usize,
    ttl: usize,
    visits: &mut VisitTable,
) -> (Vec<(usize, usize)>, u64) {
    let token = visits.token();
    visits.visit(src as u32, token);
    let mut order = vec![(src, 0usize)];
    let mut frontier = vec![src as u32];
    let mut next = Vec::new();
    let mut messages = 0u64;
    for hop in 1..=ttl {
        next.clear();
        messages += advance(
            &frontier,
            &mut next,
            visits,
            token,
            |u| topo.neighbors(u as usize),
            |v, first| {
                if first {
                    order.push((v as usize, hop));
                }
            },
        );
        std::mem::swap(&mut frontier, &mut next);
        if frontier.is_empty() {
            break;
        }
    }
    (order, messages)
}

/// The wavefront loop reproduces the `bfs_within` oracle exactly on
/// every generator family: same peers, same hop counts, same discovery
/// order. Its message count equals the degree sum of the expanded peers
/// (everyone at depth < TTL forwards to all neighbors).
#[test]
fn wavefront_matches_bfs_oracle() {
    let mut gen = RngStream::from_seed(0x36, "cases");
    for case in 0..36 {
        let n = 12 + gen.below(140);
        let src = gen.below(n);
        let ttl = gen.below(9);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let topo = match case % 3 {
            0 => Topology::random_regular(n, 1 + gen.below(4), &mut rng),
            1 => Topology::erdos_renyi(n, 0.05, &mut rng),
            _ => Topology::preferential_attachment(n, 2, &mut rng),
        };
        let mut visits = VisitTable::new(n);
        let (order, messages) = wavefront_flood(&topo, src, ttl, &mut visits);
        let oracle = topo.bfs_within(src, ttl);
        assert_eq!(order, oracle, "case {case}: discovery order diverged");
        let expected: u64 = oracle
            .iter()
            .filter(|&&(_, d)| d < ttl)
            .map(|&(u, _)| topo.degree(u) as u64)
            .sum();
        assert_eq!(messages, expected, "case {case}: message tally diverged");
    }
}

/// Recycling one `VisitTable` across consecutive floods (a fresh token
/// per query, as the engine's slab does) leaves no stale stamps: every
/// query matches a run with a brand-new table.
#[test]
fn stamp_reuse_matches_fresh_tables() {
    let mut gen = RngStream::from_seed(0x37, "cases");
    for _ in 0..12 {
        let n = 20 + gen.below(120);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let topo = Topology::random_regular(n, 3, &mut rng);
        let mut shared = VisitTable::new(n);
        for q in 0..8 {
            let src = gen.below(n);
            let ttl = gen.below(7);
            let reused = wavefront_flood(&topo, src, ttl, &mut shared);
            let from_fresh = wavefront_flood(&topo, src, ttl, &mut VisitTable::new(n));
            assert_eq!(reused, from_fresh, "query {q}: recycled stamps leaked");
        }
    }
}

/// Iterative deepening never reports success without enough results, and
/// its cost is the sum of ring sizes up to the stopping iteration.
#[test]
fn deepening_accounting() {
    let mut gen = RngStream::from_seed(0x35, "cases");
    for _ in 0..24 {
        let n = 20 + gen.below(100);
        let seed = gen.next_u64();
        let mut rng = RngStream::from_seed(seed, "prop");
        let topo = Topology::random_regular(n, 3, &mut rng);
        let pop = Population::generate(n, small_catalog(), seed).unwrap();
        let policy = DeepeningPolicy::new(vec![1, 2, 4]).unwrap();
        let target = pop.sample_target(&mut rng);
        let out = iterative_deepening(&topo, &pop, &policy, 0, target, 1);
        assert_eq!(out.satisfied, out.results >= 1);
        let mut expected_cost = 0;
        for (i, &ttl) in policy.ttls().iter().enumerate() {
            if i >= out.iterations {
                break;
            }
            expected_cost += topo.bfs_within(0, ttl).len() - 1;
        }
        assert_eq!(out.probe_cost, expected_cost);
    }
}
