//! Property-based tests for the forwarding baselines.

use proptest::prelude::*;

use gnutella::fixed::FixedExtentCurve;
use gnutella::flood::flood;
use gnutella::iterative::{iterative_deepening, DeepeningPolicy};
use gnutella::population::Population;
use gnutella::topology::Topology;
use simkit::rng::RngStream;
use workload::content::CatalogParams;

fn small_catalog() -> CatalogParams {
    CatalogParams { items: 1500, ..CatalogParams::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generated topologies have no self loops and symmetric adjacency.
    #[test]
    fn topologies_are_simple_and_symmetric(seed in any::<u64>(), n in 10usize..150, k in 1usize..6) {
        prop_assume!(k < n);
        let mut rng = RngStream::from_seed(seed, "prop");
        let t = Topology::random_regular(n, k, &mut rng);
        for u in 0..n {
            for &v in t.neighbors(u) {
                prop_assert_ne!(v as usize, u, "self loop");
                prop_assert!(t.neighbors(v as usize).contains(&(u as u32)), "asymmetric edge");
            }
        }
    }

    /// BFS reach grows monotonically with TTL and never exceeds n.
    #[test]
    fn bfs_reach_monotone(seed in any::<u64>(), n in 10usize..200, src in 0usize..200) {
        prop_assume!(src < n);
        let mut rng = RngStream::from_seed(seed, "prop");
        let t = Topology::random_regular(n, 3, &mut rng);
        let mut last = 0;
        for ttl in 0..10 {
            let reach = t.bfs_within(src, ttl).len();
            prop_assert!(reach >= last);
            prop_assert!(reach <= n);
            last = reach;
        }
    }

    /// Flood results are bounded by the target's replication, and message
    /// count is at least the delivery count.
    #[test]
    fn flood_invariants(seed in any::<u64>(), n in 20usize..150, ttl in 0usize..8) {
        let mut rng = RngStream::from_seed(seed, "prop");
        let topo = Topology::random_regular(n, 3, &mut rng);
        let pop = Population::generate(n, small_catalog(), seed).unwrap();
        let target = pop.sample_target(&mut rng);
        let out = flood(&topo, &pop, 0, ttl, target);
        prop_assert!(out.peers_reached < n);
        prop_assert!(out.results <= pop.holders(target));
        prop_assert!(out.messages >= out.peers_reached);
    }

    /// The fixed-extent unsatisfaction curve is non-increasing and ends at
    /// the unsatisfiable floor.
    #[test]
    fn fixed_extent_curve_monotone(seed in any::<u64>(), n in 20usize..150) {
        let pop = Population::generate(n, small_catalog(), seed).unwrap();
        let mut rng = RngStream::from_seed(seed, "prop");
        let curve = FixedExtentCurve::evaluate(&pop, 150, &mut rng);
        let mut last = 1.0f64;
        for e in 0..=n {
            let u = curve.unsatisfaction_at(e);
            prop_assert!(u <= last + 1e-12);
            last = u;
        }
        prop_assert!((curve.unsatisfaction_at(n) - curve.unsatisfiable_fraction()).abs() < 1e-12);
    }

    /// Iterative deepening never reports success without enough results,
    /// and its cost is the sum of ring sizes up to the stopping iteration.
    #[test]
    fn deepening_accounting(seed in any::<u64>(), n in 20usize..120) {
        let mut rng = RngStream::from_seed(seed, "prop");
        let topo = Topology::random_regular(n, 3, &mut rng);
        let pop = Population::generate(n, small_catalog(), seed).unwrap();
        let policy = DeepeningPolicy::new(vec![1, 2, 4]).unwrap();
        let target = pop.sample_target(&mut rng);
        let out = iterative_deepening(&topo, &pop, &policy, 0, target, 1);
        prop_assert_eq!(out.satisfied, out.results >= 1);
        let mut expected_cost = 0;
        for (i, &ttl) in policy.ttls().iter().enumerate() {
            if i >= out.iterations { break; }
            expected_cost += topo.bfs_within(0, ttl).len() - 1;
        }
        prop_assert_eq!(out.probe_cost, expected_cost);
    }
}
