//! Overlay topologies for forwarding-based search.
//!
//! Gnutella's flood reaches whichever peers sit within a TTL radius of the
//! querier, so its behaviour is a function of the overlay graph. This
//! module provides the generators the literature uses: near-regular random
//! graphs (each peer opens `k` connections), Erdős–Rényi, and preferential
//! attachment (the power-law shape measured on the real network).

use simkit::rng::RngStream;

/// An undirected overlay graph over `n` peers.
///
/// # Examples
///
/// ```
/// use gnutella::topology::Topology;
/// use simkit::rng::RngStream;
///
/// let mut rng = RngStream::from_seed(1, "doc");
/// let topo = Topology::random_regular(100, 4, &mut rng);
/// assert_eq!(topo.len(), 100);
/// assert!(topo.degree(0) >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    adj: Vec<Vec<u32>>,
}

impl Topology {
    /// Builds a graph where every peer initiates `k` connections to
    /// distinct random others (degrees concentrate around `2k`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `k == 0` or `k >= n`.
    #[must_use]
    pub fn random_regular(n: usize, k: usize, rng: &mut RngStream) -> Self {
        assert!(n >= 2 && k >= 1 && k < n, "need 2 <= k+1 <= n");
        let mut adj: Vec<Vec<u32>> = vec![Vec::with_capacity(2 * k); n];
        for u in 0..n {
            let mut attempts = 0;
            let mut made = 0;
            while made < k && attempts < 20 * k {
                attempts += 1;
                let v = rng.below(n);
                if v == u || adj[u].contains(&(v as u32)) {
                    continue;
                }
                adj[u].push(v as u32);
                adj[v].push(u as u32);
                made += 1;
            }
        }
        Topology { adj }
    }

    /// Erdős–Rényi `G(n, p)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    #[must_use]
    pub fn erdos_renyi(n: usize, p: f64, rng: &mut RngStream) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.chance(p) {
                    adj[u].push(v as u32);
                    adj[v].push(u as u32);
                }
            }
        }
        Topology { adj }
    }

    /// Barabási–Albert preferential attachment: each newcomer attaches `m`
    /// edges, preferring high-degree targets — yields the power-law degree
    /// distribution observed on Gnutella.
    ///
    /// # Panics
    ///
    /// Panics if `n <= m` or `m == 0`.
    #[must_use]
    pub fn preferential_attachment(n: usize, m: usize, rng: &mut RngStream) -> Self {
        assert!(m >= 1 && n > m, "need n > m >= 1");
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        // Repeated-endpoint list: sampling uniformly from it is sampling
        // proportional to degree.
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
        // Start from a small clique of m+1 nodes.
        for u in 0..=m {
            for v in (u + 1)..=m {
                adj[u].push(v as u32);
                adj[v].push(u as u32);
                endpoints.push(u as u32);
                endpoints.push(v as u32);
            }
        }
        for u in (m + 1)..n {
            let mut chosen: Vec<u32> = Vec::with_capacity(m);
            let mut guard = 0;
            while chosen.len() < m && guard < 50 * m {
                guard += 1;
                let v = endpoints[rng.below(endpoints.len())];
                if v as usize != u && !chosen.contains(&v) {
                    chosen.push(v);
                }
            }
            for v in chosen {
                adj[u].push(v);
                adj[v as usize].push(u as u32);
                endpoints.push(u as u32);
                endpoints.push(v);
            }
        }
        Topology { adj }
    }

    /// Number of peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns true if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Degree of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// Total number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Peers reachable from `src` within `ttl` hops (the flood horizon),
    /// including `src` itself, in BFS order, paired with their hop count.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    #[must_use]
    pub fn bfs_within(&self, src: usize, ttl: usize) -> Vec<(usize, usize)> {
        assert!(src < self.adj.len(), "source out of range");
        let mut dist = vec![usize::MAX; self.adj.len()];
        let mut order = Vec::new();
        let mut frontier = std::collections::VecDeque::new();
        dist[src] = 0;
        frontier.push_back(src);
        while let Some(u) = frontier.pop_front() {
            order.push((u, dist[u]));
            if dist[u] == ttl {
                continue;
            }
            for &v in &self.adj[u] {
                let v = v as usize;
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    frontier.push_back(v);
                }
            }
        }
        order
    }

    /// Returns true if every node can reach every other.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        self.bfs_within(0, usize::MAX).len() == self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::from_seed(42, "topo")
    }

    #[test]
    fn random_regular_has_expected_shape() {
        let mut r = rng();
        let t = Topology::random_regular(500, 4, &mut r);
        assert_eq!(t.len(), 500);
        // Each node initiated ~4, receives ~4 on average.
        let avg: f64 = (0..500).map(|u| t.degree(u) as f64).sum::<f64>() / 500.0;
        assert!((7.0..9.0).contains(&avg), "average degree {avg}");
        assert!(
            t.is_connected(),
            "k=4 random graph on 500 nodes should connect"
        );
    }

    #[test]
    fn no_self_loops_or_duplicate_edges_in_regular() {
        let mut r = rng();
        let t = Topology::random_regular(100, 3, &mut r);
        for u in 0..100 {
            let mut ns = t.neighbors(u).to_vec();
            assert!(!ns.contains(&(u as u32)), "self loop at {u}");
            let before = ns.len();
            ns.sort_unstable();
            ns.dedup();
            assert_eq!(ns.len(), before, "duplicate edge at {u}");
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut r = rng();
        let empty = Topology::erdos_renyi(20, 0.0, &mut r);
        assert_eq!(empty.edge_count(), 0);
        let full = Topology::erdos_renyi(20, 1.0, &mut r);
        assert_eq!(full.edge_count(), 20 * 19 / 2);
    }

    #[test]
    fn preferential_attachment_is_power_law_ish() {
        let mut r = rng();
        let t = Topology::preferential_attachment(2000, 3, &mut r);
        let mut degrees: Vec<usize> = (0..2000).map(|u| t.degree(u)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs should dwarf the median degree.
        assert!(
            degrees[0] >= 5 * degrees[1000],
            "max degree {} vs median {}",
            degrees[0],
            degrees[1000]
        );
        assert!(t.is_connected());
    }

    #[test]
    fn bfs_respects_ttl() {
        // A path graph 0-1-2-3-4 via ER would be flaky; build manually
        // through the public generator instead: use a 2-node graph.
        let mut r = rng();
        let t = Topology::random_regular(50, 2, &mut r);
        let zero = t.bfs_within(7, 0);
        assert_eq!(zero, vec![(7, 0)], "ttl 0 reaches only the source");
        let one = t.bfs_within(7, 1);
        assert_eq!(one.len(), 1 + t.degree(7));
        assert!(one.iter().all(|&(_, d)| d <= 1));
    }

    #[test]
    fn bfs_reach_is_monotone_in_ttl() {
        let mut r = rng();
        let t = Topology::random_regular(300, 3, &mut r);
        let mut last = 0;
        for ttl in 0..8 {
            let reach = t.bfs_within(0, ttl).len();
            assert!(reach >= last, "reach shrank at ttl {ttl}");
            last = reach;
        }
        assert_eq!(last, 300, "ttl 7 should cover a 300-node random graph");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_rejects_bad_source() {
        let mut r = rng();
        let t = Topology::random_regular(10, 2, &mut r);
        let _ = t.bfs_within(10, 1);
    }
}
