//! Generation-stamped wavefront primitives for batched flooding.
//!
//! A TTL flood is structurally per-hop: every hop expands a frontier of
//! newly reached peers across their adjacency lists. The dynamic engine
//! therefore executes floods one *hop* per kernel event rather than one
//! message per event, and this module holds the two pieces that make a
//! hop cheap:
//!
//! * [`VisitTable`] — a dense visited set keyed by slot index, reset in
//!   O(1) by bumping a generation token instead of clearing storage
//!   (the slab/stamp idiom from the perf pass);
//! * [`advance`] — one frontier expansion over slot-indexed adjacency
//!   slices, reporting every transmission to a caller hook so trace
//!   emission and result counting stay outside the loop structure.
//!
//! The expansion visits frontier peers in order and each peer's
//! neighbors in adjacency order, so the discovery sequence is exactly
//! the breadth-first order the old per-message loop produced — that is
//! what keeps report aggregates and trace records byte-identical.

/// A dense visited set over peer slots with O(1) whole-set reset.
///
/// Each slot holds the token of the last flood that visited it; a slot
/// is "visited" under token `t` iff its stamp equals `t`. Starting a
/// new flood is just [`VisitTable::token`] — no clearing, no per-query
/// allocation.
#[derive(Debug, Clone)]
pub struct VisitTable {
    stamps: Vec<u64>,
    next_token: u64,
}

impl VisitTable {
    /// A table covering `n` peer slots, all unvisited.
    #[must_use]
    pub fn new(n: usize) -> Self {
        VisitTable {
            // Tokens start at 1, so the zero-initialised stamps mean
            // "never visited" without a sentinel check.
            stamps: vec![0; n],
            next_token: 0,
        }
    }

    /// Issues a fresh generation token; every slot appears unvisited
    /// under it.
    pub fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Grows the table to cover `n` slots (no-op when it already does).
    /// New slots start never-visited. Mass-join interventions add peers
    /// past the size the table was built with; recycled slab tables
    /// must be told about them before their next flood.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.stamps.len() {
            self.stamps.resize(n, 0);
        }
    }

    /// Marks `slot` visited under `token`, returning `true` iff this is
    /// the first visit of this generation.
    #[inline]
    pub fn visit(&mut self, slot: u32, token: u64) -> bool {
        let stamp = &mut self.stamps[slot as usize];
        if *stamp == token {
            false
        } else {
            *stamp = token;
            true
        }
    }

    /// True iff `slot` has been visited under `token`.
    #[must_use]
    pub fn seen(&self, slot: u32, token: u64) -> bool {
        self.stamps[slot as usize] == token
    }

    /// Number of tracked slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True iff the table tracks no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }
}

/// Expands one flood hop: every frontier peer forwards to all of its
/// neighbors, and first-time receivers form the next frontier.
///
/// `on_probe(receiver, first_visit)` fires once per transmission, in
/// the exact order the old per-message loop produced them (frontier
/// order, then adjacency order), *after* the receiver's visit stamp is
/// updated — so the hook sees the same first/duplicate classification
/// the visited-set insert used to return. Returns the number of
/// transmissions (the hop's message count, duplicates included).
///
/// `next` is appended to, not cleared — callers clear it between hops
/// so the buffer's capacity is reused across the whole run.
pub fn advance<'a, N, P>(
    frontier: &[u32],
    next: &mut Vec<u32>,
    visits: &mut VisitTable,
    token: u64,
    neighbors: N,
    on_probe: P,
) -> u64
where
    N: Fn(u32) -> &'a [u32],
    P: FnMut(u32, bool),
{
    advance_filtered(
        frontier,
        next,
        visits,
        token,
        neighbors,
        |_, _| true,
        on_probe,
    )
}

/// As [`advance`], but each transmission `u → v` first passes through
/// `edge_ok(u, v)`; an edge the filter rejects is not sent at all — not
/// counted as a message, not reported to `on_probe`, and its receiver
/// stays unvisited (by *this* edge). Network partitions use this to
/// drop cross-group messages while leaving the overlay's adjacency
/// intact, so a heal restores the original links. With an always-true
/// filter this is exactly [`advance`].
pub fn advance_filtered<'a, N, F, P>(
    frontier: &[u32],
    next: &mut Vec<u32>,
    visits: &mut VisitTable,
    token: u64,
    neighbors: N,
    mut edge_ok: F,
    mut on_probe: P,
) -> u64
where
    N: Fn(u32) -> &'a [u32],
    F: FnMut(u32, u32) -> bool,
    P: FnMut(u32, bool),
{
    let mut messages = 0u64;
    for &u in frontier {
        for &v in neighbors(u) {
            if !edge_ok(u, v) {
                continue;
            }
            messages += 1;
            let first = visits.visit(v, token);
            on_probe(v, first);
            if first {
                next.push(v);
            }
        }
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 5-cycle: 0-1-2-3-4-0, adjacency in index order.
    fn cycle5() -> Vec<Vec<u32>> {
        vec![vec![1, 4], vec![0, 2], vec![1, 3], vec![2, 4], vec![0, 3]]
    }

    fn run_hop(
        adj: &[Vec<u32>],
        frontier: &[u32],
        visits: &mut VisitTable,
        token: u64,
    ) -> (Vec<u32>, u64, Vec<(u32, bool)>) {
        let mut next = Vec::new();
        let mut probes = Vec::new();
        let messages = advance(
            frontier,
            &mut next,
            visits,
            token,
            |u| adj[u as usize].as_slice(),
            |v, first| probes.push((v, first)),
        );
        (next, messages, probes)
    }

    #[test]
    fn expands_in_frontier_then_adjacency_order() {
        let adj = cycle5();
        let mut visits = VisitTable::new(5);
        let token = visits.token();
        visits.visit(0, token);
        let (next, messages, probes) = run_hop(&adj, &[0], &mut visits, token);
        assert_eq!(next, vec![1, 4]);
        assert_eq!(messages, 2);
        assert_eq!(probes, vec![(1, true), (4, true)]);

        let (next, messages, probes) = run_hop(&adj, &next, &mut visits, token);
        // 1 forwards to {0, 2}, 4 forwards to {0, 3}: four messages,
        // two of them duplicates back to the origin.
        assert_eq!(next, vec![2, 3]);
        assert_eq!(messages, 4);
        assert_eq!(probes, vec![(0, false), (2, true), (0, false), (3, true)]);
    }

    #[test]
    fn duplicate_within_a_hop_is_suppressed_once() {
        // Both frontier peers point at the same receiver; only the
        // first transmission is a first visit.
        let adj = vec![vec![2], vec![2], vec![]];
        let mut visits = VisitTable::new(3);
        let token = visits.token();
        let (next, messages, probes) = run_hop(&adj, &[0, 1], &mut visits, token);
        assert_eq!(next, vec![2]);
        assert_eq!(messages, 2);
        assert_eq!(probes, vec![(2, true), (2, false)]);
    }

    #[test]
    fn fresh_token_forgets_previous_generation() {
        let mut visits = VisitTable::new(3);
        let t1 = visits.token();
        assert!(visits.visit(1, t1));
        assert!(!visits.visit(1, t1));
        assert!(visits.seen(1, t1));
        let t2 = visits.token();
        assert!(!visits.seen(1, t2), "new generation starts unvisited");
        assert!(visits.visit(1, t2), "slot is first-visit again");
        assert!(
            !visits.seen(1, t1),
            "old generation token no longer matches"
        );
    }

    #[test]
    fn filtered_edges_are_never_sent() {
        // Partition the 5-cycle into even/odd slots: only 2-4 and 4-0
        // style even-even edges survive an `u % 2 == v % 2` filter.
        let adj = cycle5();
        let mut visits = VisitTable::new(5);
        let token = visits.token();
        visits.visit(0, token);
        let mut next = Vec::new();
        let mut probes = Vec::new();
        let messages = advance_filtered(
            &[0],
            &mut next,
            &mut visits,
            token,
            |u| adj[u as usize].as_slice(),
            |u, v| u % 2 == v % 2,
            |v, first| probes.push((v, first)),
        );
        // 0's neighbors are {1, 4}; 1 is cross-group and dropped.
        assert_eq!(next, vec![4]);
        assert_eq!(messages, 1, "dropped edges are not counted");
        assert_eq!(probes, vec![(4, true)]);
    }

    #[test]
    fn grow_to_extends_with_unvisited_slots() {
        let mut visits = VisitTable::new(2);
        let token = visits.token();
        visits.visit(1, token);
        visits.grow_to(4);
        assert_eq!(visits.len(), 4);
        assert!(visits.seen(1, token), "old stamps survive the resize");
        assert!(!visits.seen(3, token));
        assert!(visits.visit(3, token), "new slot is first-visit");
        visits.grow_to(3);
        assert_eq!(visits.len(), 4, "shrinking is a no-op");
    }

    #[test]
    fn empty_frontier_is_a_no_op() {
        let adj = cycle5();
        let mut visits = VisitTable::new(5);
        let token = visits.token();
        let (next, messages, probes) = run_hop(&adj, &[], &mut visits, token);
        assert!(next.is_empty());
        assert_eq!(messages, 0);
        assert!(probes.is_empty());
    }
}
