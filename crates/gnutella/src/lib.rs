//! `gnutella` — forwarding-based search baselines for the GUESS study.
//!
//! GUESS is evaluated against two forwarding mechanisms (paper §6.2,
//! Figure 8):
//!
//! * **fixed extent** — the query always reaches the same number of peers,
//!   like a TTL-scoped Gnutella flood ([`fixed`]);
//! * **iterative deepening** — coarse-grained flexible extent: re-flood
//!   with growing TTLs until satisfied ([`iterative`]).
//!
//! Both run over explicit overlay [`topology`] graphs with true flooding
//! semantics ([`flood()`][flood::flood]), against the same content [`population`] the
//! GUESS simulator uses, so the comparison isolates the search mechanism.
//!
//! # Example
//!
//! ```
//! use gnutella::fixed::FixedExtentCurve;
//! use gnutella::population::Population;
//! use simkit::rng::RngStream;
//! use workload::content::CatalogParams;
//!
//! let pop = Population::generate(200, CatalogParams::default(), 1)?;
//! let mut rng = RngStream::from_seed(1, "doc");
//! let curve = FixedExtentCurve::evaluate(&pop, 100, &mut rng);
//! assert!(curve.unsatisfaction_at(200) <= curve.unsatisfaction_at(10));
//! # Ok::<(), gnutella::population::BuildPopulationError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dynamic;
pub mod fixed;
pub mod flood;
pub mod fragmentation;
pub mod iterative;
pub mod population;
pub mod topology;
pub mod wavefront;

pub use dynamic::{run_lanes, GnutellaConfig, GnutellaReport, GnutellaSim};
pub use fixed::FixedExtentCurve;
pub use flood::{flood, FloodOutcome};
pub use fragmentation::{attack, AttackOutcome, AttackStrategy};
pub use iterative::{iterative_deepening, DeepeningOutcome, DeepeningPolicy};
pub use population::Population;
pub use simkit::sim::{Runnable, SimReport};
pub use topology::Topology;
