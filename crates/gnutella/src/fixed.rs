//! Fixed-extent search — the Gnutella reference point of Figure 8.
//!
//! A fixed-extent mechanism always delivers the query to exactly `E`
//! peers, whatever the query is: too many for popular content, too few for
//! rare content. The paper evaluates the unsatisfaction rate for *every*
//! extent 1..N to trace the whole cost/quality curve.
//!
//! For each query we record the *rank of the first answering peer* in a
//! random delivery order (which peers a flood reaches is uncorrelated with
//! content placement). A query with first-hit rank `r` is satisfied by
//! every extent `E >= r`, so a single pass yields the entire curve.

use simkit::rng::RngStream;

use crate::population::Population;

/// The cost/quality curve of a fixed-extent mechanism.
#[derive(Debug, Clone)]
pub struct FixedExtentCurve {
    /// `first_hit[q]` is the 1-based rank of the first answering peer for
    /// query `q`, or `None` if no peer in the population can answer.
    first_hit: Vec<Option<usize>>,
    population: usize,
}

impl FixedExtentCurve {
    /// Evaluates `queries` random queries against `pop`, each with its own
    /// random delivery order.
    ///
    /// # Panics
    ///
    /// Panics if `queries == 0`.
    #[must_use]
    pub fn evaluate(pop: &Population, queries: usize, rng: &mut RngStream) -> Self {
        assert!(queries > 0, "need at least one query");
        let n = pop.len();
        let mut first_hit = Vec::with_capacity(queries);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..queries {
            let target = pop.sample_target(rng);
            rng.shuffle(&mut order);
            let hit = order
                .iter()
                .position(|&i| pop.answers(i, target))
                .map(|p| p + 1);
            first_hit.push(hit);
        }
        FixedExtentCurve {
            first_hit,
            population: n,
        }
    }

    /// Number of evaluated queries.
    #[must_use]
    pub fn queries(&self) -> usize {
        self.first_hit.len()
    }

    /// Size of the underlying population.
    #[must_use]
    pub fn population(&self) -> usize {
        self.population
    }

    /// Fraction of queries **unsatisfied** at extent `e` (queries whose
    /// first answering peer ranks beyond `e`, or that nobody can answer).
    #[must_use]
    pub fn unsatisfaction_at(&self, e: usize) -> f64 {
        let unsat = self
            .first_hit
            .iter()
            .filter(|h| h.is_none_or(|r| r > e))
            .count();
        unsat as f64 / self.first_hit.len() as f64
    }

    /// The floor: queries that not even a whole-network flood satisfies.
    #[must_use]
    pub fn unsatisfiable_fraction(&self) -> f64 {
        let none = self.first_hit.iter().filter(|h| h.is_none()).count();
        none as f64 / self.first_hit.len() as f64
    }

    /// The `(extent, unsatisfaction)` series for the given extents.
    #[must_use]
    pub fn curve(&self, extents: &[usize]) -> Vec<(usize, f64)> {
        extents
            .iter()
            .map(|&e| (e, self.unsatisfaction_at(e)))
            .collect()
    }

    /// The smallest extent achieving `target_unsat` or better, if any.
    #[must_use]
    pub fn extent_for_unsatisfaction(&self, target_unsat: f64) -> Option<usize> {
        (1..=self.population).find(|&e| self.unsatisfaction_at(e) <= target_unsat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::content::CatalogParams;

    fn curve(n: usize, queries: usize) -> FixedExtentCurve {
        let pop = Population::generate(n, CatalogParams::default(), 17).unwrap();
        let mut rng = RngStream::from_seed(17, "fixed");
        FixedExtentCurve::evaluate(&pop, queries, &mut rng)
    }

    #[test]
    fn unsatisfaction_is_monotone_decreasing_in_extent() {
        let c = curve(300, 400);
        let mut last = 1.0;
        for e in [1, 2, 5, 10, 30, 100, 300] {
            let u = c.unsatisfaction_at(e);
            assert!(u <= last + 1e-12, "unsat rose at extent {e}");
            last = u;
        }
    }

    #[test]
    fn full_extent_hits_the_floor() {
        let c = curve(300, 400);
        assert!((c.unsatisfaction_at(300) - c.unsatisfiable_fraction()).abs() < 1e-12);
    }

    #[test]
    fn extent_one_is_nearly_hopeless_for_rare_content() {
        let c = curve(300, 400);
        assert!(c.unsatisfaction_at(1) > c.unsatisfaction_at(300));
        assert!(
            c.unsatisfaction_at(1) > 0.3,
            "a single probe rarely satisfies"
        );
    }

    #[test]
    fn curve_series_matches_pointwise() {
        let c = curve(200, 200);
        let series = c.curve(&[1, 10, 100]);
        assert_eq!(series.len(), 3);
        for (e, u) in series {
            assert_eq!(u, c.unsatisfaction_at(e));
        }
    }

    #[test]
    fn extent_for_unsatisfaction_finds_threshold() {
        let c = curve(300, 400);
        let floor = c.unsatisfiable_fraction();
        let e = c
            .extent_for_unsatisfaction(floor + 0.02)
            .expect("reachable");
        assert!(e <= 300);
        assert!(c.unsatisfaction_at(e) <= floor + 0.02);
        assert!(
            c.extent_for_unsatisfaction(-1.0).is_none(),
            "impossible target"
        );
    }

    #[test]
    fn reports_shapes() {
        let c = curve(100, 50);
        assert_eq!(c.queries(), 50);
        assert_eq!(c.population(), 100);
    }
}
