//! Fragmentation attacks on overlay topologies.
//!
//! §3.3 of the paper: Gnutella's measured power-law overlay is fragile to
//! targeted denial-of-service against its highly connected hubs, while
//! the weakness "is not inherent to the protocol … the network can be
//! made more robust by imposing simple limits on the number of
//! connections". This module quantifies that claim: knock out the
//! highest-degree peers (a targeted attack) or random peers (baseline
//! failures) and measure what is left of the largest connected component.

use crate::topology::Topology;
use simkit::rng::RngStream;

/// How the attacker picks victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackStrategy {
    /// Take down the highest-degree peers first (targeted DoS).
    HighestDegree,
    /// Take down uniformly random peers (background failure baseline).
    Random,
}

/// The residual connectivity after an attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Peers removed.
    pub removed: usize,
    /// Peers still up.
    pub survivors: usize,
    /// Largest connected component among survivors.
    pub largest_component: usize,
}

impl AttackOutcome {
    /// Largest component as a fraction of the survivors (1.0 = still one
    /// connected network).
    #[must_use]
    pub fn cohesion(&self) -> f64 {
        if self.survivors == 0 {
            0.0
        } else {
            self.largest_component as f64 / self.survivors as f64
        }
    }
}

/// Removes `count` peers from `topo` under `strategy` and measures the
/// surviving overlay's largest connected component.
///
/// # Panics
///
/// Panics if `count > topo.len()`.
#[must_use]
pub fn attack(
    topo: &Topology,
    strategy: AttackStrategy,
    count: usize,
    rng: &mut RngStream,
) -> AttackOutcome {
    let n = topo.len();
    assert!(count <= n, "cannot remove more peers than exist");
    let mut down = vec![false; n];
    match strategy {
        AttackStrategy::HighestDegree => {
            let mut by_degree: Vec<usize> = (0..n).collect();
            by_degree.sort_unstable_by_key(|&u| std::cmp::Reverse(topo.degree(u)));
            for &u in by_degree.iter().take(count) {
                down[u] = true;
            }
        }
        AttackStrategy::Random => {
            for u in rng.sample_indices(n, count) {
                down[u] = true;
            }
        }
    }

    // Union-find over the survivors.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for u in 0..n {
        if down[u] {
            continue;
        }
        for &v in topo.neighbors(u) {
            let v = v as usize;
            if !down[v] {
                let (ru, rv) = (find(&mut parent, u as u32), find(&mut parent, v as u32));
                if ru != rv {
                    parent[ru as usize] = rv;
                }
            }
        }
    }
    let mut sizes = vec![0usize; n];
    let mut largest = 0;
    for (u, &is_down) in down.iter().enumerate() {
        if !is_down {
            let r = find(&mut parent, u as u32) as usize;
            sizes[r] += 1;
            largest = largest.max(sizes[r]);
        }
    }
    AttackOutcome {
        removed: count,
        survivors: n - count,
        largest_component: largest,
    }
}

/// Sweeps an attack over increasing victim counts, returning one outcome
/// per count.
#[must_use]
pub fn attack_sweep(
    topo: &Topology,
    strategy: AttackStrategy,
    counts: &[usize],
    rng: &mut RngStream,
) -> Vec<AttackOutcome> {
    counts
        .iter()
        .map(|&c| attack(topo, strategy, c, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::from_seed(77, "frag")
    }

    #[test]
    fn no_attack_leaves_network_whole() {
        let mut r = rng();
        let t = Topology::random_regular(200, 4, &mut r);
        let out = attack(&t, AttackStrategy::HighestDegree, 0, &mut r);
        assert_eq!(out.survivors, 200);
        assert_eq!(out.largest_component, 200);
        assert!((out.cohesion() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_attack_leaves_nothing() {
        let mut r = rng();
        let t = Topology::random_regular(50, 3, &mut r);
        let out = attack(&t, AttackStrategy::Random, 50, &mut r);
        assert_eq!(out.survivors, 0);
        assert_eq!(out.largest_component, 0);
        assert_eq!(out.cohesion(), 0.0);
    }

    #[test]
    fn power_law_is_fragile_to_targeted_attack() {
        let mut r = rng();
        let n = 1500;
        let power_law = Topology::preferential_attachment(n, 2, &mut r);
        let regular = Topology::random_regular(n, 2, &mut r);
        let victims = n / 20; // 5%
        let pl = attack(&power_law, AttackStrategy::HighestDegree, victims, &mut r);
        let reg = attack(&regular, AttackStrategy::HighestDegree, victims, &mut r);
        assert!(
            pl.cohesion() < reg.cohesion(),
            "hub removal should hurt the power-law overlay ({:.3}) more than the \
             degree-limited one ({:.3})",
            pl.cohesion(),
            reg.cohesion()
        );
    }

    #[test]
    fn targeted_beats_random_on_power_law() {
        let mut r = rng();
        let t = Topology::preferential_attachment(1500, 2, &mut r);
        let victims = 75;
        let targeted = attack(&t, AttackStrategy::HighestDegree, victims, &mut r);
        let random = attack(&t, AttackStrategy::Random, victims, &mut r);
        assert!(
            targeted.cohesion() <= random.cohesion(),
            "targeting hubs ({:.3}) must be at least as damaging as random \
             failures ({:.3})",
            targeted.cohesion(),
            random.cohesion()
        );
    }

    #[test]
    fn sweep_is_monotone_in_removed_count() {
        let mut r = rng();
        let t = Topology::preferential_attachment(800, 2, &mut r);
        let outs = attack_sweep(&t, AttackStrategy::HighestDegree, &[0, 40, 80, 160], &mut r);
        for w in outs.windows(2) {
            assert!(w[1].largest_component <= w[0].largest_component);
        }
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn over_removal_rejected() {
        let mut r = rng();
        let t = Topology::random_regular(10, 2, &mut r);
        let _ = attack(&t, AttackStrategy::Random, 11, &mut r);
    }
}
