//! A churn-aware Gnutella overlay simulator.
//!
//! §3.2 of the paper compares GUESS and Gnutella *qualitatively* on state
//! maintenance: Gnutella keeps a handful of open, mutual connections and
//! repairs them actively on churn, while GUESS maintains a large soft
//! cache with pings. §3.3 adds the security angle: flooding amplifies a
//! single malicious query into network-wide load. This module provides
//! the dynamic Gnutella side of those comparisons — an event-driven
//! overlay where peers join, connect to a target number of neighbors,
//! flood queries with a TTL, die silently, and where survivors repair
//! their degree by re-connecting.
//!
//! Floods execute as per-hop *wavefront* events — one kernel event per
//! (query, hop) advancing a dense frontier over slot-indexed adjacency
//! (see [`crate::wavefront`]) — rather than one event per forwarded
//! message. The discovery order, RNG draw order, trace records, and
//! report aggregates are identical to the per-message formulation; only
//! the event count and the wall-clock cost per message change.
//!
//! The content/query/lifetime models are shared with the GUESS simulator
//! so the two mechanisms face identical workloads.

use simkit::rng::RngStream;
use simkit::sim::{ChurnDriver, Kernel, KernelParams, Runnable, SimCtx, SimReport, Simulation};
use simkit::stats::{CounterSet, Summary};
use simkit::time::{SimDuration, SimTime};
use simkit::trace::{ProbeKind, ProbeOutcome, TraceRecord, TraceSink};
use workload::content::{Catalog, CatalogParams, LibraryArena, LibraryHandle};
use workload::files::FileCountModel;
use workload::lifetime::LifetimeModel;
use workload::query::{QueryModel, QueryWorkload};

use crate::wavefront::VisitTable;

mod flood;
mod scenario_ops;
mod types;

use flood::FloodState;
pub use types::{GnutellaConfig, GnutellaReport, InvalidGnutellaConfig};

/// Lane-partitioned entry point, mirroring `guess::run_lanes` and
/// `gossip::run_lanes` so the bench harness can drive all three engines
/// through one surface.
///
/// Gnutella floods traverse a *shared* overlay graph — a single hop may
/// touch any slot, and repair rewires edges between arbitrary slots —
/// so no lane decomposition offers useful lookahead. This validates the
/// config and runs the serial engine regardless of `threads`; callers
/// get the exact serial bytes.
///
/// # Errors
///
/// Returns [`InvalidGnutellaConfig`] for inconsistent parameters.
pub fn run_lanes(
    cfg: GnutellaConfig,
    _threads: usize,
) -> Result<GnutellaReport, InvalidGnutellaConfig> {
    Ok(GnutellaSim::new(cfg)?.run())
}

/// The runtime side of the config/state split: the knobs a
/// [`simkit::scenario::Scenario`] may legally flip mid-run. Initialized
/// from the validated [`GnutellaConfig`] at build time and mutated only
/// by [`simkit::scenario::Intervenable::intervene`]; `cfg` itself stays
/// immutable after `GnutellaSim::new`. Hot-path reads of these knobs go
/// through here, so an intervention-free run reads exactly the
/// configured values.
#[derive(Debug, Clone)]
struct Runtime {
    /// Current per-peer query rate (mirrors the workload).
    query_rate: f64,
    /// Flood TTL in hops.
    ttl: usize,
    /// Degree the overlay repairs toward.
    target_degree: usize,
    /// Active partition: slots in different `slot % groups` classes
    /// drop each other's messages. `None` means fully connected.
    partition: Option<u32>,
}

impl Runtime {
    fn from_config(cfg: &GnutellaConfig) -> Self {
        Runtime {
            query_rate: cfg.query_rate,
            ttl: cfg.ttl,
            target_degree: cfg.target_degree,
            partition: None,
        }
    }
}

/// The engine's event alphabet (public because it is the
/// [`Simulation::Event`] associated type).
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub enum Event {
    Burst {
        slot: u32,
        incarnation: u64,
    },
    Death {
        slot: u32,
        incarnation: u64,
    },
    /// Advances one hop of an in-flight flood (index into the flood
    /// slab). Scheduled at the flood's own instant, so the whole flood
    /// completes before any strictly-later event pops.
    FloodHop {
        flood: u32,
    },
}

struct Node {
    incarnation: u64,
    /// Handle into the engine's [`LibraryArena`]; freed and rebuilt at
    /// every in-place rebirth, so churn recycles blocks instead of
    /// leaking dead `Vec`s.
    library: LibraryHandle,
}

/// The dynamic Gnutella simulator.
///
/// # Examples
///
/// ```no_run
/// use gnutella::dynamic::{GnutellaConfig, GnutellaSim};
/// use gnutella::Runnable;
///
/// let report = GnutellaConfig::default().build()?.run();
/// println!("messages/query: {:.0}", report.messages_per_query());
/// # Ok::<(), gnutella::dynamic::InvalidGnutellaConfig>(())
/// ```
pub struct GnutellaSim {
    cfg: GnutellaConfig,
    rt: Runtime,
    nodes: Vec<Node>,
    /// Every node's library items, shared contiguous storage.
    libs: LibraryArena,
    /// Slot-indexed adjacency: `adj[u]` lists `u`'s open connections.
    /// Kept dense and separate from [`Node`] so a flood hop can borrow
    /// the whole overlay as neighbor slices without touching peer state.
    adj: Vec<Vec<u32>>,
    qmodel: QueryModel,
    files: FileCountModel,
    churn: ChurnDriver<LifetimeModel>,
    workload: QueryWorkload,
    rng: RngStream,
    floods: Vec<FloodState>,
    free_floods: Vec<u32>,
    /// Active floods in start order; settled strictly front-to-back so
    /// aggregate recording order matches the old inline execution.
    settle_queue: std::collections::VecDeque<u32>,
    probe_scratch: Vec<(u64, ProbeOutcome)>,
    queries: u64,
    unsatisfied: u64,
    messages: Summary,
    peers_reached: Summary,
    counters: CounterSet,
    next_incarnation: u64,
    next_query: u64,
}

impl GnutellaSim {
    /// Builds and seeds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGnutellaConfig`] for inconsistent parameters.
    pub fn new(cfg: GnutellaConfig) -> Result<Self, InvalidGnutellaConfig> {
        cfg.validate()?;
        let catalog = Catalog::new(cfg.catalog).map_err(|_| InvalidGnutellaConfig::BadCatalog)?;
        let qmodel = QueryModel::new(catalog);
        let files = FileCountModel::gnutella_like();
        let lifetimes = LifetimeModel::saroiu_like(cfg.lifespan_multiplier);
        let workload = QueryWorkload::with_rate(cfg.query_rate)
            .map_err(|_| InvalidGnutellaConfig::BadQueryRate)?;
        let n = cfg.network_size;
        let rt = Runtime::from_config(&cfg);
        let mut sim = GnutellaSim {
            rng: RngStream::from_seed(cfg.seed, "gnutella"),
            cfg,
            rt,
            nodes: Vec::new(),
            libs: LibraryArena::new(),
            adj: vec![Vec::new(); n],
            qmodel,
            files,
            churn: ChurnDriver::new(lifetimes),
            workload,
            floods: Vec::new(),
            free_floods: Vec::new(),
            settle_queue: std::collections::VecDeque::new(),
            probe_scratch: Vec::new(),
            queries: 0,
            unsatisfied: 0,
            messages: Summary::new(),
            peers_reached: Summary::new(),
            counters: CounterSet::new(),
            next_incarnation: 0,
            next_query: 0,
        };
        sim.populate();
        Ok(sim)
    }

    fn fresh_library(&mut self) -> LibraryHandle {
        let count = self.files.sample_file_count(&mut self.rng);
        self.qmodel
            .catalog()
            .build_library_in(count, &mut self.rng, &mut self.libs)
    }

    /// Creates the initial population and wires the overlay. Event
    /// scheduling happens in [`GnutellaSim::schedule_initial`], once the
    /// kernel exists; the RNG draw order across both phases is unchanged,
    /// so runs stay byte-identical.
    fn populate(&mut self) {
        let n = self.cfg.network_size;
        for _ in 0..n {
            let library = self.fresh_library();
            let incarnation = self.next_incarnation;
            self.next_incarnation += 1;
            self.nodes.push(Node {
                incarnation,
                library,
            });
        }
        // Initial wiring: every peer opens target_degree connections.
        for slot in 0..n {
            self.top_up_connections(slot);
        }
    }

    /// Schedules every initial peer's death and burst into the kernel's
    /// queue. The lifetime draw happens inside [`ChurnDriver::spawn`],
    /// at the same position in the stream it always occupied.
    fn schedule_initial<T: TraceSink>(&mut self, ctx: &mut SimCtx<'_, Event, T>) {
        for slot in 0..self.nodes.len() {
            let incarnation = self.nodes[slot].incarnation;
            self.churn.spawn(
                ctx,
                &mut self.rng,
                SimTime::ZERO,
                incarnation,
                Event::Death {
                    slot: slot as u32,
                    incarnation,
                },
            );
            let gap = self.workload.sample_burst_gap(&mut self.rng);
            ctx.schedule(
                SimTime::ZERO + gap,
                Event::Burst {
                    slot: slot as u32,
                    incarnation,
                },
            );
        }
    }

    /// Opens connections until `slot` reaches its target degree (each
    /// handshake costs maintenance messages on both sides). Under an
    /// active partition, handshakes to the other side fail — the
    /// candidate is burned but no connection opens.
    fn top_up_connections(&mut self, slot: usize) {
        let n = self.nodes.len();
        let mut guard = 0;
        while self.adj[slot].len() < self.rt.target_degree && guard < 20 * n {
            guard += 1;
            let other = self.rng.below(n);
            if other == slot || self.adj[slot].contains(&(other as u32)) {
                continue;
            }
            if let Some(groups) = self.rt.partition {
                if slot as u32 % groups != other as u32 % groups {
                    continue;
                }
            }
            self.adj[slot].push(other as u32);
            self.adj[other].push(slot as u32);
            self.counters.add("connect_messages", 2);
        }
    }

    fn on_death<T: TraceSink>(
        &mut self,
        slot: usize,
        incarnation: u64,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if self.nodes[slot].incarnation != incarnation {
            return;
        }
        self.churn.died(ctx, now, incarnation);
        self.counters.incr("deaths");
        // The departing peer's connections drop; every ex-neighbor
        // notices (open TCP connections fail fast) and repairs.
        let ex_neighbors = std::mem::take(&mut self.adj[slot]);
        for &nb in &ex_neighbors {
            self.adj[nb as usize].retain(|&x| x != slot as u32);
        }
        // Rebirth in place, as in the GUESS simulator: constant population.
        self.nodes[slot].incarnation = self.next_incarnation;
        self.next_incarnation += 1;
        self.libs.free(self.nodes[slot].library);
        self.nodes[slot].library = self.fresh_library();
        self.top_up_connections(slot);
        for nb in ex_neighbors {
            self.counters.incr("repairs");
            self.top_up_connections(nb as usize);
        }
        let new_inc = self.nodes[slot].incarnation;
        self.churn.spawn(
            ctx,
            &mut self.rng,
            now,
            new_inc,
            Event::Death {
                slot: slot as u32,
                incarnation: new_inc,
            },
        );
        let gap = self.workload.sample_burst_gap(&mut self.rng);
        ctx.schedule(
            now + gap,
            Event::Burst {
                slot: slot as u32,
                incarnation: new_inc,
            },
        );
    }

    fn on_burst<T: TraceSink>(
        &mut self,
        slot: usize,
        incarnation: u64,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if self.nodes[slot].incarnation != incarnation {
            return;
        }
        let burst = self.workload.sample_burst_size(&mut self.rng);
        for _ in 0..burst {
            self.flood_query(slot, now, ctx);
        }
        let gap = self.workload.sample_burst_gap(&mut self.rng);
        ctx.schedule(
            now + gap,
            Event::Burst {
                slot: slot as u32,
                incarnation,
            },
        );
    }
}

impl<T: TraceSink> Simulation<T> for GnutellaSim {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, ctx: &mut SimCtx<'_, Event, T>) {
        match event {
            Event::Death { slot, incarnation } => {
                self.on_death(slot as usize, incarnation, now, ctx);
            }
            Event::Burst { slot, incarnation } => {
                self.on_burst(slot as usize, incarnation, now, ctx);
            }
            Event::FloodHop { flood } => self.on_flood_hop(flood, now, ctx),
        }
    }

    fn live_peers(&self) -> u64 {
        // Rebirth is in place and immediate, so every slot always holds
        // a live peer — the constant-population invariant.
        self.nodes.len() as u64
    }
}

impl GnutellaSim {
    /// The one driver both run surfaces share: `scenario: None` is the
    /// plain run, `Some` routes through [`Kernel::run_scenario`]. The
    /// two paths are byte-identical for an empty timeline.
    fn run_inner<T: TraceSink>(
        mut self,
        sink: T,
        scenario: Option<&simkit::scenario::Scenario>,
    ) -> Result<(GnutellaReport, T), simkit::scenario::ScenarioError> {
        let mut params = KernelParams::new(self.cfg.duration).with_warmup(self.cfg.warmup);
        if let Some(interval) = self.cfg.sample_interval {
            params = params.with_sampling(interval);
        }
        let mut kernel = Kernel::new(params, sink);
        self.schedule_initial(&mut kernel.ctx());
        match scenario {
            None => kernel.run(&mut self),
            Some(s) => kernel.run_scenario(&mut self, s)?,
        }
        let report = GnutellaReport {
            queries: self.queries,
            unsatisfied: self.unsatisfied,
            messages: self.messages,
            peers_reached: self.peers_reached,
            counters: self.counters,
            events_processed: kernel.events_processed(),
        };
        Ok((report, kernel.into_sink()))
    }
}

impl Runnable for GnutellaSim {
    type Report = GnutellaReport;

    fn run_traced<T: TraceSink>(self, sink: T) -> (GnutellaReport, T) {
        self.run_inner(sink, None)
            .expect("runs without a scenario cannot fail")
    }

    fn run_scenario_traced<T: TraceSink>(
        self,
        scenario: &simkit::scenario::Scenario,
        sink: T,
    ) -> Result<(GnutellaReport, T), simkit::scenario::ScenarioError> {
        self.run_inner(sink, Some(scenario))
    }
}

impl SimReport for GnutellaReport {
    fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GnutellaConfig {
        GnutellaConfig::small_test(0x67)
    }

    #[test]
    fn validates_config() {
        assert_eq!(
            small().with_target_degree(0).build().err(),
            Some(InvalidGnutellaConfig::BadDegree)
        );
        assert_eq!(
            small().with_ttl(0).build().err(),
            Some(InvalidGnutellaConfig::ZeroTtl)
        );
        let bad = small().with_warmup(small().duration);
        assert_eq!(
            bad.build().err(),
            Some(InvalidGnutellaConfig::WarmupTooLong)
        );
        assert_eq!(
            small().with_network_size(1).build().err(),
            Some(InvalidGnutellaConfig::NetworkTooSmall)
        );
        assert_eq!(
            small().with_query_rate(0.0).build().err(),
            Some(InvalidGnutellaConfig::BadQueryRate)
        );
        assert!(small().build().is_ok());
    }

    #[test]
    fn runs_and_reports() {
        let report = small().build().unwrap().run();
        assert!(report.queries > 0);
        assert!(report.messages_per_query() > 0.0);
        assert!(report.unsatisfaction() <= 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = small().build().unwrap().run();
        let b = small().build().unwrap().run();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.messages_per_query(), b.messages_per_query());
    }

    #[test]
    fn flooding_covers_most_of_a_connected_overlay() {
        let cfg = small().with_ttl(8);
        let n = cfg.network_size;
        let report = cfg.build().unwrap().run();
        assert!(
            report.peers_reached.mean() > n as f64 * 0.7,
            "ttl-8 floods should reach most peers, got {:.0}",
            report.peers_reached.mean()
        );
    }

    #[test]
    fn messages_exceed_peers_reached() {
        let report = small().build().unwrap().run();
        assert!(report.messages_per_query() >= report.peers_reached.mean());
    }

    #[test]
    fn churn_triggers_repairs() {
        let report = small().with_lifespan_multiplier(0.1).build().unwrap().run();
        assert!(report.counters.get("deaths") > 10);
        assert!(report.counters.get("repairs") > 0);
        assert!(report.counters.get("connect_messages") > 0);
    }

    #[test]
    fn short_ttl_floods_cheaper_but_worse() {
        let s = small().with_ttl(2).build().unwrap().run();
        let l = small().with_ttl(7).build().unwrap().run();
        assert!(s.messages_per_query() < l.messages_per_query());
        assert!(s.unsatisfaction() >= l.unsatisfaction());
    }
}
