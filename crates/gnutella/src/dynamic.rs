//! A churn-aware Gnutella overlay simulator.
//!
//! §3.2 of the paper compares GUESS and Gnutella *qualitatively* on state
//! maintenance: Gnutella keeps a handful of open, mutual connections and
//! repairs them actively on churn, while GUESS maintains a large soft
//! cache with pings. §3.3 adds the security angle: flooding amplifies a
//! single malicious query into network-wide load. This module provides
//! the dynamic Gnutella side of those comparisons — an event-driven
//! overlay where peers join, connect to a target number of neighbors,
//! flood queries with a TTL, die silently, and where survivors repair
//! their degree by re-connecting.
//!
//! The content/query/lifetime models are shared with the GUESS simulator
//! so the two mechanisms face identical workloads.

use std::collections::HashSet;

use simkit::event::EventQueue;
use simkit::rng::RngStream;
use simkit::stats::{CounterSet, Summary};
use simkit::time::{SimDuration, SimTime};
use workload::content::{Catalog, CatalogParams, PeerLibrary};
use workload::files::FileCountModel;
use workload::lifetime::LifetimeModel;
use workload::query::{QueryModel, QueryWorkload};

/// Configuration of a dynamic Gnutella run.
#[derive(Debug, Clone, PartialEq)]
pub struct GnutellaConfig {
    /// Live peers at all times.
    pub network_size: usize,
    /// Connections each peer tries to keep open.
    pub target_degree: usize,
    /// Query TTL (flood radius).
    pub ttl: usize,
    /// Results needed to satisfy a query.
    pub desired_results: usize,
    /// Per-user query rate (queries/second), bursty as in the paper.
    pub query_rate: f64,
    /// Lifespan multiplier for the shared lifetime model.
    pub lifespan_multiplier: f64,
    /// Content universe parameters (shared with GUESS).
    pub catalog: CatalogParams,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Warm-up excluded from query metrics.
    pub warmup: SimDuration,
    /// Master seed.
    pub seed: u64,
}

impl Default for GnutellaConfig {
    fn default() -> Self {
        GnutellaConfig {
            network_size: 1000,
            target_degree: 4,
            ttl: 7,
            desired_results: 1,
            query_rate: 9.26e-3,
            lifespan_multiplier: 1.0,
            catalog: CatalogParams::default(),
            duration: SimDuration::from_secs(2400.0),
            warmup: SimDuration::from_secs(600.0),
            seed: 0x67u64,
        }
    }
}

/// Error constructing a [`GnutellaSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGnutellaConfig;

impl std::fmt::Display for InvalidGnutellaConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gnutella config requires n > degree > 0, ttl > 0, positive rates")
    }
}

impl std::error::Error for InvalidGnutellaConfig {}

/// Aggregated results of a dynamic Gnutella run.
#[derive(Debug, Clone, Default)]
pub struct GnutellaReport {
    /// Queries executed after warm-up.
    pub queries: u64,
    /// Queries that found fewer than the desired results.
    pub unsatisfied: u64,
    /// Per-query messages transmitted (deliveries + duplicate arrivals).
    pub messages: Summary,
    /// Per-query count of distinct peers reached.
    pub peers_reached: Summary,
    /// Event counters (connections made, repairs, deaths, …).
    pub counters: CounterSet,
}

impl GnutellaReport {
    /// Fraction of queries that went unsatisfied.
    #[must_use]
    pub fn unsatisfaction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.unsatisfied as f64 / self.queries as f64
        }
    }

    /// Mean messages per query — the flooding cost that corresponds to
    /// GUESS's probes/query.
    #[must_use]
    pub fn messages_per_query(&self) -> f64 {
        self.messages.mean()
    }

    /// The amplification factor: network messages caused per query
    /// message the originator itself sends (its own degree).
    #[must_use]
    pub fn amplification(&self) -> f64 {
        let reached = self.peers_reached.mean();
        if reached > 0.0 {
            self.messages_per_query() / (self.messages_per_query() / reached).max(1.0)
        } else {
            0.0
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Burst { slot: usize, incarnation: u64 },
    Death { slot: usize, incarnation: u64 },
}

struct Node {
    incarnation: u64,
    library: PeerLibrary,
    neighbors: Vec<usize>, // slot indices
}

/// The dynamic Gnutella simulator.
///
/// # Examples
///
/// ```no_run
/// use gnutella::dynamic::{GnutellaConfig, GnutellaSim};
///
/// let report = GnutellaSim::new(GnutellaConfig::default())?.run();
/// println!("messages/query: {:.0}", report.messages_per_query());
/// # Ok::<(), gnutella::dynamic::InvalidGnutellaConfig>(())
/// ```
pub struct GnutellaSim {
    cfg: GnutellaConfig,
    queue: EventQueue<Event>,
    nodes: Vec<Node>,
    qmodel: QueryModel,
    files: FileCountModel,
    lifetimes: LifetimeModel,
    workload: QueryWorkload,
    rng: RngStream,
    queries: u64,
    unsatisfied: u64,
    messages: Summary,
    peers_reached: Summary,
    counters: CounterSet,
    warmup_end: SimTime,
    end: SimTime,
    next_incarnation: u64,
}

impl GnutellaSim {
    /// Builds and seeds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGnutellaConfig`] for inconsistent parameters.
    pub fn new(cfg: GnutellaConfig) -> Result<Self, InvalidGnutellaConfig> {
        if cfg.network_size < 2
            || cfg.target_degree == 0
            || cfg.target_degree >= cfg.network_size
            || cfg.ttl == 0
            || cfg.desired_results == 0
            || !(cfg.query_rate.is_finite() && cfg.query_rate > 0.0)
            || !(cfg.lifespan_multiplier.is_finite() && cfg.lifespan_multiplier > 0.0)
            || cfg.warmup >= cfg.duration
        {
            return Err(InvalidGnutellaConfig);
        }
        let catalog = Catalog::new(cfg.catalog).map_err(|_| InvalidGnutellaConfig)?;
        let qmodel = QueryModel::new(catalog);
        let files = FileCountModel::gnutella_like();
        let lifetimes = LifetimeModel::saroiu_like(cfg.lifespan_multiplier);
        let workload = QueryWorkload::with_rate(cfg.query_rate).map_err(|_| InvalidGnutellaConfig)?;
        let warmup_end = SimTime::ZERO + cfg.warmup;
        let end = SimTime::ZERO + cfg.duration;
        let mut sim = GnutellaSim {
            rng: RngStream::from_seed(cfg.seed, "gnutella"),
            cfg,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            qmodel,
            files,
            lifetimes,
            workload,
            queries: 0,
            unsatisfied: 0,
            messages: Summary::new(),
            peers_reached: Summary::new(),
            counters: CounterSet::new(),
            warmup_end,
            end,
            next_incarnation: 0,
        };
        sim.populate();
        Ok(sim)
    }

    fn fresh_library(&mut self) -> PeerLibrary {
        let count = self.files.sample_file_count(&mut self.rng);
        self.qmodel.catalog().build_library(count, &mut self.rng)
    }

    fn populate(&mut self) {
        let n = self.cfg.network_size;
        for _ in 0..n {
            let library = self.fresh_library();
            let incarnation = self.next_incarnation;
            self.next_incarnation += 1;
            self.nodes.push(Node { incarnation, library, neighbors: Vec::new() });
        }
        // Initial wiring: every peer opens target_degree connections.
        for slot in 0..n {
            self.top_up_connections(slot);
        }
        for slot in 0..n {
            let incarnation = self.nodes[slot].incarnation;
            let life = self.lifetimes.sample_lifetime(&mut self.rng);
            self.queue.schedule(SimTime::ZERO + life, Event::Death { slot, incarnation });
            let gap = self.workload.sample_burst_gap(&mut self.rng);
            self.queue.schedule(SimTime::ZERO + gap, Event::Burst { slot, incarnation });
        }
    }

    /// Opens connections until `slot` reaches its target degree (each
    /// handshake costs maintenance messages on both sides).
    fn top_up_connections(&mut self, slot: usize) {
        let n = self.nodes.len();
        let mut guard = 0;
        while self.nodes[slot].neighbors.len() < self.cfg.target_degree && guard < 20 * n {
            guard += 1;
            let other = self.rng.below(n);
            if other == slot || self.nodes[slot].neighbors.contains(&other) {
                continue;
            }
            self.nodes[slot].neighbors.push(other);
            self.nodes[other].neighbors.push(slot);
            self.counters.add("connect_messages", 2);
        }
    }

    /// Runs to completion.
    #[must_use]
    pub fn run(mut self) -> GnutellaReport {
        while let Some((now, event)) = self.queue.pop() {
            if now > self.end {
                break;
            }
            match event {
                Event::Death { slot, incarnation } => self.on_death(slot, incarnation, now),
                Event::Burst { slot, incarnation } => self.on_burst(slot, incarnation, now),
            }
        }
        GnutellaReport {
            queries: self.queries,
            unsatisfied: self.unsatisfied,
            messages: self.messages,
            peers_reached: self.peers_reached,
            counters: self.counters,
        }
    }

    fn on_death(&mut self, slot: usize, incarnation: u64, now: SimTime) {
        if self.nodes[slot].incarnation != incarnation {
            return;
        }
        self.counters.incr("deaths");
        // The departing peer's connections drop; every ex-neighbor
        // notices (open TCP connections fail fast) and repairs.
        let ex_neighbors = std::mem::take(&mut self.nodes[slot].neighbors);
        for &nb in &ex_neighbors {
            self.nodes[nb].neighbors.retain(|&x| x != slot);
        }
        // Rebirth in place, as in the GUESS simulator: constant population.
        self.nodes[slot].incarnation = self.next_incarnation;
        self.next_incarnation += 1;
        self.nodes[slot].library = self.fresh_library();
        self.top_up_connections(slot);
        for nb in ex_neighbors {
            self.counters.incr("repairs");
            self.top_up_connections(nb);
        }
        let new_inc = self.nodes[slot].incarnation;
        let life = self.lifetimes.sample_lifetime(&mut self.rng);
        self.queue.schedule(now + life, Event::Death { slot, incarnation: new_inc });
        let gap = self.workload.sample_burst_gap(&mut self.rng);
        self.queue.schedule(now + gap, Event::Burst { slot, incarnation: new_inc });
    }

    fn on_burst(&mut self, slot: usize, incarnation: u64, now: SimTime) {
        if self.nodes[slot].incarnation != incarnation {
            return;
        }
        let burst = self.workload.sample_burst_size(&mut self.rng);
        for _ in 0..burst {
            self.flood_query(slot, now);
        }
        let gap = self.workload.sample_burst_gap(&mut self.rng);
        self.queue.schedule(now + gap, Event::Burst { slot, incarnation });
    }

    /// Floods one query from `src` with the configured TTL, counting every
    /// transmission (including duplicates that are then suppressed).
    fn flood_query(&mut self, src: usize, now: SimTime) {
        let target = self.qmodel.sample_target(&mut self.rng);
        let mut visited: HashSet<usize> = HashSet::new();
        visited.insert(src);
        let mut frontier = vec![src];
        let mut messages = 0u64;
        let mut results = 0usize;
        for _hop in 0..self.cfg.ttl {
            let mut next = Vec::new();
            for &u in &frontier {
                // Forward to all neighbors; each transmission is a message
                // whether or not the receiver has seen the query.
                let neighbors = self.nodes[u].neighbors.clone();
                for v in neighbors {
                    messages += 1;
                    if visited.insert(v) {
                        if self.qmodel.answers(&self.nodes[v].library, target) {
                            results += 1;
                        }
                        next.push(v);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        if now >= self.warmup_end {
            self.queries += 1;
            if results < self.cfg.desired_results {
                self.unsatisfied += 1;
            }
            self.messages.record(messages as f64);
            self.peers_reached.record(visited.len() as f64 - 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GnutellaConfig {
        GnutellaConfig {
            network_size: 150,
            duration: SimDuration::from_secs(400.0),
            warmup: SimDuration::from_secs(100.0),
            catalog: CatalogParams { items: 4000, ..CatalogParams::default() },
            ..GnutellaConfig::default()
        }
    }

    #[test]
    fn validates_config() {
        let mut bad = small();
        bad.target_degree = 0;
        assert!(GnutellaSim::new(bad).is_err());
        let mut bad = small();
        bad.ttl = 0;
        assert!(GnutellaSim::new(bad).is_err());
        let mut bad = small();
        bad.warmup = bad.duration;
        assert!(GnutellaSim::new(bad).is_err());
        assert!(GnutellaSim::new(small()).is_ok());
    }

    #[test]
    fn runs_and_reports() {
        let report = GnutellaSim::new(small()).unwrap().run();
        assert!(report.queries > 0);
        assert!(report.messages_per_query() > 0.0);
        assert!(report.unsatisfaction() <= 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GnutellaSim::new(small()).unwrap().run();
        let b = GnutellaSim::new(small()).unwrap().run();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.messages_per_query(), b.messages_per_query());
    }

    #[test]
    fn flooding_covers_most_of_a_connected_overlay() {
        let mut cfg = small();
        cfg.ttl = 8;
        let report = GnutellaSim::new(cfg.clone()).unwrap().run();
        assert!(
            report.peers_reached.mean() > cfg.network_size as f64 * 0.7,
            "ttl-8 floods should reach most peers, got {:.0}",
            report.peers_reached.mean()
        );
    }

    #[test]
    fn messages_exceed_peers_reached() {
        let report = GnutellaSim::new(small()).unwrap().run();
        assert!(report.messages_per_query() >= report.peers_reached.mean());
    }

    #[test]
    fn churn_triggers_repairs() {
        let mut cfg = small();
        cfg.lifespan_multiplier = 0.1;
        let report = GnutellaSim::new(cfg).unwrap().run();
        assert!(report.counters.get("deaths") > 10);
        assert!(report.counters.get("repairs") > 0);
        assert!(report.counters.get("connect_messages") > 0);
    }

    #[test]
    fn short_ttl_floods_cheaper_but_worse() {
        let mut short = small();
        short.ttl = 2;
        let mut long = small();
        long.ttl = 7;
        let s = GnutellaSim::new(short).unwrap().run();
        let l = GnutellaSim::new(long).unwrap().run();
        assert!(s.messages_per_query() < l.messages_per_query());
        assert!(s.unsatisfaction() >= l.unsatisfaction());
    }
}
