//! A churn-aware Gnutella overlay simulator.
//!
//! §3.2 of the paper compares GUESS and Gnutella *qualitatively* on state
//! maintenance: Gnutella keeps a handful of open, mutual connections and
//! repairs them actively on churn, while GUESS maintains a large soft
//! cache with pings. §3.3 adds the security angle: flooding amplifies a
//! single malicious query into network-wide load. This module provides
//! the dynamic Gnutella side of those comparisons — an event-driven
//! overlay where peers join, connect to a target number of neighbors,
//! flood queries with a TTL, die silently, and where survivors repair
//! their degree by re-connecting.
//!
//! The content/query/lifetime models are shared with the GUESS simulator
//! so the two mechanisms face identical workloads.

use std::collections::HashSet;

use simkit::rng::RngStream;
use simkit::sim::{ChurnDriver, Kernel, KernelParams, SimCtx, Simulation};
use simkit::stats::{CounterSet, Summary};
use simkit::time::{SimDuration, SimTime};
use simkit::trace::{NullSink, ProbeKind, ProbeOutcome, TraceRecord, TraceSink};
use workload::content::{Catalog, CatalogParams, PeerLibrary};
use workload::files::FileCountModel;
use workload::lifetime::LifetimeModel;
use workload::query::{QueryModel, QueryWorkload};

mod flood;
mod types;

pub use types::{GnutellaConfig, GnutellaReport, InvalidGnutellaConfig};

/// The engine's event alphabet (public because it is the
/// [`Simulation::Event`] associated type).
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub enum Event {
    Burst { slot: usize, incarnation: u64 },
    Death { slot: usize, incarnation: u64 },
}

struct Node {
    incarnation: u64,
    library: PeerLibrary,
    neighbors: Vec<usize>, // slot indices
}

/// The dynamic Gnutella simulator.
///
/// # Examples
///
/// ```no_run
/// use gnutella::dynamic::{GnutellaConfig, GnutellaSim};
///
/// let report = GnutellaSim::new(GnutellaConfig::default())?.run();
/// println!("messages/query: {:.0}", report.messages_per_query());
/// # Ok::<(), gnutella::dynamic::InvalidGnutellaConfig>(())
/// ```
pub struct GnutellaSim {
    cfg: GnutellaConfig,
    nodes: Vec<Node>,
    qmodel: QueryModel,
    files: FileCountModel,
    churn: ChurnDriver<LifetimeModel>,
    workload: QueryWorkload,
    rng: RngStream,
    queries: u64,
    unsatisfied: u64,
    messages: Summary,
    peers_reached: Summary,
    counters: CounterSet,
    next_incarnation: u64,
    next_query: u64,
}

impl GnutellaSim {
    /// Builds and seeds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGnutellaConfig`] for inconsistent parameters.
    pub fn new(cfg: GnutellaConfig) -> Result<Self, InvalidGnutellaConfig> {
        if cfg.network_size < 2
            || cfg.target_degree == 0
            || cfg.target_degree >= cfg.network_size
            || cfg.ttl == 0
            || cfg.desired_results == 0
            || !(cfg.query_rate.is_finite() && cfg.query_rate > 0.0)
            || !(cfg.lifespan_multiplier.is_finite() && cfg.lifespan_multiplier > 0.0)
            || cfg.warmup >= cfg.duration
        {
            return Err(InvalidGnutellaConfig);
        }
        let catalog = Catalog::new(cfg.catalog).map_err(|_| InvalidGnutellaConfig)?;
        let qmodel = QueryModel::new(catalog);
        let files = FileCountModel::gnutella_like();
        let lifetimes = LifetimeModel::saroiu_like(cfg.lifespan_multiplier);
        let workload =
            QueryWorkload::with_rate(cfg.query_rate).map_err(|_| InvalidGnutellaConfig)?;
        let mut sim = GnutellaSim {
            rng: RngStream::from_seed(cfg.seed, "gnutella"),
            cfg,
            nodes: Vec::new(),
            qmodel,
            files,
            churn: ChurnDriver::new(lifetimes),
            workload,
            queries: 0,
            unsatisfied: 0,
            messages: Summary::new(),
            peers_reached: Summary::new(),
            counters: CounterSet::new(),
            next_incarnation: 0,
            next_query: 0,
        };
        sim.populate();
        Ok(sim)
    }

    fn fresh_library(&mut self) -> PeerLibrary {
        let count = self.files.sample_file_count(&mut self.rng);
        self.qmodel.catalog().build_library(count, &mut self.rng)
    }

    /// Creates the initial population and wires the overlay. Event
    /// scheduling happens in [`GnutellaSim::schedule_initial`], once the
    /// kernel exists; the RNG draw order across both phases is unchanged,
    /// so runs stay byte-identical.
    fn populate(&mut self) {
        let n = self.cfg.network_size;
        for _ in 0..n {
            let library = self.fresh_library();
            let incarnation = self.next_incarnation;
            self.next_incarnation += 1;
            self.nodes.push(Node {
                incarnation,
                library,
                neighbors: Vec::new(),
            });
        }
        // Initial wiring: every peer opens target_degree connections.
        for slot in 0..n {
            self.top_up_connections(slot);
        }
    }

    /// Schedules every initial peer's death and burst into the kernel's
    /// queue. The lifetime draw happens inside [`ChurnDriver::spawn`],
    /// at the same position in the stream it always occupied.
    fn schedule_initial<T: TraceSink>(&mut self, ctx: &mut SimCtx<'_, Event, T>) {
        for slot in 0..self.nodes.len() {
            let incarnation = self.nodes[slot].incarnation;
            self.churn.spawn(
                ctx,
                &mut self.rng,
                SimTime::ZERO,
                incarnation,
                Event::Death { slot, incarnation },
            );
            let gap = self.workload.sample_burst_gap(&mut self.rng);
            ctx.schedule(SimTime::ZERO + gap, Event::Burst { slot, incarnation });
        }
    }

    /// Opens connections until `slot` reaches its target degree (each
    /// handshake costs maintenance messages on both sides).
    fn top_up_connections(&mut self, slot: usize) {
        let n = self.nodes.len();
        let mut guard = 0;
        while self.nodes[slot].neighbors.len() < self.cfg.target_degree && guard < 20 * n {
            guard += 1;
            let other = self.rng.below(n);
            if other == slot || self.nodes[slot].neighbors.contains(&other) {
                continue;
            }
            self.nodes[slot].neighbors.push(other);
            self.nodes[other].neighbors.push(slot);
            self.counters.add("connect_messages", 2);
        }
    }

    /// Runs to completion.
    #[must_use]
    pub fn run(self) -> GnutellaReport {
        self.run_traced(NullSink).0
    }

    /// Runs with a caller-provided trace sink, returning both the report
    /// and the sink. With [`NullSink`] this monomorphizes to exactly the
    /// untraced loop.
    pub fn run_traced<T: TraceSink>(mut self, sink: T) -> (GnutellaReport, T) {
        let mut params = KernelParams::new(self.cfg.duration).with_warmup(self.cfg.warmup);
        if let Some(interval) = self.cfg.sample_interval {
            params = params.with_sampling(interval);
        }
        let mut kernel = Kernel::new(params, sink);
        self.schedule_initial(&mut kernel.ctx());
        kernel.run(&mut self);
        let report = GnutellaReport {
            queries: self.queries,
            unsatisfied: self.unsatisfied,
            messages: self.messages,
            peers_reached: self.peers_reached,
            counters: self.counters,
            events_processed: kernel.events_processed(),
        };
        (report, kernel.into_sink())
    }

    fn on_death<T: TraceSink>(
        &mut self,
        slot: usize,
        incarnation: u64,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if self.nodes[slot].incarnation != incarnation {
            return;
        }
        self.churn.died(ctx, now, incarnation);
        self.counters.incr("deaths");
        // The departing peer's connections drop; every ex-neighbor
        // notices (open TCP connections fail fast) and repairs.
        let ex_neighbors = std::mem::take(&mut self.nodes[slot].neighbors);
        for &nb in &ex_neighbors {
            self.nodes[nb].neighbors.retain(|&x| x != slot);
        }
        // Rebirth in place, as in the GUESS simulator: constant population.
        self.nodes[slot].incarnation = self.next_incarnation;
        self.next_incarnation += 1;
        self.nodes[slot].library = self.fresh_library();
        self.top_up_connections(slot);
        for nb in ex_neighbors {
            self.counters.incr("repairs");
            self.top_up_connections(nb);
        }
        let new_inc = self.nodes[slot].incarnation;
        self.churn.spawn(
            ctx,
            &mut self.rng,
            now,
            new_inc,
            Event::Death {
                slot,
                incarnation: new_inc,
            },
        );
        let gap = self.workload.sample_burst_gap(&mut self.rng);
        ctx.schedule(
            now + gap,
            Event::Burst {
                slot,
                incarnation: new_inc,
            },
        );
    }

    fn on_burst<T: TraceSink>(
        &mut self,
        slot: usize,
        incarnation: u64,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if self.nodes[slot].incarnation != incarnation {
            return;
        }
        let burst = self.workload.sample_burst_size(&mut self.rng);
        for _ in 0..burst {
            self.flood_query(slot, now, ctx);
        }
        let gap = self.workload.sample_burst_gap(&mut self.rng);
        ctx.schedule(now + gap, Event::Burst { slot, incarnation });
    }
}

impl<T: TraceSink> Simulation<T> for GnutellaSim {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, ctx: &mut SimCtx<'_, Event, T>) {
        match event {
            Event::Death { slot, incarnation } => self.on_death(slot, incarnation, now, ctx),
            Event::Burst { slot, incarnation } => self.on_burst(slot, incarnation, now, ctx),
        }
    }

    fn live_peers(&self) -> u64 {
        // Rebirth is in place and immediate, so every slot always holds
        // a live peer — the constant-population invariant.
        self.nodes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GnutellaConfig {
        GnutellaConfig {
            network_size: 150,
            duration: SimDuration::from_secs(400.0),
            warmup: SimDuration::from_secs(100.0),
            catalog: CatalogParams {
                items: 4000,
                ..CatalogParams::default()
            },
            ..GnutellaConfig::default()
        }
    }

    #[test]
    fn validates_config() {
        let mut bad = small();
        bad.target_degree = 0;
        assert!(GnutellaSim::new(bad).is_err());
        let mut bad = small();
        bad.ttl = 0;
        assert!(GnutellaSim::new(bad).is_err());
        let mut bad = small();
        bad.warmup = bad.duration;
        assert!(GnutellaSim::new(bad).is_err());
        assert!(GnutellaSim::new(small()).is_ok());
    }

    #[test]
    fn runs_and_reports() {
        let report = GnutellaSim::new(small()).unwrap().run();
        assert!(report.queries > 0);
        assert!(report.messages_per_query() > 0.0);
        assert!(report.unsatisfaction() <= 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GnutellaSim::new(small()).unwrap().run();
        let b = GnutellaSim::new(small()).unwrap().run();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.messages_per_query(), b.messages_per_query());
    }

    #[test]
    fn flooding_covers_most_of_a_connected_overlay() {
        let mut cfg = small();
        cfg.ttl = 8;
        let report = GnutellaSim::new(cfg.clone()).unwrap().run();
        assert!(
            report.peers_reached.mean() > cfg.network_size as f64 * 0.7,
            "ttl-8 floods should reach most peers, got {:.0}",
            report.peers_reached.mean()
        );
    }

    #[test]
    fn messages_exceed_peers_reached() {
        let report = GnutellaSim::new(small()).unwrap().run();
        assert!(report.messages_per_query() >= report.peers_reached.mean());
    }

    #[test]
    fn churn_triggers_repairs() {
        let mut cfg = small();
        cfg.lifespan_multiplier = 0.1;
        let report = GnutellaSim::new(cfg).unwrap().run();
        assert!(report.counters.get("deaths") > 10);
        assert!(report.counters.get("repairs") > 0);
        assert!(report.counters.get("connect_messages") > 0);
    }

    #[test]
    fn short_ttl_floods_cheaper_but_worse() {
        let mut short = small();
        short.ttl = 2;
        let mut long = small();
        long.ttl = 7;
        let s = GnutellaSim::new(short).unwrap().run();
        let l = GnutellaSim::new(long).unwrap().run();
        assert!(s.messages_per_query() < l.messages_per_query());
        assert!(s.unsatisfaction() >= l.unsatisfaction());
    }
}
