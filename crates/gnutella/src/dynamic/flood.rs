//! TTL flooding over the live overlay — the query-execution half of the
//! dynamic simulator, split out so overlay maintenance and search can be
//! read independently (a child module sees the engine's private state).

use super::*;

impl GnutellaSim {
    /// Floods one query from `src` with the configured TTL, counting every
    /// transmission (including duplicates that are then suppressed).
    pub(super) fn flood_query<T: TraceSink>(
        &mut self,
        src: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        let qid = self.next_query;
        self.next_query += 1;
        if ctx.tracing() {
            ctx.emit(
                now,
                TraceRecord::QueryStart {
                    query: qid,
                    origin: self.nodes[src].incarnation,
                },
            );
        }
        let target = self.qmodel.sample_target(&mut self.rng);
        let mut visited: HashSet<usize> = HashSet::new();
        visited.insert(src);
        let mut frontier = vec![src];
        let mut messages = 0u64;
        let mut results = 0usize;
        for _hop in 0..self.cfg.ttl {
            let mut next = Vec::new();
            for &u in &frontier {
                // Forward to all neighbors; each transmission is a message
                // whether or not the receiver has seen the query.
                let neighbors = self.nodes[u].neighbors.clone();
                for v in neighbors {
                    messages += 1;
                    let first_visit = visited.insert(v);
                    if ctx.tracing() {
                        ctx.emit(
                            now,
                            TraceRecord::Probe {
                                query: qid,
                                target: self.nodes[v].incarnation,
                                kind: ProbeKind::Flood,
                                outcome: if first_visit {
                                    ProbeOutcome::Good
                                } else {
                                    ProbeOutcome::Duplicate
                                },
                            },
                        );
                    }
                    if first_visit {
                        if self.qmodel.answers(&self.nodes[v].library, target) {
                            results += 1;
                        }
                        next.push(v);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        if ctx.tracing() {
            ctx.emit(
                now,
                TraceRecord::QueryEnd {
                    query: qid,
                    satisfied: results >= self.cfg.desired_results,
                    probes: u32::try_from(messages).unwrap_or(u32::MAX),
                    results: results as u32,
                },
            );
        }
        if ctx.after_warmup(now) {
            self.queries += 1;
            if results < self.cfg.desired_results {
                self.unsatisfied += 1;
            }
            self.messages.record(messages as f64);
            self.peers_reached.record(visited.len() as f64 - 1.0);
        }
    }
}
