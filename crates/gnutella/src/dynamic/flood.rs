//! TTL flooding over the live overlay — the query-execution half of the
//! dynamic simulator, split out so overlay maintenance and search can be
//! read independently (a child module sees the engine's private state).
//!
//! A flood is not executed inline: [`GnutellaSim::flood_query`] stamps
//! the origin into the shared [`VisitTable`], parks the query's state in
//! a slab slot, and schedules one [`Event::FloodHop`] at the current
//! instant. Each hop event advances the frontier one TTL step via
//! [`crate::wavefront::advance`] and reschedules itself (same instant,
//! later sequence number) until the TTL is spent or the frontier dies
//! out, then settles the query's metrics. Because same-instant events
//! pop before anything strictly later, the whole flood completes before
//! the next burst or death — exactly the old inline semantics, at a
//! fraction of the per-message cost.

use workload::query::QueryTarget;

use super::*;
use crate::wavefront;

/// In-flight state of one flood, parked in the engine's slab between
/// hop events. Slots are recycled through a free list so frontier
/// buffers keep their capacity across queries.
pub(super) struct FloodState {
    qid: u64,
    target: QueryTarget,
    /// This flood's private visited set. Each in-flight flood owns its
    /// table: concurrent floods from one burst interleave hop events,
    /// and a table shared across floods would let one generation's
    /// stamps clobber another's, re-admitting already-visited peers.
    /// Slab recycling still amortizes the allocation — a reused slot
    /// just bumps its own generation token.
    visits: VisitTable,
    /// This flood's generation token in its visit table.
    token: u64,
    hops_left: u32,
    messages: u64,
    results: u32,
    /// Distinct peers reached, origin excluded (first visits only).
    reached: u64,
    /// Completed but not yet settled (waiting for older floods).
    done: bool,
    frontier: Vec<u32>,
    next: Vec<u32>,
}

impl GnutellaSim {
    /// Starts one flood from `src` with the configured TTL: draws the
    /// query target (same RNG position as the old inline flood), stamps
    /// the origin, and schedules the first hop at `now`.
    pub(super) fn flood_query<T: TraceSink>(
        &mut self,
        src: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        let qid = self.next_query;
        self.next_query += 1;
        if ctx.tracing() {
            ctx.emit(
                now,
                TraceRecord::QueryStart {
                    query: qid,
                    origin: self.nodes[src].incarnation,
                },
            );
        }
        let target = self.qmodel.sample_target(&mut self.rng);
        let ttl = self.rt.ttl as u32;
        let n = self.nodes.len();
        let flood = if let Some(slot) = self.free_floods.pop() {
            let st = &mut self.floods[slot as usize];
            st.qid = qid;
            st.target = target;
            // Mass joins may have grown the network past the size this
            // recycled table was built with.
            st.visits.grow_to(n);
            st.token = st.visits.token();
            st.hops_left = ttl;
            st.messages = 0;
            st.results = 0;
            st.reached = 0;
            st.done = false;
            st.frontier.clear();
            st.frontier.push(src as u32);
            st.next.clear();
            st.visits.visit(src as u32, st.token);
            slot
        } else {
            let slot = u32::try_from(self.floods.len()).expect("flood slab exceeds u32 slots");
            let mut visits = VisitTable::new(n);
            let token = visits.token();
            visits.visit(src as u32, token);
            self.floods.push(FloodState {
                qid,
                target,
                visits,
                token,
                hops_left: ttl,
                messages: 0,
                results: 0,
                reached: 0,
                done: false,
                frontier: vec![src as u32],
                next: Vec::new(),
            });
            slot
        };
        self.settle_queue.push_back(flood);
        ctx.schedule(now, Event::FloodHop { flood });
    }

    /// Advances one hop of flood `flood`: every frontier peer forwards
    /// to all neighbors, first-time receivers are checked against the
    /// query and form the next frontier. Reschedules itself while TTL
    /// and frontier remain, otherwise settles the query.
    pub(super) fn on_flood_hop<T: TraceSink>(
        &mut self,
        flood: u32,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        let idx = flood as usize;
        let mut hop_results = 0u32;
        let mut hop_reached = 0u64;
        let hop_messages;
        {
            // Disjoint field borrows: the hop reads adjacency, peer
            // libraries, and the query model while mutating this
            // flood's visit table and frontier buffers.
            let partition = self.rt.partition;
            let GnutellaSim {
                ref adj,
                ref nodes,
                ref libs,
                ref qmodel,
                ref mut floods,
                ref mut probe_scratch,
                ..
            } = *self;
            let FloodState {
                target,
                token,
                ref mut visits,
                ref frontier,
                ref mut next,
                ..
            } = floods[idx];
            next.clear();
            let neighbors = |u: u32| adj[u as usize].as_slice();
            // An active partition drops cross-group transmissions:
            // never sent, never counted, never traced. The adjacency
            // itself is untouched, so a heal restores the old links.
            let edge_ok = move |u: u32, v: u32| match partition {
                None => true,
                Some(groups) => u % groups == v % groups,
            };
            if ctx.tracing() {
                probe_scratch.clear();
                hop_messages = wavefront::advance_filtered(
                    frontier,
                    next,
                    visits,
                    token,
                    neighbors,
                    edge_ok,
                    |v, first| {
                        let node = &nodes[v as usize];
                        probe_scratch.push((
                            node.incarnation,
                            if first {
                                ProbeOutcome::Good
                            } else {
                                ProbeOutcome::Duplicate
                            },
                        ));
                        if first {
                            hop_reached += 1;
                            if qmodel.answers_in(libs, node.library, target) {
                                hop_results += 1;
                            }
                        }
                    },
                );
            } else {
                hop_messages = wavefront::advance_filtered(
                    frontier,
                    next,
                    visits,
                    token,
                    neighbors,
                    edge_ok,
                    |v, first| {
                        if first {
                            hop_reached += 1;
                            if qmodel.answers_in(libs, nodes[v as usize].library, target) {
                                hop_results += 1;
                            }
                        }
                    },
                );
            }
        }
        let qid = self.floods[idx].qid;
        ctx.emit_probes(now, qid, ProbeKind::Flood, &self.probe_scratch);
        let st = &mut self.floods[idx];
        st.messages += hop_messages;
        st.results += hop_results;
        st.reached += hop_reached;
        st.hops_left -= 1;
        std::mem::swap(&mut st.frontier, &mut st.next);
        if st.hops_left > 0 && !st.frontier.is_empty() {
            ctx.schedule(now, Event::FloodHop { flood });
            return;
        }
        st.done = true;
        // Settle strictly in start (qid) order: a flood whose frontier
        // dies out early must not record its aggregates before an older
        // still-running flood from the same burst — Welford summaries
        // are order-sensitive in floating point, and the byte-identical
        // contract pins the inline formulation's order.
        while let Some(&front) = self.settle_queue.front() {
            if !self.floods[front as usize].done {
                break;
            }
            self.settle_queue.pop_front();
            self.finish_flood(front, now, ctx);
        }
    }

    /// Settles a completed flood: emits the query-end record, records
    /// the post-warm-up metrics, and recycles the slab slot.
    fn finish_flood<T: TraceSink>(
        &mut self,
        flood: u32,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        let st = &self.floods[flood as usize];
        let (qid, messages, results, reached) = (st.qid, st.messages, st.results, st.reached);
        self.free_floods.push(flood);
        let desired = self.cfg.desired_results;
        if ctx.tracing() {
            ctx.emit(
                now,
                TraceRecord::QueryEnd {
                    query: qid,
                    satisfied: results as usize >= desired,
                    probes: u32::try_from(messages).unwrap_or(u32::MAX),
                    results,
                },
            );
        }
        if ctx.after_warmup(now) {
            self.queries += 1;
            if (results as usize) < desired {
                self.unsatisfied += 1;
            }
            self.messages.record(messages as f64);
            self.peers_reached.record(reached as f64);
        }
    }
}
