//! Scenario interventions: the [`Intervenable`] side of `GnutellaSim`.
//!
//! Split out like `flood`; this is still the same `GnutellaSim`. Every
//! intervention routes through the engine's existing machinery — joins
//! through the populate/top-up path, leaves through `on_death`, flash
//! crowds through `flood_query`, parameter flips through
//! [`GnutellaConfig::validate`] — and mutates only the
//! [`super::Runtime`] side of the config/state split. `self.cfg` is
//! never written after `GnutellaSim::new`.

use simkit::scenario::{Intervenable, Intervention, Param, ScenarioError};

use super::*;

impl GnutellaSim {
    /// Grows the overlay by `count` newborn peers: fresh library, fresh
    /// incarnation, top-up wiring, scheduled death and burst — the same
    /// path a rebirth takes, minus the departure.
    fn mass_join<T: TraceSink>(
        &mut self,
        count: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        for _ in 0..count {
            let slot = self.nodes.len();
            let library = self.fresh_library();
            let incarnation = self.next_incarnation;
            self.next_incarnation += 1;
            self.nodes.push(Node {
                incarnation,
                library,
            });
            self.adj.push(Vec::new());
            self.top_up_connections(slot);
            self.churn.spawn(
                ctx,
                &mut self.rng,
                now,
                incarnation,
                Event::Death {
                    slot: slot as u32,
                    incarnation,
                },
            );
            let gap = self.workload.sample_burst_gap(&mut self.rng);
            ctx.schedule(
                now + gap,
                Event::Burst {
                    slot: slot as u32,
                    incarnation,
                },
            );
        }
    }

    /// Kills `count` uniformly chosen peers through the normal death
    /// path (in-place rebirth included: the population stays constant
    /// and the wave's damage is the mass re-wiring).
    fn mass_leave<T: TraceSink>(
        &mut self,
        count: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        for _ in 0..count {
            let slot = self.rng.below(self.nodes.len());
            let incarnation = self.nodes[slot].incarnation;
            // The victim's originally scheduled death event becomes
            // stale and is ignored by the incarnation guard.
            self.on_death(slot, incarnation, now, ctx);
        }
    }

    /// Injects `queries` extra floods immediately, from uniformly
    /// chosen sources, through the normal flood path.
    fn flash_crowd<T: TraceSink>(
        &mut self,
        queries: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        for _ in 0..queries {
            let src = self.rng.below(self.nodes.len());
            self.flood_query(src, now, ctx);
        }
    }

    /// Applies a parameter flip: overlays the current runtime values
    /// plus the flip onto a copy of the immutable config, re-validates
    /// through [`GnutellaConfig::validate`], and only then installs the
    /// new value into the runtime state.
    fn param_flip(&mut self, param: &Param) -> Result<(), ScenarioError> {
        let mut probe = self.cfg.clone();
        probe.query_rate = self.rt.query_rate;
        probe.ttl = self.rt.ttl;
        probe.target_degree = self.rt.target_degree;
        match *param {
            Param::QueryRate(r) => probe.query_rate = r,
            Param::FloodTtl(t) => probe.ttl = t,
            Param::TargetDegree(d) => probe.target_degree = d,
            _ => {
                return Err(ScenarioError::Unsupported {
                    engine: "gnutella",
                    action: param.name(),
                })
            }
        }
        probe
            .validate()
            .map_err(|e| ScenarioError::InvalidParam(e.to_string()))?;
        if probe.query_rate != self.rt.query_rate {
            self.workload = QueryWorkload::with_rate(probe.query_rate)
                .map_err(|_| ScenarioError::InvalidParam("bad query rate".into()))?;
        }
        self.rt.query_rate = probe.query_rate;
        self.rt.ttl = probe.ttl;
        self.rt.target_degree = probe.target_degree;
        Ok(())
    }
}

impl<T: TraceSink> Intervenable<T> for GnutellaSim {
    fn intervene(
        &mut self,
        now: SimTime,
        action: &Intervention,
        ctx: &mut SimCtx<'_, Event, T>,
    ) -> Result<(), ScenarioError> {
        self.counters.incr("interventions");
        match *action {
            Intervention::MassJoin { count } => self.mass_join(count, now, ctx),
            Intervention::MassLeave { count } => self.mass_leave(count, now, ctx),
            Intervention::FlashCrowd { queries } => self.flash_crowd(queries, now, ctx),
            Intervention::ParamFlip(ref param) => self.param_flip(param)?,
            Intervention::Partition { groups } => {
                if groups < 2 {
                    return Err(ScenarioError::BadPartition { groups });
                }
                self.rt.partition = Some(groups);
            }
            Intervention::Heal => self.rt.partition = None,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::scenario::Scenario;

    fn small() -> GnutellaConfig {
        GnutellaConfig::small_test(0x67)
    }

    #[test]
    fn empty_scenario_equals_plain_run() {
        let plain = small().build().unwrap().run();
        let scen = small()
            .build()
            .unwrap()
            .run_scenario(&Scenario::new())
            .unwrap();
        assert_eq!(plain, scen);
    }

    #[test]
    fn join_wave_grows_the_overlay() {
        let n = small().network_size;
        let scenario = Scenario::new().at(150.0).mass_join(n / 2);
        let report = small().build().unwrap().run_scenario(&scenario).unwrap();
        assert_eq!(report.counters.get("interventions"), 1);
        assert!(
            report.counters.get("connect_messages") > 0,
            "newborns must wire themselves in"
        );
        // Post-warm-up floods over the grown overlay can reach more
        // than the original population ever could.
        assert!(report.queries > 0);
    }

    #[test]
    fn mass_leave_rewires_the_overlay() {
        let scenario = Scenario::new().at(150.0).mass_leave(40);
        let report = small().build().unwrap().run_scenario(&scenario).unwrap();
        assert!(report.counters.get("deaths") >= 40);
        assert!(report.counters.get("repairs") > 0);
    }

    #[test]
    fn flash_crowd_floods_extra_queries() {
        let scenario = Scenario::new().at(150.0).flash_crowd(100);
        let report = small().build().unwrap().run_scenario(&scenario).unwrap();
        assert!(
            report.queries >= 100,
            "flash floods land after warm-up: {}",
            report.queries
        );
    }

    #[test]
    fn ttl_flip_changes_flood_reach() {
        // Drop the TTL to 1 halfway through: messages per query must
        // fall well below the TTL-7 baseline's.
        let baseline = small().build().unwrap().run();
        let scenario = Scenario::new().at(200.0).param_flip(Param::FloodTtl(1));
        let flipped = small().build().unwrap().run_scenario(&scenario).unwrap();
        assert!(
            flipped.messages_per_query() < baseline.messages_per_query(),
            "TTL-1 tail must cut the message mean: {:.0} vs {:.0}",
            flipped.messages_per_query(),
            baseline.messages_per_query()
        );
    }

    #[test]
    fn param_flip_revalidates_and_rejects_unsupported() {
        let bad = Scenario::new().at(100.0).param_flip(Param::FloodTtl(0));
        let err = small().build().unwrap().run_scenario(&bad).unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidParam(_)));

        let unsupported = Scenario::new().at(100.0).param_flip(Param::Fanout(3));
        let err = small()
            .build()
            .unwrap()
            .run_scenario(&unsupported)
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Unsupported {
                engine: "gnutella",
                action: "fanout",
            }
        );
    }

    #[test]
    fn partition_shrinks_reach_and_heal_restores_it() {
        let part_only = Scenario::new().at(120.0).partition(2);
        let p = small().build().unwrap().run_scenario(&part_only).unwrap();
        let baseline = small().build().unwrap().run();
        assert!(
            p.peers_reached.mean() < baseline.peers_reached.mean(),
            "cross-group drops must shrink mean reach: {:.0} vs {:.0}",
            p.peers_reached.mean(),
            baseline.peers_reached.mean()
        );
        let healed = Scenario::new().at(120.0).partition(2).at(260.0).heal();
        let h = small().build().unwrap().run_scenario(&healed).unwrap();
        assert!(
            h.peers_reached.mean() > p.peers_reached.mean(),
            "healing must restore some reach: {:.0} vs {:.0}",
            h.peers_reached.mean(),
            p.peers_reached.mean()
        );
    }
}
