//! Configuration and report types for the dynamic Gnutella simulator.

use super::*;

/// Configuration of a dynamic Gnutella run.
///
/// Constructed like the GUESS and gossip configs: start from
/// [`GnutellaConfig::default`] (paper-scale parameters) or
/// [`GnutellaConfig::small_test`], chain `with_*` setters, and finish
/// with [`GnutellaConfig::build`], which validates and returns the
/// ready-to-run simulator.
///
/// ```
/// use gnutella::dynamic::GnutellaConfig;
///
/// let sim = GnutellaConfig::default()
///     .with_network_size(200)
///     .with_ttl(5)
///     .with_seed(7)
///     .build()?;
/// # let _ = sim;
/// # Ok::<(), gnutella::dynamic::InvalidGnutellaConfig>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GnutellaConfig {
    /// Live peers at all times.
    pub network_size: usize,
    /// Connections each peer tries to keep open.
    pub target_degree: usize,
    /// Query TTL (flood radius).
    pub ttl: usize,
    /// Results needed to satisfy a query.
    pub desired_results: usize,
    /// Per-user query rate (queries/second), bursty as in the paper.
    pub query_rate: f64,
    /// Lifespan multiplier for the shared lifetime model.
    pub lifespan_multiplier: f64,
    /// Content universe parameters (shared with GUESS).
    pub catalog: CatalogParams,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Warm-up excluded from query metrics.
    pub warmup: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Cadence of the kernel's sample tick (live-peer snapshots in the
    /// trace). `None` — the default — schedules no tick events at all,
    /// keeping existing runs byte-identical.
    pub sample_interval: Option<SimDuration>,
}

impl Default for GnutellaConfig {
    fn default() -> Self {
        GnutellaConfig {
            network_size: 1000,
            target_degree: 4,
            ttl: 7,
            desired_results: 1,
            query_rate: 9.26e-3,
            lifespan_multiplier: 1.0,
            catalog: CatalogParams::default(),
            duration: SimDuration::from_secs(2400.0),
            warmup: SimDuration::from_secs(600.0),
            seed: 0x67u64,
            sample_interval: None,
        }
    }
}

impl GnutellaConfig {
    /// A downsized configuration for tests: 150 peers, a 400 s run with
    /// a 100 s warm-up, and a 4000-item catalog — enough to exercise
    /// churn and flooding in milliseconds.
    #[must_use]
    pub fn small_test(seed: u64) -> Self {
        GnutellaConfig {
            network_size: 150,
            duration: SimDuration::from_secs(400.0),
            warmup: SimDuration::from_secs(100.0),
            catalog: CatalogParams {
                items: 4000,
                ..CatalogParams::default()
            },
            seed,
            ..GnutellaConfig::default()
        }
    }

    /// Sets the constant live-peer population.
    #[must_use]
    pub fn with_network_size(mut self, network_size: usize) -> Self {
        self.network_size = network_size;
        self
    }

    /// Sets the per-peer connection target.
    #[must_use]
    pub fn with_target_degree(mut self, target_degree: usize) -> Self {
        self.target_degree = target_degree;
        self
    }

    /// Sets the query TTL (flood radius).
    #[must_use]
    pub fn with_ttl(mut self, ttl: usize) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the number of results that satisfies a query.
    #[must_use]
    pub fn with_desired_results(mut self, desired_results: usize) -> Self {
        self.desired_results = desired_results;
        self
    }

    /// Sets the per-user query rate (queries/second).
    #[must_use]
    pub fn with_query_rate(mut self, query_rate: f64) -> Self {
        self.query_rate = query_rate;
        self
    }

    /// Sets the lifespan multiplier of the shared lifetime model.
    #[must_use]
    pub fn with_lifespan_multiplier(mut self, lifespan_multiplier: f64) -> Self {
        self.lifespan_multiplier = lifespan_multiplier;
        self
    }

    /// Sets the content-universe parameters.
    #[must_use]
    pub fn with_catalog(mut self, catalog: CatalogParams) -> Self {
        self.catalog = catalog;
        self
    }

    /// Sets the simulated duration.
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the warm-up span excluded from query metrics.
    #[must_use]
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the kernel sample-tick cadence (`None` disables ticks).
    #[must_use]
    pub fn with_sample_interval(mut self, sample_interval: Option<SimDuration>) -> Self {
        self.sample_interval = sample_interval;
        self
    }

    /// Checks the parameters for consistency.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvalidGnutellaConfig`] violation found.
    pub fn validate(&self) -> Result<(), InvalidGnutellaConfig> {
        if self.network_size < 2 {
            return Err(InvalidGnutellaConfig::NetworkTooSmall);
        }
        if self.target_degree == 0 || self.target_degree >= self.network_size {
            return Err(InvalidGnutellaConfig::BadDegree);
        }
        if self.ttl == 0 {
            return Err(InvalidGnutellaConfig::ZeroTtl);
        }
        if self.desired_results == 0 {
            return Err(InvalidGnutellaConfig::ZeroDesiredResults);
        }
        if !(self.query_rate.is_finite() && self.query_rate > 0.0) {
            return Err(InvalidGnutellaConfig::BadQueryRate);
        }
        if !(self.lifespan_multiplier.is_finite() && self.lifespan_multiplier > 0.0) {
            return Err(InvalidGnutellaConfig::BadLifespanMultiplier);
        }
        if self.warmup >= self.duration {
            return Err(InvalidGnutellaConfig::WarmupTooLong);
        }
        Ok(())
    }

    /// Validates the configuration and builds the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGnutellaConfig`] for inconsistent parameters.
    pub fn build(self) -> Result<GnutellaSim, InvalidGnutellaConfig> {
        GnutellaSim::new(self)
    }
}

/// Error constructing a [`GnutellaSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidGnutellaConfig {
    /// Fewer than two peers — no overlay to search.
    NetworkTooSmall,
    /// Target degree is zero or not less than the network size.
    BadDegree,
    /// A zero TTL floods nowhere.
    ZeroTtl,
    /// Zero desired results satisfies every query vacuously.
    ZeroDesiredResults,
    /// Query rate must be finite and positive.
    BadQueryRate,
    /// Lifespan multiplier must be finite and positive.
    BadLifespanMultiplier,
    /// Warm-up must end before the run does.
    WarmupTooLong,
    /// Content-catalog parameters are inconsistent.
    BadCatalog,
}

impl std::fmt::Display for InvalidGnutellaConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            InvalidGnutellaConfig::NetworkTooSmall => "network_size must be at least 2",
            InvalidGnutellaConfig::BadDegree => {
                "target_degree must satisfy 0 < degree < network_size"
            }
            InvalidGnutellaConfig::ZeroTtl => "ttl must be at least 1",
            InvalidGnutellaConfig::ZeroDesiredResults => "desired_results must be at least 1",
            InvalidGnutellaConfig::BadQueryRate => "query_rate must be finite and positive",
            InvalidGnutellaConfig::BadLifespanMultiplier => {
                "lifespan_multiplier must be finite and positive"
            }
            InvalidGnutellaConfig::WarmupTooLong => "warmup must end before duration",
            InvalidGnutellaConfig::BadCatalog => "catalog parameters are inconsistent",
        };
        write!(f, "gnutella config: {msg}")
    }
}

impl std::error::Error for InvalidGnutellaConfig {}

/// Aggregated results of a dynamic Gnutella run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GnutellaReport {
    /// Queries executed after warm-up.
    pub queries: u64,
    /// Queries that found fewer than the desired results.
    pub unsatisfied: u64,
    /// Per-query messages transmitted (deliveries + duplicate arrivals).
    pub messages: Summary,
    /// Per-query count of distinct peers reached.
    pub peers_reached: Summary,
    /// Event counters (connections made, repairs, deaths, …).
    pub counters: CounterSet,
    /// Kernel events processed over the whole run (including warm-up).
    /// Wall-clock throughput denominator for `repro bench`; not part of
    /// any rendered report.
    pub events_processed: u64,
}

impl GnutellaReport {
    /// Fraction of queries that went unsatisfied.
    #[must_use]
    pub fn unsatisfaction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.unsatisfied as f64 / self.queries as f64
        }
    }

    /// Mean messages per query — the flooding cost that corresponds to
    /// GUESS's probes/query.
    #[must_use]
    pub fn messages_per_query(&self) -> f64 {
        self.messages.mean()
    }

    /// The amplification factor: network messages caused per query
    /// message the originator itself sends (its own degree).
    #[must_use]
    pub fn amplification(&self) -> f64 {
        let reached = self.peers_reached.mean();
        if reached > 0.0 {
            self.messages_per_query() / (self.messages_per_query() / reached).max(1.0)
        } else {
            0.0
        }
    }
}
