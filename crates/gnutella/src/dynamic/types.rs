//! Configuration and report types for the dynamic Gnutella simulator.

use super::*;

/// Configuration of a dynamic Gnutella run.
#[derive(Debug, Clone, PartialEq)]
pub struct GnutellaConfig {
    /// Live peers at all times.
    pub network_size: usize,
    /// Connections each peer tries to keep open.
    pub target_degree: usize,
    /// Query TTL (flood radius).
    pub ttl: usize,
    /// Results needed to satisfy a query.
    pub desired_results: usize,
    /// Per-user query rate (queries/second), bursty as in the paper.
    pub query_rate: f64,
    /// Lifespan multiplier for the shared lifetime model.
    pub lifespan_multiplier: f64,
    /// Content universe parameters (shared with GUESS).
    pub catalog: CatalogParams,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Warm-up excluded from query metrics.
    pub warmup: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Cadence of the kernel's sample tick (live-peer snapshots in the
    /// trace). `None` — the default — schedules no tick events at all,
    /// keeping existing runs byte-identical.
    pub sample_interval: Option<SimDuration>,
}

impl Default for GnutellaConfig {
    fn default() -> Self {
        GnutellaConfig {
            network_size: 1000,
            target_degree: 4,
            ttl: 7,
            desired_results: 1,
            query_rate: 9.26e-3,
            lifespan_multiplier: 1.0,
            catalog: CatalogParams::default(),
            duration: SimDuration::from_secs(2400.0),
            warmup: SimDuration::from_secs(600.0),
            seed: 0x67u64,
            sample_interval: None,
        }
    }
}

/// Error constructing a [`GnutellaSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGnutellaConfig;

impl std::fmt::Display for InvalidGnutellaConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gnutella config requires n > degree > 0, ttl > 0, positive rates"
        )
    }
}

impl std::error::Error for InvalidGnutellaConfig {}

/// Aggregated results of a dynamic Gnutella run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GnutellaReport {
    /// Queries executed after warm-up.
    pub queries: u64,
    /// Queries that found fewer than the desired results.
    pub unsatisfied: u64,
    /// Per-query messages transmitted (deliveries + duplicate arrivals).
    pub messages: Summary,
    /// Per-query count of distinct peers reached.
    pub peers_reached: Summary,
    /// Event counters (connections made, repairs, deaths, …).
    pub counters: CounterSet,
    /// Kernel events processed over the whole run (including warm-up).
    /// Wall-clock throughput denominator for `repro bench`; not part of
    /// any rendered report.
    pub events_processed: u64,
}

impl GnutellaReport {
    /// Fraction of queries that went unsatisfied.
    #[must_use]
    pub fn unsatisfaction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.unsatisfied as f64 / self.queries as f64
        }
    }

    /// Mean messages per query — the flooding cost that corresponds to
    /// GUESS's probes/query.
    #[must_use]
    pub fn messages_per_query(&self) -> f64 {
        self.messages.mean()
    }

    /// The amplification factor: network messages caused per query
    /// message the originator itself sends (its own degree).
    #[must_use]
    pub fn amplification(&self) -> f64 {
        let reached = self.peers_reached.mean();
        if reached > 0.0 {
            self.messages_per_query() / (self.messages_per_query() / reached).max(1.0)
        } else {
            0.0
        }
    }
}
