//! A static peer population sharing the GUESS study's content models.
//!
//! The Figure 8 comparison holds the *content* fixed and varies only the
//! search mechanism, so the forwarding baselines evaluate against the same
//! catalog / library / query models the GUESS simulator uses.

use simkit::rng::RngStream;
use workload::content::{Catalog, CatalogParams, PeerLibrary};
use workload::files::FileCountModel;
use workload::query::{QueryModel, QueryTarget};

/// A fixed set of peers with content libraries, plus the query model.
///
/// # Examples
///
/// ```
/// use gnutella::population::Population;
/// use workload::content::CatalogParams;
///
/// let pop = Population::generate(100, CatalogParams::default(), 42).unwrap();
/// assert_eq!(pop.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct Population {
    libraries: Vec<PeerLibrary>,
    model: QueryModel,
}

/// Error constructing a [`Population`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildPopulationError {
    /// No peers requested.
    Empty,
    /// Catalog parameters were invalid.
    BadCatalog,
}

impl std::fmt::Display for BuildPopulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildPopulationError::Empty => write!(f, "population must be non-empty"),
            BuildPopulationError::BadCatalog => write!(f, "invalid catalog parameters"),
        }
    }
}

impl std::error::Error for BuildPopulationError {}

impl Population {
    /// Generates `n` peers with Gnutella-like file counts and libraries
    /// drawn from a fresh catalog.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPopulationError`] if `n == 0` or the catalog
    /// parameters are rejected.
    pub fn generate(
        n: usize,
        catalog: CatalogParams,
        seed: u64,
    ) -> Result<Self, BuildPopulationError> {
        if n == 0 {
            return Err(BuildPopulationError::Empty);
        }
        let catalog = Catalog::new(catalog).map_err(|_| BuildPopulationError::BadCatalog)?;
        let files = FileCountModel::gnutella_like();
        let mut rng = RngStream::from_seed(seed, "population");
        let libraries = (0..n)
            .map(|_| {
                let count = files.sample_file_count(&mut rng);
                catalog.build_library(count, &mut rng)
            })
            .collect();
        Ok(Population {
            libraries,
            model: QueryModel::new(catalog),
        })
    }

    /// Number of peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.libraries.len()
    }

    /// Returns true if there are no peers (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.libraries.is_empty()
    }

    /// The query model shared with the GUESS simulator.
    #[must_use]
    pub fn query_model(&self) -> &QueryModel {
        &self.model
    }

    /// Library of peer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn library(&self, i: usize) -> &PeerLibrary {
        &self.libraries[i]
    }

    /// Whether peer `i` answers `target`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn answers(&self, i: usize, target: QueryTarget) -> bool {
        self.model.answers(&self.libraries[i], target)
    }

    /// Draws a query target from the query-popularity distribution.
    #[must_use]
    pub fn sample_target(&self, rng: &mut RngStream) -> QueryTarget {
        self.model.sample_target(rng)
    }

    /// Number of peers that could answer `target` — the content's true
    /// replication in this population.
    #[must_use]
    pub fn holders(&self, target: QueryTarget) -> usize {
        (0..self.len()).filter(|&i| self.answers(i, target)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_population() {
        assert_eq!(
            Population::generate(0, CatalogParams::default(), 1).unwrap_err(),
            BuildPopulationError::Empty
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Population::generate(50, CatalogParams::default(), 9).unwrap();
        let b = Population::generate(50, CatalogParams::default(), 9).unwrap();
        for i in 0..50 {
            assert_eq!(a.library(i), b.library(i));
        }
    }

    #[test]
    fn some_peers_share_nothing() {
        let pop = Population::generate(400, CatalogParams::default(), 2).unwrap();
        let free = (0..400).filter(|&i| pop.library(i).is_empty()).count();
        assert!(free > 40, "expect ~25% free riders, got {free}/400");
        assert!(free < 200);
    }

    #[test]
    fn popular_targets_have_more_holders() {
        let pop = Population::generate(500, CatalogParams::default(), 3).unwrap();
        use workload::content::ItemId;
        use workload::query::QueryTarget;
        let head = pop.holders(QueryTarget { item: ItemId(0) });
        let tail = pop.holders(QueryTarget {
            item: ItemId(30_000),
        });
        assert!(head > tail, "head item holders {head} vs tail {tail}");
    }
}
