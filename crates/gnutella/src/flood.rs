//! TTL-scoped flooding — the Gnutella query primitive.
//!
//! A query floods outward from its source: every peer within `ttl` hops
//! receives it exactly once (duplicate suppression by message id), but the
//! *message cost* counts every copy sent over every edge, which is what
//! makes flooding expensive and amplifies attacks (§3.3).

use workload::query::QueryTarget;

use crate::population::Population;
use crate::topology::Topology;

/// The outcome of one flooded query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodOutcome {
    /// Peers that received the query (excluding the source).
    pub peers_reached: usize,
    /// Query messages transmitted (every edge crossing counts, including
    /// duplicates that are then suppressed).
    pub messages: usize,
    /// Results found among reached peers.
    pub results: usize,
}

impl FloodOutcome {
    /// True if at least `desired` results were found.
    #[must_use]
    pub fn satisfied(&self, desired: usize) -> bool {
        self.results >= desired
    }
}

/// Floods `target` from `src` with the given `ttl` and tallies the cost.
///
/// # Panics
///
/// Panics if `src` is out of range or the population size differs from the
/// topology size.
#[must_use]
pub fn flood(
    topo: &Topology,
    pop: &Population,
    src: usize,
    ttl: usize,
    target: QueryTarget,
) -> FloodOutcome {
    assert_eq!(topo.len(), pop.len(), "topology and population must agree");
    let reached = topo.bfs_within(src, ttl);
    let mut results = 0;
    let mut messages = 0;
    for &(u, d) in &reached {
        if u != src && pop.answers(u, target) {
            results += 1;
        }
        // A peer at depth d < ttl forwards to all its neighbors; the
        // source initiates to all of its own.
        if d < ttl {
            messages += topo.degree(u);
        }
    }
    FloodOutcome {
        peers_reached: reached.len().saturating_sub(1),
        messages,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::rng::RngStream;
    use workload::content::CatalogParams;

    fn setup(n: usize) -> (Topology, Population, RngStream) {
        let mut rng = RngStream::from_seed(31, "flood");
        let topo = Topology::random_regular(n, 3, &mut rng);
        let pop = Population::generate(n, CatalogParams::default(), 31).unwrap();
        (topo, pop, rng)
    }

    #[test]
    fn ttl_zero_reaches_nobody() {
        let (topo, pop, mut rng) = setup(100);
        let t = pop.sample_target(&mut rng);
        let out = flood(&topo, &pop, 0, 0, t);
        assert_eq!(out.peers_reached, 0);
        assert_eq!(out.results, 0);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn reach_grows_with_ttl() {
        let (topo, pop, mut rng) = setup(300);
        let t = pop.sample_target(&mut rng);
        let mut last = 0;
        for ttl in 0..8 {
            let out = flood(&topo, &pop, 5, ttl, t);
            assert!(out.peers_reached >= last);
            last = out.peers_reached;
        }
        assert_eq!(last, 299, "high ttl floods the whole graph");
    }

    #[test]
    fn messages_exceed_peers_reached() {
        // Duplicate suppression means messages >= deliveries.
        let (topo, pop, mut rng) = setup(200);
        let t = pop.sample_target(&mut rng);
        let out = flood(&topo, &pop, 0, 5, t);
        assert!(
            out.messages >= out.peers_reached,
            "{} < {}",
            out.messages,
            out.peers_reached
        );
    }

    #[test]
    fn results_bounded_by_holders() {
        let (topo, pop, mut rng) = setup(200);
        for _ in 0..20 {
            let t = pop.sample_target(&mut rng);
            let out = flood(&topo, &pop, 3, 10, t);
            assert!(out.results <= pop.holders(t));
            assert!(out.satisfied(0));
        }
    }

    #[test]
    fn full_flood_finds_all_holders_except_source() {
        let (topo, pop, mut rng) = setup(150);
        let t = pop.sample_target(&mut rng);
        let out = flood(&topo, &pop, 9, 50, t);
        let holders = pop.holders(t);
        let source_holds = usize::from(pop.answers(9, t));
        assert_eq!(out.results, holders - source_holds);
    }
}
