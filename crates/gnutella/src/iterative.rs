//! Iterative deepening — coarse-grained flexible extent.
//!
//! The technique of Yang & Garcia-Molina (ICDCS 2002): flood with a small
//! TTL; if unsatisfied, re-flood with the next TTL in the policy, and so
//! on. Extent control is coarse — each step re-covers everything the
//! previous step reached — which is why Figure 8 places it between fixed
//! extent and GUESS.

use simkit::rng::RngStream;
use workload::query::QueryTarget;

use crate::population::Population;
use crate::topology::Topology;

/// The outcome of one iteratively-deepened query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeepeningOutcome {
    /// Total query deliveries across all iterations (peers re-covered by a
    /// deeper flood are charged again).
    pub probe_cost: usize,
    /// Iterations executed (at least 1).
    pub iterations: usize,
    /// Results held by peers within the final flood's horizon.
    pub results: usize,
    /// Whether the desired result count was reached.
    pub satisfied: bool,
}

/// The TTL schedule of an iterative-deepening policy.
///
/// # Examples
///
/// ```
/// use gnutella::iterative::DeepeningPolicy;
///
/// let p = DeepeningPolicy::new(vec![2, 4, 6]).unwrap();
/// assert_eq!(p.ttls(), &[2, 4, 6]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeepeningPolicy {
    ttls: Vec<usize>,
}

/// Error constructing a [`DeepeningPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BadPolicyError {
    /// No TTLs given.
    Empty,
    /// TTLs not strictly increasing.
    NotIncreasing,
}

impl std::fmt::Display for BadPolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BadPolicyError::Empty => write!(f, "policy needs at least one ttl"),
            BadPolicyError::NotIncreasing => write!(f, "ttls must be strictly increasing"),
        }
    }
}

impl std::error::Error for BadPolicyError {}

impl DeepeningPolicy {
    /// Creates a policy from a strictly increasing TTL schedule.
    ///
    /// # Errors
    ///
    /// Returns [`BadPolicyError`] if the schedule is empty or not strictly
    /// increasing.
    pub fn new(ttls: Vec<usize>) -> Result<Self, BadPolicyError> {
        if ttls.is_empty() {
            return Err(BadPolicyError::Empty);
        }
        if ttls.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BadPolicyError::NotIncreasing);
        }
        Ok(DeepeningPolicy { ttls })
    }

    /// The schedule.
    #[must_use]
    pub fn ttls(&self) -> &[usize] {
        &self.ttls
    }
}

/// Runs one iteratively-deepened query from `src`.
///
/// # Panics
///
/// Panics if `src` is out of range, the population and topology disagree in
/// size, or `desired == 0`.
#[must_use]
pub fn iterative_deepening(
    topo: &Topology,
    pop: &Population,
    policy: &DeepeningPolicy,
    src: usize,
    target: QueryTarget,
    desired: usize,
) -> DeepeningOutcome {
    assert_eq!(topo.len(), pop.len(), "topology and population must agree");
    assert!(desired > 0, "desired results must be positive");
    let mut cost = 0usize;
    let mut iterations = 0usize;
    let mut results = 0usize;
    for &ttl in policy.ttls() {
        iterations += 1;
        let reached = topo.bfs_within(src, ttl);
        // Every delivery in this iteration is charged, including peers the
        // previous iteration already covered — that is the coarseness.
        cost += reached.len().saturating_sub(1);
        results = reached
            .iter()
            .filter(|&&(u, _)| u != src && pop.answers(u, target))
            .count();
        if results >= desired {
            return DeepeningOutcome {
                probe_cost: cost,
                iterations,
                results,
                satisfied: true,
            };
        }
    }
    DeepeningOutcome {
        probe_cost: cost,
        iterations,
        results,
        satisfied: false,
    }
}

/// Convenience: evaluates `queries` random queries from random sources and
/// returns `(mean probe cost, unsatisfied fraction)`.
///
/// # Panics
///
/// Panics if `queries == 0` (and propagates the panics of
/// [`iterative_deepening`]).
#[must_use]
pub fn evaluate(
    topo: &Topology,
    pop: &Population,
    policy: &DeepeningPolicy,
    queries: usize,
    desired: usize,
    rng: &mut RngStream,
) -> (f64, f64) {
    assert!(queries > 0, "need at least one query");
    let mut cost_sum = 0usize;
    let mut unsat = 0usize;
    for _ in 0..queries {
        let src = rng.below(topo.len());
        let target = pop.sample_target(rng);
        let out = iterative_deepening(topo, pop, policy, src, target, desired);
        cost_sum += out.probe_cost;
        if !out.satisfied {
            unsat += 1;
        }
    }
    (
        cost_sum as f64 / queries as f64,
        unsat as f64 / queries as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::content::CatalogParams;

    fn setup(n: usize) -> (Topology, Population, RngStream) {
        let mut rng = RngStream::from_seed(23, "iter");
        let topo = Topology::random_regular(n, 3, &mut rng);
        let pop = Population::generate(n, CatalogParams::default(), 23).unwrap();
        (topo, pop, rng)
    }

    #[test]
    fn policy_validation() {
        assert_eq!(
            DeepeningPolicy::new(vec![]).unwrap_err(),
            BadPolicyError::Empty
        );
        assert_eq!(
            DeepeningPolicy::new(vec![2, 2]).unwrap_err(),
            BadPolicyError::NotIncreasing
        );
        assert_eq!(
            DeepeningPolicy::new(vec![3, 1]).unwrap_err(),
            BadPolicyError::NotIncreasing
        );
        assert!(DeepeningPolicy::new(vec![1, 3, 5]).is_ok());
    }

    #[test]
    fn popular_queries_stop_early() {
        let (topo, pop, mut rng) = setup(400);
        let policy = DeepeningPolicy::new(vec![1, 3, 8]).unwrap();
        // Find a target replicated widely enough that TTL=1 should hit it.
        let target = (0..200)
            .map(|_| pop.sample_target(&mut rng))
            .max_by_key(|t| pop.holders(*t))
            .unwrap();
        let out = iterative_deepening(&topo, &pop, &policy, 0, target, 1);
        assert!(out.satisfied);
        assert!(out.iterations <= 2, "popular content should satisfy early");
    }

    #[test]
    fn impossible_queries_pay_full_schedule() {
        let (topo, pop, mut rng) = setup(200);
        let policy = DeepeningPolicy::new(vec![1, 3, 10]).unwrap();
        // Find an unanswerable target.
        let target = (0..2000)
            .map(|_| pop.sample_target(&mut rng))
            .find(|t| pop.holders(*t) == 0)
            .expect("the catalog tail has unreplicated items");
        let out = iterative_deepening(&topo, &pop, &policy, 0, target, 1);
        assert!(!out.satisfied);
        assert_eq!(out.iterations, 3);
        assert_eq!(out.results, 0);
        // Cost includes the re-covered peers of every iteration.
        let full = topo.bfs_within(0, 10).len() - 1;
        assert!(out.probe_cost > full, "deepening re-pays earlier rings");
    }

    #[test]
    fn deeper_schedules_cost_more_but_satisfy_more() {
        let (topo, pop, mut rng) = setup(300);
        let shallow = DeepeningPolicy::new(vec![1]).unwrap();
        let deep = DeepeningPolicy::new(vec![1, 4, 8]).unwrap();
        let (c1, u1) = evaluate(&topo, &pop, &shallow, 150, 1, &mut rng);
        let (c2, u2) = evaluate(&topo, &pop, &deep, 150, 1, &mut rng);
        assert!(c2 > c1, "deep schedule must cost more ({c2} <= {c1})");
        assert!(u2 < u1, "deep schedule must satisfy more ({u2} >= {u1})");
    }
}
