//! Configuration of a gossip search run.
//!
//! Mirrors the shape of `guess::config::Config`: plain public fields, a
//! `validate` method returning a typed error, and `with_*` builder
//! setters so experiment sweeps stay declarative.

use simkit::time::SimDuration;
use workload::content::CatalogParams;

/// Configuration of one gossip simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Live peers at all times (`NetworkSize`).
    pub network_size: usize,
    /// Contacts each active spreader makes per round.
    pub fanout: usize,
    /// Rounds a rumor may spread before it is retired.
    pub round_ttl: u32,
    /// Probability that a duplicate receiver re-enters dissemination
    /// for one round (push/pull hybrid; `0` is pure push).
    pub pull_probability: f64,
    /// Results needed to satisfy a query (`NumDesiredResults`).
    pub num_desired_results: u32,
    /// Per-user query rate (queries/second), bursty as in the paper.
    pub query_rate: f64,
    /// Lifespan multiplier for the shared lifetime model.
    pub lifespan_multiplier: f64,
    /// Wall-clock gap between successive gossip rounds of one rumor.
    pub round_interval: SimDuration,
    /// Content universe parameters (shared with GUESS and Gnutella).
    pub catalog: CatalogParams,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Warm-up excluded from query metrics.
    pub warmup: SimDuration,
    /// Master seed; everything stochastic derives from it.
    pub seed: u64,
    /// Cadence of the kernel's sample tick (live-peer snapshots in the
    /// trace); `None` — the default — schedules no tick events at all.
    pub sample_interval: Option<SimDuration>,
    /// Lane count for the conservative parallel kernel
    /// ([`crate::engine::run_lanes`]). `1` (the default) is the serial
    /// path — byte-identical to every committed golden. With `n > 1`
    /// the population is split into `n` seed-addressed lanes whose
    /// output is a pure function of `(seed, lanes)`, independent of how
    /// many worker threads execute them.
    pub lanes: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            network_size: 1000,
            fanout: 3,
            round_ttl: 8,
            pull_probability: 0.3,
            num_desired_results: 1,
            query_rate: 9.26e-3,
            lifespan_multiplier: 1.0,
            round_interval: SimDuration::from_secs(0.5),
            catalog: CatalogParams::default(),
            duration: SimDuration::from_secs(2400.0),
            warmup: SimDuration::from_secs(600.0),
            seed: 0x9055,
            sample_interval: None,
            lanes: 1,
        }
    }
}

/// Error validating a [`Config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipConfigError {
    /// Fewer than two peers: no one to gossip with.
    NetworkTooSmall,
    /// `fanout` was zero.
    ZeroFanout,
    /// `fanout` reached the network size (a spreader excludes itself).
    FanoutTooLarge,
    /// `round_ttl` was zero: rumors could never spread.
    ZeroRoundTtl,
    /// `pull_probability` outside `[0, 1]`.
    BadPullProbability,
    /// `num_desired_results` was zero.
    ZeroDesiredResults,
    /// `query_rate` not finite/positive.
    BadQueryRate,
    /// `lifespan_multiplier` not finite/positive.
    BadLifespanMultiplier,
    /// `round_interval` not finite/positive.
    BadRoundInterval,
    /// Warm-up not shorter than duration.
    WarmupTooLong,
    /// Catalog parameters rejected by the shared content model.
    BadCatalog,
    /// `lanes` was zero, or left some lane with too few peers to host
    /// the configured fanout.
    BadLanes,
}

impl std::fmt::Display for GossipConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GossipConfigError::NetworkTooSmall => "gossip needs at least two peers",
            GossipConfigError::ZeroFanout => "fanout must be positive",
            GossipConfigError::FanoutTooLarge => "fanout must be below the network size",
            GossipConfigError::ZeroRoundTtl => "round TTL must be positive",
            GossipConfigError::BadPullProbability => "pull probability must be within [0, 1]",
            GossipConfigError::ZeroDesiredResults => "desired results must be positive",
            GossipConfigError::BadQueryRate => "query rate must be finite and positive",
            GossipConfigError::BadLifespanMultiplier => {
                "lifespan multiplier must be finite and positive"
            }
            GossipConfigError::BadRoundInterval => "round interval must be finite and positive",
            GossipConfigError::WarmupTooLong => "warm-up must be shorter than the run duration",
            GossipConfigError::BadCatalog => "catalog parameters are invalid",
            GossipConfigError::BadLanes => {
                "lanes must be positive and leave each lane more peers than the fanout"
            }
        };
        f.write_str(s)
    }
}

impl std::error::Error for GossipConfigError {}

impl Config {
    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns the first [`GossipConfigError`] found.
    pub fn validate(&self) -> Result<(), GossipConfigError> {
        if self.network_size < 2 {
            return Err(GossipConfigError::NetworkTooSmall);
        }
        if self.fanout == 0 {
            return Err(GossipConfigError::ZeroFanout);
        }
        if self.fanout >= self.network_size {
            return Err(GossipConfigError::FanoutTooLarge);
        }
        if self.round_ttl == 0 {
            return Err(GossipConfigError::ZeroRoundTtl);
        }
        if !(0.0..=1.0).contains(&self.pull_probability) {
            return Err(GossipConfigError::BadPullProbability);
        }
        if self.num_desired_results == 0 {
            return Err(GossipConfigError::ZeroDesiredResults);
        }
        if !self.query_rate.is_finite() || self.query_rate <= 0.0 {
            return Err(GossipConfigError::BadQueryRate);
        }
        if !self.lifespan_multiplier.is_finite() || self.lifespan_multiplier <= 0.0 {
            return Err(GossipConfigError::BadLifespanMultiplier);
        }
        if !self.round_interval.as_secs().is_finite() || self.round_interval.as_secs() <= 0.0 {
            return Err(GossipConfigError::BadRoundInterval);
        }
        if self.warmup >= self.duration {
            return Err(GossipConfigError::WarmupTooLong);
        }
        if self.lanes == 0 || (self.lanes > 1 && self.network_size / self.lanes <= self.fanout) {
            return Err(GossipConfigError::BadLanes);
        }
        Ok(())
    }

    // ---- builder-style setters (mirroring `guess::Config`) ---------

    /// Sets the master RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets `NetworkSize`.
    #[must_use]
    pub fn with_network_size(mut self, n: usize) -> Self {
        self.network_size = n;
        self
    }

    /// Sets the per-round fanout.
    #[must_use]
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.fanout = fanout;
        self
    }

    /// Sets the round TTL (rounds a rumor may spread).
    #[must_use]
    pub fn with_round_ttl(mut self, ttl: u32) -> Self {
        self.round_ttl = ttl;
        self
    }

    /// Sets the pull (duplicate re-activation) probability.
    #[must_use]
    pub fn with_pull_probability(mut self, p: f64) -> Self {
        self.pull_probability = p;
        self
    }

    /// Sets `NumDesiredResults`.
    #[must_use]
    pub fn with_num_desired_results(mut self, n: u32) -> Self {
        self.num_desired_results = n;
        self
    }

    /// Sets the per-user query rate.
    #[must_use]
    pub fn with_query_rate(mut self, rate: f64) -> Self {
        self.query_rate = rate;
        self
    }

    /// Sets `LifespanMultiplier`.
    #[must_use]
    pub fn with_lifespan_multiplier(mut self, m: f64) -> Self {
        self.lifespan_multiplier = m;
        self
    }

    /// Sets the gap between successive gossip rounds.
    #[must_use]
    pub fn with_round_interval(mut self, interval: SimDuration) -> Self {
        self.round_interval = interval;
        self
    }

    /// Sets the simulated duration.
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the warm-up span excluded from query metrics.
    #[must_use]
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets (or disables) the kernel sample tick.
    #[must_use]
    pub fn with_sample_interval(mut self, interval: Option<SimDuration>) -> Self {
        self.sample_interval = interval;
        self
    }

    /// Sets the lane count for the parallel kernel.
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes;
        self
    }

    /// Validates the configuration and builds the simulator — the same
    /// construction surface the guess and gnutella configs expose.
    ///
    /// # Errors
    ///
    /// Returns [`GossipConfigError`] for inconsistent parameters.
    pub fn build(self) -> Result<crate::engine::GossipSim, GossipConfigError> {
        crate::engine::GossipSim::new(self)
    }

    /// A config scaled down for fast tests: a small network, short run,
    /// and a proportionally smaller catalog.
    #[must_use]
    pub fn small_test(seed: u64) -> Config {
        Config {
            network_size: 150,
            duration: SimDuration::from_secs(400.0),
            warmup: SimDuration::from_secs(100.0),
            catalog: CatalogParams {
                items: 4000,
                ..CatalogParams::default()
            },
            seed,
            ..Config::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(Config::default().validate().is_ok());
        assert!(Config::small_test(1).validate().is_ok());
    }

    #[test]
    fn validation_catches_each_field() {
        let bad = Config::default().with_network_size(1);
        assert_eq!(bad.validate(), Err(GossipConfigError::NetworkTooSmall));

        let bad = Config::default().with_fanout(0);
        assert_eq!(bad.validate(), Err(GossipConfigError::ZeroFanout));

        let bad = Config::default().with_network_size(4).with_fanout(4);
        assert_eq!(bad.validate(), Err(GossipConfigError::FanoutTooLarge));

        let bad = Config::default().with_round_ttl(0);
        assert_eq!(bad.validate(), Err(GossipConfigError::ZeroRoundTtl));

        let bad = Config::default().with_pull_probability(1.5);
        assert_eq!(bad.validate(), Err(GossipConfigError::BadPullProbability));

        let bad = Config::default().with_num_desired_results(0);
        assert_eq!(bad.validate(), Err(GossipConfigError::ZeroDesiredResults));

        let bad = Config::default().with_query_rate(0.0);
        assert_eq!(bad.validate(), Err(GossipConfigError::BadQueryRate));

        let bad = Config::default().with_lifespan_multiplier(-1.0);
        assert_eq!(
            bad.validate(),
            Err(GossipConfigError::BadLifespanMultiplier)
        );

        let bad = Config::default().with_round_interval(SimDuration::from_secs(0.0));
        assert_eq!(bad.validate(), Err(GossipConfigError::BadRoundInterval));

        let bad = Config::default().with_warmup(Config::default().duration);
        assert_eq!(bad.validate(), Err(GossipConfigError::WarmupTooLong));

        let bad = Config::default().with_lanes(0);
        assert_eq!(bad.validate(), Err(GossipConfigError::BadLanes));

        // 10 peers over 4 lanes leaves 2-peer lanes — too few for
        // fanout 3.
        let bad = Config::default().with_network_size(10).with_lanes(4);
        assert_eq!(bad.validate(), Err(GossipConfigError::BadLanes));
    }

    #[test]
    fn builders_set_the_named_fields() {
        let c = Config::default()
            .with_seed(0xbeef)
            .with_network_size(500)
            .with_fanout(4)
            .with_round_ttl(6)
            .with_pull_probability(0.7)
            .with_num_desired_results(3)
            .with_query_rate(0.02)
            .with_lifespan_multiplier(0.2)
            .with_round_interval(SimDuration::from_secs(1.0))
            .with_sample_interval(Some(SimDuration::from_secs(30.0)));
        assert_eq!(c.seed, 0xbeef);
        assert_eq!(c.network_size, 500);
        assert_eq!(c.fanout, 4);
        assert_eq!(c.round_ttl, 6);
        assert!((c.pull_probability - 0.7).abs() < 1e-12);
        assert_eq!(c.num_desired_results, 3);
        assert!((c.query_rate - 0.02).abs() < 1e-12);
        assert!((c.lifespan_multiplier - 0.2).abs() < 1e-12);
        assert_eq!(c.round_interval, SimDuration::from_secs(1.0));
        assert_eq!(c.sample_interval, Some(SimDuration::from_secs(30.0)));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn errors_display_distinctly() {
        let msgs: Vec<String> = [
            GossipConfigError::NetworkTooSmall,
            GossipConfigError::ZeroFanout,
            GossipConfigError::FanoutTooLarge,
            GossipConfigError::ZeroRoundTtl,
            GossipConfigError::BadPullProbability,
            GossipConfigError::ZeroDesiredResults,
            GossipConfigError::BadQueryRate,
            GossipConfigError::BadLifespanMultiplier,
            GossipConfigError::BadRoundInterval,
            GossipConfigError::WarmupTooLong,
            GossipConfigError::BadCatalog,
            GossipConfigError::BadLanes,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let mut unique = msgs.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), msgs.len());
    }
}
