//! Scenario interventions: the [`Intervenable`] side of `GossipSim`.
//!
//! Split out like the guess and gnutella counterparts; this is still
//! the same `GossipSim`. Every intervention routes through the engine's
//! existing machinery — joins through the populate/spawn path, leaves
//! through `on_death`, flash crowds through `start_query`, parameter
//! flips through [`Config::validate`] — and mutates only the
//! [`super::Runtime`] side of the config/state split. `self.cfg` is
//! never written after `GossipSim::new`.

use simkit::scenario::{Intervenable, Intervention, Param, ScenarioError};

use super::*;

impl GossipSim {
    /// Grows the population by `count` newborn slots: fresh library,
    /// fresh incarnation, scheduled death and burst — the same path the
    /// initial population takes. In-flight rumors learn about the
    /// newcomers lazily (their infected vectors grow at the next
    /// round), so newcomers are immediately gossipable targets.
    fn mass_join<T: TraceSink>(
        &mut self,
        count: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        for _ in 0..count {
            let slot = self.nodes.len();
            let library = self.fresh_library();
            let incarnation = self.next_incarnation;
            self.next_incarnation += 1;
            self.nodes.push(Node {
                incarnation,
                library,
            });
            self.active_stamp.push(0);
            self.counters.incr("births");
            self.churn.spawn(
                ctx,
                &mut self.rng,
                now,
                incarnation,
                Event::Death {
                    slot: slot as u32,
                    incarnation,
                },
            );
            let gap = self.workload.sample_burst_gap(&mut self.rng);
            ctx.schedule(
                now + gap,
                Event::Burst {
                    slot: slot as u32,
                    incarnation,
                },
            );
        }
    }

    /// Kills `count` uniformly chosen peers through the normal death
    /// path (in-place rebirth included: the population stays constant
    /// and the wave's damage is the mass loss of rumor knowledge).
    fn mass_leave<T: TraceSink>(
        &mut self,
        count: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        for _ in 0..count {
            let slot = self.rng.below(self.nodes.len());
            let incarnation = self.nodes[slot].incarnation;
            // The victim's originally scheduled death event becomes
            // stale and is ignored by the incarnation guard.
            self.on_death(slot, incarnation, now, ctx);
        }
    }

    /// Starts `queries` extra rumors immediately, from uniformly chosen
    /// sources, through the normal query path.
    fn flash_crowd<T: TraceSink>(
        &mut self,
        queries: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        for _ in 0..queries {
            let src = self.rng.below(self.nodes.len());
            self.start_query(src, now, ctx);
        }
    }

    /// Applies a parameter flip: overlays the current runtime values
    /// plus the flip onto a copy of the immutable config, re-validates
    /// through [`Config::validate`], and only then installs the new
    /// value into the runtime state.
    fn param_flip(&mut self, param: &Param) -> Result<(), ScenarioError> {
        let mut probe = self.cfg.clone();
        probe.query_rate = self.rt.query_rate;
        probe.fanout = self.rt.fanout;
        probe.round_ttl = self.rt.round_ttl;
        probe.pull_probability = self.rt.pull_probability;
        match *param {
            Param::QueryRate(r) => probe.query_rate = r,
            Param::Fanout(f) => probe.fanout = f,
            Param::RoundTtl(t) => probe.round_ttl = t,
            Param::PullProbability(p) => probe.pull_probability = p,
            _ => {
                return Err(ScenarioError::Unsupported {
                    engine: "gossip",
                    action: param.name(),
                })
            }
        }
        probe
            .validate()
            .map_err(|e| ScenarioError::InvalidParam(e.to_string()))?;
        if probe.query_rate != self.rt.query_rate {
            self.workload = QueryWorkload::with_rate(probe.query_rate)
                .map_err(|_| ScenarioError::InvalidParam("bad query rate".into()))?;
        }
        self.rt.query_rate = probe.query_rate;
        self.rt.fanout = probe.fanout;
        self.rt.round_ttl = probe.round_ttl;
        self.rt.pull_probability = probe.pull_probability;
        Ok(())
    }
}

impl<T: TraceSink> Intervenable<T> for GossipSim {
    fn intervene(
        &mut self,
        now: SimTime,
        action: &Intervention,
        ctx: &mut SimCtx<'_, Event, T>,
    ) -> Result<(), ScenarioError> {
        self.counters.incr("interventions");
        match *action {
            Intervention::MassJoin { count } => self.mass_join(count, now, ctx),
            Intervention::MassLeave { count } => self.mass_leave(count, now, ctx),
            Intervention::FlashCrowd { queries } => self.flash_crowd(queries, now, ctx),
            Intervention::ParamFlip(ref param) => self.param_flip(param)?,
            Intervention::Partition { groups } => {
                if groups < 2 {
                    return Err(ScenarioError::BadPartition { groups });
                }
                self.rt.partition = Some(groups);
            }
            Intervention::Heal => self.rt.partition = None,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::scenario::Scenario;

    fn small() -> Config {
        Config::small_test(0x906)
    }

    /// Churnless variant: every death in the run is the scenario's.
    fn churnless() -> Config {
        small().with_lifespan_multiplier(1000.0)
    }

    #[test]
    fn empty_scenario_equals_plain_run() {
        let plain = small().build().unwrap().run();
        let scen = small()
            .build()
            .unwrap()
            .run_scenario(&Scenario::new())
            .unwrap();
        assert_eq!(plain, scen);
    }

    #[test]
    fn mass_join_grows_the_population() {
        let n = churnless().network_size as u64;
        let scenario = Scenario::new().at(150.0).mass_join(75);
        let report = churnless()
            .build()
            .unwrap()
            .run_scenario(&scenario)
            .unwrap();
        assert_eq!(report.counters.get("interventions"), 1);
        assert_eq!(report.counters.get("deaths"), 0, "run is churnless");
        assert_eq!(
            report.counters.get("births"),
            n + 75,
            "exactly the join wave on top of the seed population"
        );
    }

    #[test]
    fn mass_leave_erases_rumor_knowledge() {
        let n = churnless().network_size as u64;
        let scenario = Scenario::new().at(150.0).mass_leave(30);
        let report = churnless()
            .build()
            .unwrap()
            .run_scenario(&scenario)
            .unwrap();
        assert_eq!(report.counters.get("deaths"), 30, "exactly the wave");
        assert_eq!(
            report.counters.get("births"),
            n + 30,
            "every victim is replaced in place"
        );
    }

    #[test]
    fn flash_crowd_starts_extra_rumors() {
        let scenario = Scenario::new().at(150.0).flash_crowd(200);
        let report = small().build().unwrap().run_scenario(&scenario).unwrap();
        assert!(
            report.queries >= 200,
            "flash rumors land after warm-up: {}",
            report.queries
        );
        assert_eq!(report.counters.get("interventions"), 1);
    }

    #[test]
    fn fanout_flip_starves_the_epidemic() {
        // Cut the fanout to 1 halfway through: infect-and-die epidemics
        // with a single contact per spreader die out almost at once, so
        // the message mean must fall well below the fanout-3 baseline.
        let baseline = small().build().unwrap().run();
        let scenario = Scenario::new().at(200.0).param_flip(Param::Fanout(1));
        let flipped = small().build().unwrap().run_scenario(&scenario).unwrap();
        assert!(
            flipped.messages_per_query() < baseline.messages_per_query(),
            "fanout-1 tail must cut the message mean: {:.0} vs {:.0}",
            flipped.messages_per_query(),
            baseline.messages_per_query()
        );
    }

    #[test]
    fn param_flip_revalidates_and_rejects_unsupported() {
        let bad = Scenario::new().at(100.0).param_flip(Param::Fanout(0));
        let err = small().build().unwrap().run_scenario(&bad).unwrap_err();
        assert!(matches!(err, ScenarioError::InvalidParam(_)));

        let unsupported = Scenario::new()
            .at(100.0)
            .param_flip(Param::ParallelProbes(4));
        let err = small()
            .build()
            .unwrap()
            .run_scenario(&unsupported)
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Unsupported {
                engine: "gossip",
                action: "parallel_probes",
            }
        );
    }

    #[test]
    fn partition_drops_cross_group_pushes_until_heal() {
        let part_only = Scenario::new().at(120.0).partition(2);
        let p = small().build().unwrap().run_scenario(&part_only).unwrap();
        let baseline = small().build().unwrap().run();
        assert!(
            p.counters.get("partition_drops") > 0,
            "uniform contacts must cross the partition"
        );
        assert!(
            p.peers_reached.mean() < baseline.peers_reached.mean(),
            "dropped pushes must shrink mean reach: {:.0} vs {:.0}",
            p.peers_reached.mean(),
            baseline.peers_reached.mean()
        );
        let healed = Scenario::new().at(120.0).partition(2).at(260.0).heal();
        let h = small().build().unwrap().run_scenario(&healed).unwrap();
        assert!(
            h.peers_reached.mean() > p.peers_reached.mean(),
            "healing must restore some reach: {:.0} vs {:.0}",
            h.peers_reached.mean(),
            p.peers_reached.mean()
        );
    }

    #[test]
    fn bad_partition_spec_is_rejected() {
        let scenario = Scenario::new().at(100.0).partition(1);
        let err = small()
            .build()
            .unwrap()
            .run_scenario(&scenario)
            .unwrap_err();
        assert_eq!(err, ScenarioError::BadPartition { groups: 1 });
    }
}
