//! Lane-partitioned parallel runner: the gossip engine on
//! [`simkit::lanes::LaneKernel`].
//!
//! The population is split into `cfg.lanes` seed-addressed lanes, each
//! a full [`GossipSim`] over a contiguous global slot range. Fanout
//! targets are drawn over the *global* population; a push that lands
//! outside the spreader's lane becomes a counted cross-lane push,
//! delivered one `round_interval` later. The remote peer answers (a
//! hit is routed back and credited to the rumor) but is not infected —
//! rumor state lives in the origin lane, so the epidemic itself stays
//! lane-local. That `round_interval` latency is the kernel's lookahead.
//!
//! Determinism: lane seeds derive from `(master seed, lane index)`,
//! boundary batches merge in fixed order, and per-lane reports merge in
//! lane order — the result is a pure function of `(seed, lanes)`,
//! byte-identical for any worker-thread count. `lanes = 1` routes to
//! the ordinary serial [`Runnable::run`], untouched.

use simkit::lanes::{LaneCtx, LaneKernel, LaneSimulation};
use simkit::rng::derive_seed;
use simkit::trace::NullSink;

use super::*;

/// One lane: a self-contained [`GossipSim`] whose staged cross-lane
/// pushes are drained into the kernel's boundary batches.
struct GossipLane {
    sim: GossipSim,
}

impl GossipLane {
    /// Moves pushes staged by `on_round` into the lane kernel's
    /// outbox, one `round_interval` ahead (the lookahead window).
    fn drain_cross<T: TraceSink>(&mut self, now: SimTime, lctx: &mut LaneCtx<'_, Event, T>) {
        let interval = self.sim.cfg.round_interval;
        for (dst, event) in self.sim.lane_out.drain(..) {
            lctx.send(dst, now + interval, event);
        }
    }

    /// A sibling lane's push lands on `slot`: the peer answers the
    /// library check and reports a hit back, but is not infected.
    fn on_remote_push<T: TraceSink>(
        &mut self,
        query: u64,
        src_lane: u32,
        slot: u32,
        target: QueryTarget,
        now: SimTime,
        lctx: &mut LaneCtx<'_, Event, T>,
    ) {
        let sim = &mut self.sim;
        sim.counters.incr("remote_pushes_received");
        let library = sim.nodes[slot as usize].library;
        if sim.qmodel.answers_in(&sim.libs, library, target) {
            lctx.send(
                src_lane,
                now + sim.cfg.round_interval,
                Event::RemoteHit { query },
            );
        }
    }
}

impl<T: TraceSink> LaneSimulation<T> for GossipLane {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, lctx: &mut LaneCtx<'_, Event, T>) {
        match event {
            Event::RemotePush {
                query,
                src_lane,
                slot,
                target,
            } => self.on_remote_push(query, src_lane, slot, target, now, lctx),
            Event::RemoteHit { query } => self.sim.on_remote_hit(query),
            // Bursts, deaths, and rounds are the serial handlers over
            // this lane's state; rounds may stage cross-lane pushes.
            other => {
                Simulation::handle(&mut self.sim, now, other, lctx.inner());
                self.drain_cross(now, lctx);
            }
        }
    }

    fn live_peers(&self) -> u64 {
        Simulation::<T>::live_peers(&self.sim)
    }
}

/// Runs `cfg` on the lane-partitioned parallel kernel with up to
/// `threads` worker threads.
///
/// With `cfg.lanes <= 1` this is exactly [`Runnable::run`] on a serial
/// [`GossipSim`] — byte-identical to every golden. Otherwise the
/// report is a pure function of `(seed, lanes)`: any `threads` value
/// produces the same bytes.
///
/// # Errors
///
/// Returns the validation error if `cfg` is inconsistent.
pub fn run_lanes(cfg: Config, threads: usize) -> Result<GossipReport, GossipConfigError> {
    cfg.validate()?;
    let l = cfg.lanes;
    if l <= 1 {
        return Ok(GossipSim::new(cfg)?.run());
    }

    let n = cfg.network_size;
    let base = n / l;
    let rem = n % l;
    // Lookahead: nothing crosses a lane boundary in under one round.
    let window = cfg.round_interval;
    let mut params = KernelParams::new(cfg.duration).with_warmup(cfg.warmup);
    if let Some(interval) = cfg.sample_interval {
        params = params.with_sampling(interval);
    }

    let mut lanes: Vec<GossipLane> = Vec::with_capacity(l);
    for i in 0..l {
        let lane_n = base + usize::from(i < rem);
        let mut lane_cfg = cfg.clone();
        lane_cfg.network_size = lane_n;
        lane_cfg.seed = derive_seed(cfg.seed, "gossip-lane", i as u64);
        lane_cfg.lanes = 1;
        let mut sim = GossipSim::new(lane_cfg)?;
        sim.lane_env = Some(LaneEnv {
            lane: i as u32,
            offset: LaneEnv::offset_of(base, rem, i),
            total: n,
            base,
            rem,
        });
        lanes.push(GossipLane { sim });
    }

    let sinks = (0..l).map(|_| NullSink).collect();
    let mut kernel: LaneKernel<Event, NullSink> = LaneKernel::new(params, window, sinks);
    for (i, lane) in lanes.iter_mut().enumerate() {
        lane.sim.schedule_initial(&mut kernel.ctx(i));
    }
    kernel.run(&mut lanes, threads.max(1));

    // Wrap-up, strictly in lane order so the merged report is
    // independent of which thread ran which lane.
    let end = SimTime::ZERO + cfg.duration;
    let mut report = GossipReport {
        queries: 0,
        unsatisfied: 0,
        messages: Summary::new(),
        peers_reached: Summary::new(),
        response_time: Summary::new(),
        counters: CounterSet::new(),
        events_processed: kernel.events_processed(),
    };
    for lane in lanes {
        let mut sim = lane.sim;
        // Flush in-flight rumors at the horizon, in query order — the
        // same discipline as the serial run.
        let mut pending: Vec<u64> = sim.rumors.keys().copied().collect();
        pending.sort_unstable();
        for qid in pending {
            let rumor = sim.rumors.remove(&qid).expect("pending rumor exists");
            sim.counters.incr("horizon_flushed");
            sim.settle(&rumor, end);
        }
        report.queries += sim.queries;
        report.unsatisfied += sim.unsatisfied;
        report.messages.merge(&sim.messages);
        report.peers_reached.merge(&sim.peers_reached);
        report.response_time.merge(&sim.response_time);
        report.counters.merge(&sim.counters);
    }
    report.counters.add("lanes", l as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64, lanes: usize) -> Config {
        Config::small_test(seed).with_lanes(lanes)
    }

    #[test]
    fn one_lane_is_exactly_the_serial_run() {
        for seed in [1u64, 7, 42] {
            let serial = GossipSim::new(tiny(seed, 1)).unwrap().run();
            let laned = run_lanes(tiny(seed, 1), 4).unwrap();
            assert_eq!(serial, laned, "seed {seed}");
        }
    }

    #[test]
    fn lane_runs_are_identical_across_thread_counts() {
        let baseline = run_lanes(tiny(3, 4), 1).unwrap();
        for threads in 2..=6 {
            let run = run_lanes(tiny(3, 4), threads).unwrap();
            assert_eq!(baseline, run, "threads={threads}");
        }
    }

    #[test]
    fn lane_count_is_part_of_the_trajectory() {
        let two = run_lanes(tiny(5, 2), 2).unwrap();
        let four = run_lanes(tiny(5, 4), 2).unwrap();
        assert_ne!(two, four, "lane count must address the run");
    }

    #[test]
    fn lane_mode_pushes_cross_lanes() {
        let report = run_lanes(tiny(9, 4), 4).unwrap();
        assert!(report.queries > 0, "queries must execute");
        // With 4 lanes, ~3/4 of all fanout targets land remote.
        assert!(
            report.counters.get("cross_lane_pushes") > 0,
            "global fanout must cross lanes"
        );
        // Every delivered push was sent; the last round's pushes are
        // still in flight at the horizon and never arrive.
        let sent = report.counters.get("cross_lane_pushes");
        let received = report.counters.get("remote_pushes_received");
        assert!(received > 0, "some cross-lane pushes must arrive");
        assert!(received <= sent, "deliveries cannot exceed sends");
        assert_eq!(report.counters.get("lanes"), 4);
        assert!(report.events_processed > 0);
    }

    #[test]
    fn lane_geometry_maps_slots_both_ways() {
        // 10 slots over 3 lanes: sizes 4, 3, 3.
        let env = |i: usize| LaneEnv {
            lane: i as u32,
            offset: LaneEnv::offset_of(3, 1, i),
            total: 10,
            base: 3,
            rem: 1,
        };
        let e0 = env(0);
        assert_eq!(e0.offset, 0);
        assert_eq!(env(1).offset, 4);
        assert_eq!(env(2).offset, 7);
        for g in 0..10 {
            let (lane, slot) = e0.locate(g);
            assert_eq!(env(lane as usize).offset + slot as usize, g);
        }
    }

    #[test]
    fn zero_lanes_is_rejected() {
        let cfg = tiny(1, 0);
        assert!(run_lanes(cfg, 1).is_err());
    }
}
