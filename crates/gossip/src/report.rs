//! Aggregated results of a gossip run.

use simkit::stats::{CounterSet, Summary};

/// Aggregated results of one gossip simulation run.
///
/// Mirrors the GUESS and Gnutella reports so the three engines can sit
/// side by side in a cost/quality table: the same success-rate,
/// messages-per-query, and coverage metrics, plus the response-time
/// distribution that gossip's round structure makes meaningful (a
/// satisfied query's latency is the number of rounds it took times the
/// round interval).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GossipReport {
    /// Queries started after warm-up (each settles exactly once).
    pub queries: u64,
    /// Queries that found fewer than the desired results.
    pub unsatisfied: u64,
    /// Per-query messages transmitted (pushes plus pull re-activations).
    pub messages: Summary,
    /// Per-query count of distinct peers the rumor reached (excluding
    /// the originator).
    pub peers_reached: Summary,
    /// Seconds from query start to satisfaction, over satisfied queries
    /// only.
    pub response_time: Summary,
    /// Event counters (pushes, pulls, dedup drops, rounds, deaths, …).
    pub counters: CounterSet,
    /// Kernel events processed over the whole run (including warm-up).
    /// Wall-clock throughput denominator for `repro bench`; not part of
    /// any rendered report.
    pub events_processed: u64,
}

impl GossipReport {
    /// Fraction of queries that went unsatisfied.
    #[must_use]
    pub fn unsatisfaction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.unsatisfied as f64 / self.queries as f64
        }
    }

    /// Mean messages per query — the gossip cost that corresponds to
    /// GUESS's probes/query and flooding's messages/query.
    #[must_use]
    pub fn messages_per_query(&self) -> f64 {
        self.messages.mean()
    }

    /// Mean seconds to satisfaction, over satisfied queries.
    #[must_use]
    pub fn mean_response_secs(&self) -> f64 {
        self.response_time.mean()
    }

    /// Fraction of pushes that landed on an already-informed peer — the
    /// epidemic's redundancy, which grows as the rumor saturates.
    #[must_use]
    pub fn dedup_fraction(&self) -> f64 {
        let pushes = self.counters.get("pushes");
        if pushes == 0 {
            0.0
        } else {
            self.counters.get("dedup_drops") as f64 / pushes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_reports() {
        let r = GossipReport::default();
        assert_eq!(r.unsatisfaction(), 0.0);
        assert_eq!(r.dedup_fraction(), 0.0);
    }

    #[test]
    fn ratios_divide_as_documented() {
        let mut r = GossipReport {
            queries: 4,
            unsatisfied: 1,
            ..GossipReport::default()
        };
        r.messages.record(10.0);
        r.messages.record(30.0);
        r.counters.add("pushes", 8);
        r.counters.add("dedup_drops", 2);
        assert!((r.unsatisfaction() - 0.25).abs() < 1e-12);
        assert!((r.messages_per_query() - 20.0).abs() < 1e-12);
        assert!((r.dedup_fraction() - 0.25).abs() < 1e-12);
    }
}
