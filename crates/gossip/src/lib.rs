//! `gossip` — a push/pull epidemic (rumor-spreading) search engine.
//!
//! The paper compares GUESS against *forwarding* baselines (flooding,
//! iterative deepening). Gossip-based rumor spreading is the canonical
//! third point in that design space (Jaho et al., *Gossip-based Search
//! in Multipeer Communication Networks*): a query is treated as a rumor
//! that informed peers push to a few uniformly random peers each round,
//! with duplicate receivers probabilistically pulled back into
//! dissemination. No overlay links are maintained and no message is
//! forwarded along a path — every hop is an independent point-to-point
//! contact, so cost and coverage are governed by three knobs:
//!
//! * **fanout** — contacts each active spreader makes per round;
//! * **round TTL** — rounds a rumor may spread before it is retired;
//! * **pull probability** — chance that a peer receiving a duplicate
//!   push re-enters dissemination for one more round (the push/pull
//!   hybrid; `0` is the pure infect-and-die push epidemic).
//!
//! The engine runs on the shared simulation kernel
//! ([`simkit::sim::Simulation`]) and faces exactly the workloads of the
//! GUESS and Gnutella simulators: the same content catalog and peer
//! libraries, the same bursty query process, and the same Saroiu-like
//! lifetime model driven through [`simkit::sim::ChurnDriver`] — so
//! three-way cost/quality comparisons are apples-to-apples.
//!
//! # Quick start
//!
//! ```no_run
//! use gossip::{Config, GossipSim, Runnable};
//!
//! let report = GossipSim::new(Config::default())?.run();
//! println!("messages/query = {:.1}", report.messages_per_query());
//! # Ok::<(), gossip::GossipConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod engine;
pub mod report;

pub use config::{Config, GossipConfigError};
pub use engine::{run_lanes, Event, GossipSim};
pub use report::GossipReport;
pub use simkit::sim::{Runnable, SimReport};
