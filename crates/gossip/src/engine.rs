//! The push/pull epidemic search engine.
//!
//! A query is a *rumor*. The originator starts infected; every
//! `round_interval`, each active spreader pushes the rumor to `fanout`
//! uniformly random peers. A peer hearing the rumor for the first time
//! is infected, checks its library, and spreads for the next round
//! (infect-and-die: spreaders retire after one round). A peer hearing a
//! duplicate suppresses it, but with `pull_probability` re-enters
//! dissemination for one round — the push/pull hybrid that keeps late
//! epidemics alive. A rumor settles when it has enough results, its
//! round TTL expires, or no spreaders remain.
//!
//! Churn interacts with rumors through incarnations: the infected set
//! remembers *which incarnation* of a slot heard the rumor, so a reborn
//! peer is a fresh target (it never heard the rumor) and a dead
//! spreader's knowledge dies with it.

use simkit::hash::{self, FxHashMap};
use simkit::rng::RngStream;
use simkit::sim::{ChurnDriver, Kernel, KernelParams, Runnable, SimCtx, SimReport, Simulation};
use simkit::stats::{CounterSet, Summary};
use simkit::time::SimTime;
use simkit::trace::{ProbeKind, ProbeOutcome, TraceRecord, TraceSink};
use workload::content::{Catalog, LibraryArena, LibraryHandle};
use workload::files::FileCountModel;
use workload::lifetime::LifetimeModel;
use workload::query::{QueryModel, QueryTarget, QueryWorkload};

use crate::config::{Config, GossipConfigError};
use crate::report::GossipReport;

mod lanes;
mod scenario_ops;

pub use lanes::run_lanes;

/// The engine's event alphabet (public because it is the
/// [`Simulation::Event`] associated type).
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub enum Event {
    /// A peer's bursty query-generation clock fires.
    Burst { slot: u32, incarnation: u64 },
    /// A peer's sampled lifetime expires.
    Death { slot: u32, incarnation: u64 },
    /// One gossip round of a live rumor.
    Round { query: u64 },
    /// Lane mode only: a push from lane `src_lane`'s rumor `query`
    /// lands on local `slot`, looking for `target`. Never scheduled on
    /// the serial path, so serial runs are byte-identical.
    RemotePush {
        query: u64,
        src_lane: u32,
        slot: u32,
        target: QueryTarget,
    },
    /// Lane mode only: a [`Event::RemotePush`] found a result; credit
    /// rumor `query` in its origin lane.
    RemoteHit { query: u64 },
}

struct Node {
    incarnation: u64,
    /// Handle into the engine's [`LibraryArena`]; freed and rebuilt at
    /// every in-place rebirth, so churn recycles blocks instead of
    /// leaking dead `Vec`s.
    library: LibraryHandle,
}

/// "This slot never heard the rumor" sentinel in [`Rumor::infected`].
/// Real incarnations are allocated from 0 and can never reach it.
const NEVER_HEARD: u64 = u64::MAX;

/// Per-query rumor state, kept until the query settles.
struct Rumor {
    target: QueryTarget,
    started: SimTime,
    round: u32,
    /// Per-slot incarnation that heard the rumor ([`NEVER_HEARD`] if
    /// none), indexed by slot. Rebirth bumps the slot's incarnation past
    /// the stored one, so churn erases rumor knowledge.
    infected: Vec<u64>,
    /// Distinct slots ever infected (the dense counterpart of the old
    /// map's `len()`), including the originator.
    heard: usize,
    /// Slots spreading in the upcoming round (u32: half the bytes of a
    /// `usize` vector, which matters when thousands of rumors are in
    /// flight over a million-slot population).
    active: Vec<u32>,
    messages: u64,
    results: u32,
    /// Whether this query counts toward metrics (started after warm-up).
    measured: bool,
}

/// Runtime-mutable knobs, split from the immutable [`Config`] so
/// scenario interventions have a legal mutation surface. Initialised
/// from the config and rewritten only by validated parameter flips
/// (or partition/heal); `cfg` itself is never written after
/// [`GossipSim::new`].
struct Runtime {
    query_rate: f64,
    fanout: usize,
    round_ttl: u32,
    pull_probability: f64,
    /// Active partition: slots in different `slot % groups` classes
    /// cannot exchange pushes. `None` means fully connected.
    partition: Option<u32>,
}

impl Runtime {
    fn from_config(cfg: &Config) -> Self {
        Runtime {
            query_rate: cfg.query_rate,
            fanout: cfg.fanout,
            round_ttl: cfg.round_ttl,
            pull_probability: cfg.pull_probability,
            partition: None,
        }
    }
}

/// Where a lane sits in the global population (lane mode only).
///
/// Slots are numbered globally: lane `i` owns a contiguous range of
/// `base` (+1 for the first `rem` lanes) slots. Fanout targets are
/// drawn over the *global* range so a spreader is as likely to push
/// across a lane boundary as within it.
#[derive(Debug, Clone)]
struct LaneEnv {
    /// This lane's index.
    lane: u32,
    /// Global index of this lane's first slot.
    offset: usize,
    /// Total population across all lanes.
    total: usize,
    /// Floor of slots per lane (`total / lanes`).
    base: usize,
    /// Number of leading lanes holding one extra slot (`total % lanes`).
    rem: usize,
}

impl LaneEnv {
    /// Global slot index of lane `i`'s first slot.
    fn offset_of(base: usize, rem: usize, i: usize) -> usize {
        if i < rem {
            i * (base + 1)
        } else {
            rem * (base + 1) + (i - rem) * base
        }
    }

    /// Maps a global slot index to `(lane, local slot)`.
    fn locate(&self, g: usize) -> (u32, u32) {
        let big = self.rem * (self.base + 1);
        if g < big {
            ((g / (self.base + 1)) as u32, (g % (self.base + 1)) as u32)
        } else {
            let g2 = g - big;
            ((self.rem + g2 / self.base) as u32, (g2 % self.base) as u32)
        }
    }
}

/// The push/pull epidemic search simulator.
///
/// # Examples
///
/// ```no_run
/// use gossip::{Config, GossipSim, Runnable};
///
/// let report = GossipSim::new(Config::default())?.run();
/// println!("unsatisfaction: {:.3}", report.unsatisfaction());
/// # Ok::<(), gossip::GossipConfigError>(())
/// ```
pub struct GossipSim {
    cfg: Config,
    rt: Runtime,
    nodes: Vec<Node>,
    /// Every node's library items, shared contiguous storage.
    libs: LibraryArena,
    qmodel: QueryModel,
    files: FileCountModel,
    churn: ChurnDriver<LifetimeModel>,
    workload: QueryWorkload,
    rng: RngStream,
    rumors: FxHashMap<u64, Rumor>,
    queries: u64,
    unsatisfied: u64,
    messages: Summary,
    peers_reached: Summary,
    response_time: Summary,
    counters: CounterSet,
    next_incarnation: u64,
    next_query: u64,
    /// Round-scoped dedup stamps for `next_active` (one entry per slot),
    /// replacing a linear `Vec::contains` scan per push.
    active_stamp: Vec<u64>,
    active_token: u64,
    /// `Some` when this sim is one lane of a [`run_lanes`] run: fanout
    /// targets are then drawn over the global population. `None` — the
    /// serial path — is untouched by lane mode.
    lane_env: Option<LaneEnv>,
    /// Cross-lane pushes staged by `on_round`, drained into the lane
    /// kernel's boundary batches by the lane wrapper after each event.
    lane_out: Vec<(u32, Event)>,
}

impl GossipSim {
    /// Builds and seeds the simulator.
    ///
    /// # Errors
    ///
    /// Returns a [`GossipConfigError`] for inconsistent parameters.
    pub fn new(cfg: Config) -> Result<Self, GossipConfigError> {
        cfg.validate()?;
        let catalog = Catalog::new(cfg.catalog).map_err(|_| GossipConfigError::BadCatalog)?;
        let qmodel = QueryModel::new(catalog);
        let files = FileCountModel::gnutella_like();
        let lifetimes = LifetimeModel::saroiu_like(cfg.lifespan_multiplier);
        let workload = QueryWorkload::with_rate(cfg.query_rate)
            .map_err(|_| GossipConfigError::BadQueryRate)?;
        // Pre-size the rumor map for the expected number of in-flight
        // rumors: network-wide arrival rate times the longest a rumor
        // can live (its full round TTL).
        let max_rumor_secs = cfg.round_interval.as_secs() * f64::from(cfg.round_ttl);
        let inflight = (cfg.query_rate * cfg.network_size as f64 * max_rumor_secs).ceil() as usize;
        let network_size = cfg.network_size;
        let mut sim = GossipSim {
            rng: RngStream::from_seed(cfg.seed, "gossip"),
            rt: Runtime::from_config(&cfg),
            cfg,
            nodes: Vec::new(),
            libs: LibraryArena::new(),
            qmodel,
            files,
            churn: ChurnDriver::new(lifetimes),
            workload,
            rumors: hash::map_with_capacity(inflight.clamp(16, 4096)),
            queries: 0,
            unsatisfied: 0,
            messages: Summary::new(),
            peers_reached: Summary::new(),
            response_time: Summary::new(),
            counters: CounterSet::new(),
            next_incarnation: 0,
            next_query: 0,
            active_stamp: vec![0; network_size],
            active_token: 0,
            lane_env: None,
            lane_out: Vec::new(),
        };
        sim.populate();
        Ok(sim)
    }

    fn fresh_library(&mut self) -> LibraryHandle {
        let count = self.files.sample_file_count(&mut self.rng);
        self.qmodel
            .catalog()
            .build_library_in(count, &mut self.rng, &mut self.libs)
    }

    /// Creates the initial population. Event scheduling happens in
    /// [`GossipSim::schedule_initial`], once the kernel exists; the RNG
    /// draw order across both phases is fixed, so runs stay
    /// byte-identical.
    fn populate(&mut self) {
        for _ in 0..self.cfg.network_size {
            let library = self.fresh_library();
            let incarnation = self.next_incarnation;
            self.next_incarnation += 1;
            self.nodes.push(Node {
                incarnation,
                library,
            });
        }
    }

    /// Schedules every initial peer's death and burst into the kernel's
    /// queue.
    fn schedule_initial<T: TraceSink>(&mut self, ctx: &mut SimCtx<'_, Event, T>) {
        for slot in 0..self.nodes.len() {
            let incarnation = self.nodes[slot].incarnation;
            self.counters.incr("births");
            self.churn.spawn(
                ctx,
                &mut self.rng,
                SimTime::ZERO,
                incarnation,
                Event::Death {
                    slot: slot as u32,
                    incarnation,
                },
            );
            let gap = self.workload.sample_burst_gap(&mut self.rng);
            ctx.schedule(
                SimTime::ZERO + gap,
                Event::Burst {
                    slot: slot as u32,
                    incarnation,
                },
            );
        }
    }

    fn on_death<T: TraceSink>(
        &mut self,
        slot: usize,
        incarnation: u64,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if self.nodes[slot].incarnation != incarnation {
            return;
        }
        self.churn.died(ctx, now, incarnation);
        self.counters.incr("deaths");
        // Rebirth in place, as in the GUESS and Gnutella simulators:
        // constant population. Rumor knowledge is *not* carried over —
        // infected maps hold the old incarnation, which no longer
        // matches.
        self.nodes[slot].incarnation = self.next_incarnation;
        self.next_incarnation += 1;
        self.libs.free(self.nodes[slot].library);
        self.nodes[slot].library = self.fresh_library();
        let new_inc = self.nodes[slot].incarnation;
        self.counters.incr("births");
        self.churn.spawn(
            ctx,
            &mut self.rng,
            now,
            new_inc,
            Event::Death {
                slot: slot as u32,
                incarnation: new_inc,
            },
        );
        let gap = self.workload.sample_burst_gap(&mut self.rng);
        ctx.schedule(
            now + gap,
            Event::Burst {
                slot: slot as u32,
                incarnation: new_inc,
            },
        );
    }

    fn on_burst<T: TraceSink>(
        &mut self,
        slot: usize,
        incarnation: u64,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if self.nodes[slot].incarnation != incarnation {
            return;
        }
        let burst = self.workload.sample_burst_size(&mut self.rng);
        for _ in 0..burst {
            self.start_query(slot, now, ctx);
        }
        let gap = self.workload.sample_burst_gap(&mut self.rng);
        ctx.schedule(
            now + gap,
            Event::Burst {
                slot: slot as u32,
                incarnation,
            },
        );
    }

    /// Starts one rumor at `src` and schedules its first round. The
    /// originator's own library does not count toward results (as in
    /// flooding: you gossip for what you don't have).
    fn start_query<T: TraceSink>(
        &mut self,
        src: usize,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        let qid = self.next_query;
        self.next_query += 1;
        if ctx.tracing() {
            ctx.emit(
                now,
                TraceRecord::QueryStart {
                    query: qid,
                    origin: self.nodes[src].incarnation,
                },
            );
        }
        let target = self.qmodel.sample_target(&mut self.rng);
        let mut infected = vec![NEVER_HEARD; self.nodes.len()];
        infected[src] = self.nodes[src].incarnation;
        let rumor = Rumor {
            target,
            started: now,
            round: 0,
            infected,
            heard: 1,
            active: vec![src as u32],
            messages: 0,
            results: 0,
            measured: ctx.after_warmup(now),
        };
        self.rumors.insert(qid, rumor);
        ctx.schedule(now + self.cfg.round_interval, Event::Round { query: qid });
    }

    /// Runs one gossip round of rumor `qid`, then either settles the
    /// rumor or schedules its next round.
    fn on_round<T: TraceSink>(&mut self, qid: u64, now: SimTime, ctx: &mut SimCtx<'_, Event, T>) {
        let Some(mut rumor) = self.rumors.remove(&qid) else {
            return;
        };
        self.counters.incr("rounds");
        let n = self.nodes.len();
        // A mass join may have grown the population since this rumor
        // started; newcomers have never heard it.
        if rumor.infected.len() < n {
            rumor.infected.resize(n, NEVER_HEARD);
        }
        let spreaders = std::mem::take(&mut rumor.active);
        let mut next_active: Vec<u32> = Vec::new();
        // A fresh stamp token per round: `active_stamp[t] == token` means
        // t is already in `next_active` (O(1) dedup, insertion order
        // preserved by the Vec itself).
        self.active_token += 1;
        let token = self.active_token;
        for s in spreaders {
            let s = s as usize;
            // A spreader that died (and was replaced) since it was
            // activated takes its rumor knowledge to the grave.
            let still_informed = rumor.infected[s] == self.nodes[s].incarnation;
            if !still_informed {
                self.counters.incr("spreaders_lost");
                continue;
            }
            for _ in 0..self.rt.fanout {
                let t = if let Some(env) = &self.lane_env {
                    // Lane mode: uniform over the *global* population,
                    // excluding the spreader's own global index — a
                    // spreader is as likely to push across a lane
                    // boundary as within it.
                    let me = env.offset + s;
                    let mut g = self.rng.below(env.total);
                    while g == me {
                        g = self.rng.below(env.total);
                    }
                    if g < env.offset || g >= env.offset + n {
                        // Cross-lane push: counted here, delivered to
                        // the owning lane one round later. The remote
                        // peer answers but is not infected — it cannot
                        // spread a rumor whose state lives elsewhere.
                        rumor.messages += 1;
                        self.counters.incr("pushes");
                        self.counters.incr("cross_lane_pushes");
                        let (dst_lane, dst_slot) = env.locate(g);
                        self.lane_out.push((
                            dst_lane,
                            Event::RemotePush {
                                query: qid,
                                src_lane: env.lane,
                                slot: dst_slot,
                                target: rumor.target,
                            },
                        ));
                        continue;
                    }
                    g - env.offset
                } else {
                    // Uniform random contact, excluding the spreader
                    // itself.
                    let mut t = self.rng.below(n);
                    while t == s {
                        t = self.rng.below(n);
                    }
                    t
                };
                rumor.messages += 1;
                self.counters.incr("pushes");
                if let Some(groups) = self.rt.partition {
                    if s as u32 % groups != t as u32 % groups {
                        // The push was sent (and counted) but the
                        // partition eats it in transit: no infection,
                        // no pull, no dedup bookkeeping.
                        self.counters.incr("partition_drops");
                        if ctx.tracing() {
                            ctx.emit(
                                now,
                                TraceRecord::Probe {
                                    query: qid,
                                    target: self.nodes[t].incarnation,
                                    kind: ProbeKind::Push,
                                    outcome: ProbeOutcome::Refused,
                                },
                            );
                        }
                        continue;
                    }
                }
                let t_inc = self.nodes[t].incarnation;
                let known = rumor.infected[t];
                if known == t_inc {
                    // Duplicate: suppressed, but the receiver may pull
                    // itself back into dissemination.
                    self.counters.incr("dedup_drops");
                    if ctx.tracing() {
                        ctx.emit(
                            now,
                            TraceRecord::Probe {
                                query: qid,
                                target: t_inc,
                                kind: ProbeKind::Push,
                                outcome: ProbeOutcome::Duplicate,
                            },
                        );
                    }
                    if self.rng.chance(self.rt.pull_probability) {
                        rumor.messages += 1;
                        self.counters.incr("pulls");
                        if self.active_stamp[t] != token {
                            self.active_stamp[t] = token;
                            next_active.push(t as u32);
                        }
                        if ctx.tracing() {
                            ctx.emit(
                                now,
                                TraceRecord::Probe {
                                    query: qid,
                                    target: t_inc,
                                    kind: ProbeKind::Pull,
                                    outcome: ProbeOutcome::Good,
                                },
                            );
                        }
                    }
                } else {
                    // First contact for this incarnation: either the slot
                    // never heard the rumor, or it was reborn since
                    // infection (the stored incarnation is stale).
                    if known == NEVER_HEARD {
                        rumor.heard += 1;
                    } else {
                        self.counters.incr("reinfections");
                    }
                    rumor.infected[t] = t_inc;
                    if self.active_stamp[t] != token {
                        self.active_stamp[t] = token;
                        next_active.push(t as u32);
                    }
                    if self
                        .qmodel
                        .answers_in(&self.libs, self.nodes[t].library, rumor.target)
                    {
                        rumor.results += 1;
                    }
                    if ctx.tracing() {
                        ctx.emit(
                            now,
                            TraceRecord::Probe {
                                query: qid,
                                target: t_inc,
                                kind: ProbeKind::Push,
                                outcome: ProbeOutcome::Good,
                            },
                        );
                    }
                }
            }
        }
        rumor.round += 1;
        rumor.active = next_active;
        let done = if rumor.results >= self.cfg.num_desired_results {
            self.counters.incr("satisfied_early");
            true
        } else if rumor.round >= self.rt.round_ttl {
            self.counters.incr("ttl_exhausted");
            true
        } else if rumor.active.is_empty() {
            self.counters.incr("died_out");
            true
        } else {
            false
        };
        if done {
            let satisfied = self.settle(&rumor, now);
            if ctx.tracing() {
                ctx.emit(
                    now,
                    TraceRecord::QueryEnd {
                        query: qid,
                        satisfied,
                        probes: u32::try_from(rumor.messages).unwrap_or(u32::MAX),
                        results: rumor.results,
                    },
                );
            }
        } else {
            self.rumors.insert(qid, rumor);
            ctx.schedule(now + self.cfg.round_interval, Event::Round { query: qid });
        }
    }

    /// Folds a settling rumor into the run metrics (if measured) and
    /// returns whether it was satisfied.
    fn settle(&mut self, rumor: &Rumor, at: SimTime) -> bool {
        let satisfied = rumor.results >= self.cfg.num_desired_results;
        if rumor.measured {
            self.queries += 1;
            if !satisfied {
                self.unsatisfied += 1;
            }
            self.messages.record(rumor.messages as f64);
            self.peers_reached.record(rumor.heard as f64 - 1.0);
            if satisfied {
                self.response_time.record((at - rumor.started).as_secs());
            }
        }
        satisfied
    }

    /// A cross-lane push found a result (lane mode only): credit the
    /// rumor if it is still in flight; a hit landing after settlement
    /// is counted but dropped, like a reply outliving its query.
    fn on_remote_hit(&mut self, query: u64) {
        if let Some(rumor) = self.rumors.get_mut(&query) {
            rumor.results += 1;
            self.counters.incr("remote_hits");
        } else {
            self.counters.incr("late_remote_hits");
        }
    }
}

impl<T: TraceSink> Simulation<T> for GossipSim {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, ctx: &mut SimCtx<'_, Event, T>) {
        match event {
            Event::Death { slot, incarnation } => {
                self.on_death(slot as usize, incarnation, now, ctx);
            }
            Event::Burst { slot, incarnation } => {
                self.on_burst(slot as usize, incarnation, now, ctx);
            }
            Event::Round { query } => self.on_round(query, now, ctx),
            Event::RemotePush { .. } | Event::RemoteHit { .. } => {
                // Intercepted by the lane runner before delegation; a
                // serial kernel never schedules them.
                debug_assert!(false, "remote events reached the serial handler");
            }
        }
    }

    fn live_peers(&self) -> u64 {
        // Rebirth is in place and immediate, so every slot always holds
        // a live peer — the constant-population invariant.
        self.nodes.len() as u64
    }
}

impl GossipSim {
    /// The one driver both run surfaces share: `scenario: None` is the
    /// plain run, `Some` routes through [`Kernel::run_scenario`]. The
    /// two paths are byte-identical for an empty timeline.
    ///
    /// Rumors still in flight at the horizon are settled (and their
    /// `QueryEnd` records emitted) at the end instant, so a trace always
    /// contains exactly one `query_end` per `query_start`.
    fn run_inner<T: TraceSink>(
        mut self,
        sink: T,
        scenario: Option<&simkit::scenario::Scenario>,
    ) -> Result<(GossipReport, T), simkit::scenario::ScenarioError> {
        let mut params = KernelParams::new(self.cfg.duration).with_warmup(self.cfg.warmup);
        if let Some(interval) = self.cfg.sample_interval {
            params = params.with_sampling(interval);
        }
        let mut kernel = Kernel::new(params, sink);
        self.schedule_initial(&mut kernel.ctx());
        match scenario {
            None => kernel.run(&mut self),
            Some(s) => kernel.run_scenario(&mut self, s)?,
        }
        let events_processed = kernel.events_processed();
        let mut sink = kernel.into_sink();
        // Flush in-flight rumors at the horizon, in query order.
        let mut pending: Vec<u64> = self.rumors.keys().copied().collect();
        pending.sort_unstable();
        let end = SimTime::ZERO + self.cfg.duration;
        for qid in pending {
            let rumor = self.rumors.remove(&qid).expect("pending rumor exists");
            self.counters.incr("horizon_flushed");
            let satisfied = self.settle(&rumor, end);
            if sink.enabled() {
                sink.record(
                    end,
                    TraceRecord::QueryEnd {
                        query: qid,
                        satisfied,
                        probes: u32::try_from(rumor.messages).unwrap_or(u32::MAX),
                        results: rumor.results,
                    },
                );
            }
        }
        let report = GossipReport {
            queries: self.queries,
            unsatisfied: self.unsatisfied,
            messages: self.messages,
            peers_reached: self.peers_reached,
            response_time: self.response_time,
            counters: self.counters,
            events_processed,
        };
        Ok((report, sink))
    }
}

impl Runnable for GossipSim {
    type Report = GossipReport;

    fn run_traced<T: TraceSink>(self, sink: T) -> (GossipReport, T) {
        self.run_inner(sink, None)
            .expect("runs without a scenario cannot fail")
    }

    fn run_scenario_traced<T: TraceSink>(
        self,
        scenario: &simkit::scenario::Scenario,
        sink: T,
    ) -> Result<(GossipReport, T), simkit::scenario::ScenarioError> {
        self.run_inner(sink, Some(scenario))
    }
}

impl SimReport for GossipReport {
    fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::trace::{CountingSink, RecordingSink};

    fn small() -> Config {
        Config::small_test(0x905)
    }

    #[test]
    fn runs_and_reports() {
        let report = GossipSim::new(small()).unwrap().run();
        assert!(report.queries > 0);
        assert!(report.messages_per_query() > 0.0);
        assert!(report.unsatisfaction() <= 1.0);
        assert!(report.counters.get("pushes") > 0);
        assert!(report.counters.get("rounds") > 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = GossipSim::new(small()).unwrap().run();
        let b = GossipSim::new(small()).unwrap().run();
        assert_eq!(a, b);
    }

    #[test]
    fn higher_fanout_costs_more_and_reaches_further() {
        let lean = GossipSim::new(small().with_fanout(2)).unwrap().run();
        let fat = GossipSim::new(small().with_fanout(5)).unwrap().run();
        assert!(fat.messages_per_query() > lean.messages_per_query());
        assert!(fat.peers_reached.mean() > lean.peers_reached.mean());
    }

    #[test]
    fn longer_ttl_is_no_worse_on_satisfaction() {
        let short = GossipSim::new(small().with_round_ttl(1)).unwrap().run();
        let long = GossipSim::new(small().with_round_ttl(10)).unwrap().run();
        assert!(short.messages_per_query() < long.messages_per_query());
        assert!(short.unsatisfaction() >= long.unsatisfaction());
    }

    #[test]
    fn pull_keeps_the_epidemic_alive_longer() {
        let push_only = GossipSim::new(small().with_pull_probability(0.0))
            .unwrap()
            .run();
        let hybrid = GossipSim::new(small().with_pull_probability(0.8))
            .unwrap()
            .run();
        assert_eq!(push_only.counters.get("pulls"), 0);
        assert!(hybrid.counters.get("pulls") > 0);
        assert!(hybrid.messages_per_query() > push_only.messages_per_query());
    }

    #[test]
    fn churn_kills_rumor_knowledge() {
        let cfg = small().with_lifespan_multiplier(0.05);
        let report = GossipSim::new(cfg).unwrap().run();
        assert!(report.counters.get("deaths") > 10);
        assert_eq!(
            report.counters.get("births"),
            report.counters.get("deaths") + 150
        );
    }

    #[test]
    fn satisfied_queries_record_response_times() {
        let report = GossipSim::new(small()).unwrap().run();
        let satisfied = report.queries - report.unsatisfied;
        assert_eq!(report.response_time.count(), satisfied);
        if satisfied > 0 {
            assert!(report.mean_response_secs() > 0.0);
        }
    }

    #[test]
    fn trace_reconciles_with_report() {
        let cfg = small().with_warmup(simkit::time::SimDuration::ZERO);
        let (report, sink) = GossipSim::new(cfg).unwrap().run_traced(CountingSink::new());
        assert_eq!(sink.query_starts, report.queries);
        assert_eq!(sink.query_ends, report.queries);
        assert_eq!(sink.satisfied, report.queries - report.unsatisfied);
        // Every message is exactly one push or pull probe record, and
        // the per-query probe counts sum to the same total.
        let total_messages = report.messages.sum() as u64;
        assert_eq!(sink.push_probes + sink.pull_probes, total_messages);
        assert_eq!(sink.query_end_probes, total_messages);
        assert_eq!(sink.joins, report.counters.get("births"));
        assert_eq!(sink.deaths, report.counters.get("deaths"));
        assert_eq!(sink.flood_probes, 0);
        assert_eq!(sink.query_probes, 0);
    }

    #[test]
    fn every_query_start_has_exactly_one_end() {
        let cfg = small().with_warmup(simkit::time::SimDuration::ZERO);
        let (report, sink) = GossipSim::new(cfg)
            .unwrap()
            .run_traced(RecordingSink::new());
        let starts: Vec<u64> = sink
            .select(|r| matches!(r, TraceRecord::QueryStart { .. }))
            .map(|(_, r)| match r {
                TraceRecord::QueryStart { query, .. } => *query,
                _ => unreachable!(),
            })
            .collect();
        let mut ends: Vec<u64> = sink
            .select(|r| matches!(r, TraceRecord::QueryEnd { .. }))
            .map(|(_, r)| match r {
                TraceRecord::QueryEnd { query, .. } => *query,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(starts.len() as u64, report.queries);
        ends.sort_unstable();
        let mut sorted_starts = starts.clone();
        sorted_starts.sort_unstable();
        assert_eq!(sorted_starts, ends);
        // In-flight rumors at the horizon were flushed, not dropped.
        assert!(report.counters.get("horizon_flushed") > 0);
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        let untraced = GossipSim::new(small()).unwrap().run();
        let (traced, _) = GossipSim::new(small())
            .unwrap()
            .run_traced(CountingSink::new());
        assert_eq!(untraced, traced);
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(GossipSim::new(small().with_fanout(0)).is_err());
        assert!(GossipSim::new(small().with_round_ttl(0)).is_err());
        assert!(GossipSim::new(small().with_pull_probability(2.0)).is_err());
        assert!(GossipSim::new(small()).is_ok());
    }
}
