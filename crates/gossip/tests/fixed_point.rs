//! Theory spot-check: infect-and-die push gossip reaches the classic
//! epidemic fixed point.
//!
//! With pure push (no pull), fanout `f`, no churn, and no early
//! satisfaction, the final infected fraction `x` of a large uniform
//! population solves `x = 1 - e^{-f.x}`: every infected node makes `f`
//! uniform contacts exactly once, so a node stays uninfected iff all
//! `f.x.n` contacts miss it. The known solutions are ~0.7968 for `f=2`
//! and ~0.9405 for `f=3`; the simulator's mean reach must land on them.

use gossip::{Config, Runnable};
use simkit::time::SimDuration;

/// Solves `x = 1 - e^{-f.x}` by fixed-point iteration (the map is a
/// contraction near the solution for f >= 2).
fn fixed_point_fraction(fanout: usize) -> f64 {
    let f = fanout as f64;
    let mut x = 0.9;
    for _ in 0..200 {
        x = 1.0 - (-f * x).exp();
    }
    x
}

#[test]
fn infect_and_die_reach_matches_the_epidemic_fixed_point() {
    for (fanout, known) in [(2usize, 0.7968), (3, 0.9405)] {
        let fp = fixed_point_fraction(fanout);
        assert!(
            (fp - known).abs() < 5e-4,
            "fanout {fanout}: iteration finds the known solution ({fp:.4} vs {known:.4})"
        );

        // Pure push, churnless, never satisfied early, TTL far beyond
        // the epidemic's natural O(log n) duration: the only way a
        // rumor ends is dying out at the fixed point.
        let n = 1000usize;
        let report = Config::default()
            .with_network_size(n)
            .with_fanout(fanout)
            .with_pull_probability(0.0)
            .with_round_ttl(64)
            .with_num_desired_results(1_000_000)
            .with_lifespan_multiplier(1000.0)
            .with_query_rate(2e-3)
            .with_duration(SimDuration::from_secs(200.0))
            .with_warmup(SimDuration::ZERO)
            .with_seed(0xF1)
            .build()
            .expect("valid config")
            .run();
        assert_eq!(report.counters.get("deaths"), 0, "run is churnless");
        assert_eq!(report.counters.get("pulls"), 0, "pure push");
        assert_eq!(report.counters.get("satisfied_early"), 0);
        assert!(report.queries > 100, "enough samples: {}", report.queries);
        // `peers_reached` excludes the originator; the fixed-point
        // fraction includes it.
        let measured = (report.peers_reached.mean() + 1.0) / n as f64;
        assert!(
            (measured - fp).abs() < 0.05,
            "fanout {fanout}: measured reach {measured:.4} vs fixed point {fp:.4}"
        );
    }
}
