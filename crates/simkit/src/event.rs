//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] orders events by `(time, sequence)`: events scheduled for
//! the same instant pop in the order they were scheduled, which keeps runs
//! bit-for-bit reproducible regardless of heap internals.
//!
//! Events can be cancelled cheaply via the [`EventHandle`] returned at
//! scheduling time; cancelled events are skipped lazily at pop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;

/// An opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use simkit::event::EventQueue;
/// use simkit::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "later");
/// q.schedule(SimTime::from_secs(1.0), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_secs(), e), (1.0, "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Seqs scheduled but neither fired nor cancelled — the authority on
    /// liveness. A heap entry whose seq is absent here was cancelled and
    /// is reclaimed lazily on pop; a handle whose seq is absent refers to
    /// an event that already fired (or was already cancelled) and cannot
    /// be cancelled again.
    pending: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation instant: the timestamp of the most recently
    /// popped event, never earlier than any previously popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of live (non-cancelled) events still pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns true if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at` and returns a cancellation
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past would silently reorder causality.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(Scheduled { at, seq, event });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the handle referred to an event that had not yet
    /// fired or been cancelled; a handle for an event that already fired
    /// is rejected (`false`) and leaves the queue untouched. Cancellation
    /// is O(1); the heap slot is reclaimed lazily on pop.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.pending.remove(&handle.0)
    }

    /// Pops the earliest live event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if !self.pending.remove(&s.seq) {
                continue; // cancelled; reclaim lazily
            }
            self.now = s.at;
            self.popped += 1;
            return Some((s.at, s.event));
        }
        None
    }

    /// Peeks at the timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop leading cancelled entries so the peek is accurate.
        while let Some(s) = self.heap.peek() {
            if self.pending.contains(&s.seq) {
                return Some(s.at);
            }
            self.heap.pop();
        }
        None
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), 'c');
        q.schedule(t(1.0), 'a');
        q.schedule(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), ());
        q.schedule(t(4.0), ());
        q.pop();
        assert_eq!(q.now(), t(1.0));
        q.pop();
        assert_eq!(q.now(), t(4.0));
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10.0), ());
        q.pop();
        q.schedule(t(5.0), ());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1.0), 1);
        let _h2 = q.schedule(t(2.0), 2);
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn cancel_of_already_fired_event_is_rejected() {
        // Regression: the old implementation put the fired seq into the
        // cancelled set forever, permanently skewing `len()` and letting
        // `heap.len() - cancelled.len()` underflow.
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1.0), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        assert!(!q.cancel(h1), "a fired event cannot be cancelled");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // Accounting stays exact for later events.
        let h2 = q.schedule(t(2.0), 2);
        assert_eq!(q.len(), 1);
        assert!(!q.cancel(h1), "still rejected after more scheduling");
        assert!(q.cancel(h2));
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_of_fired_event_never_underflows_len() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1.0), ());
        q.pop();
        q.cancel(h); // must not poison the accounting
        q.cancel(h);
        assert_eq!(q.len(), 0, "len() would have underflowed before the fix");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn empty_reporting() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule(t(1.0), 0);
        assert!(!q.is_empty());
        q.cancel(h);
        assert!(q.is_empty());
    }
}
