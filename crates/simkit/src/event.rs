//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] orders events by `(time, sequence)`: events scheduled for
//! the same instant pop in the order they were scheduled, which keeps runs
//! bit-for-bit reproducible regardless of queue internals.
//!
//! Events can be cancelled cheaply via the [`EventHandle`] returned at
//! scheduling time; cancelled events are skipped lazily at pop.
//!
//! # Implementation: a calendar queue
//!
//! Internally this is a calendar queue (Brown 1988) rather than a binary
//! heap: a ring of `NSLOTS` time buckets of `BUCKET_WIDTH_SECS` each,
//! plus an overflow heap for events beyond the ring's horizon. Near-term
//! scheduling and popping are O(1) amortized instead of O(log n), which
//! matters because every simulated probe, ping, burst and death passes
//! through here.
//!
//! * An event at absolute time `t` belongs to epoch `⌊t / width⌋` and
//!   lives in slot `epoch mod NSLOTS`. Each bucket is kept sorted in
//!   *descending* `(time, seq)` order, so the bucket's earliest event is
//!   removable with a `Vec::pop`.
//! * The `cursor` is the epoch of the most recently popped event. All
//!   live ring events have epochs in `[cursor, cursor + NSLOTS)` — an
//!   event's epoch can't be below the cursor (it would have popped
//!   already), and events at or past the horizon wait in the overflow
//!   heap, migrating into the ring as the cursor advances. A slot
//!   therefore never holds two *live* epochs at once, so bucket order +
//!   epoch order reproduce exactly the heap's global `(time, seq)`
//!   order. Only cancelled events can linger below the cursor; they sort
//!   first in their bucket and are discarded when met.
//! * Popping scans forward from the cursor for the first non-empty
//!   bucket. The scan resumes where time actually is, so total scan work
//!   over a run is bounded by simulated-time-elapsed / bucket-width,
//!   independent of the event count.
//!
//! The swap is observationally invisible: the pop order is the same
//! total order as before, `now()`/`len()`/cancel semantics are
//! unchanged, and no RNG is involved.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::hash::FxHashSet;
use crate::time::SimTime;

/// Seconds covered by one calendar bucket. Chosen so typical gaps
/// between consecutive events (tens of milliseconds to a few seconds in
/// the paper's workloads) skip at most a handful of buckets.
const BUCKET_WIDTH_SECS: f64 = 0.25;

/// Buckets in the ring (must be a power of two). With the width above,
/// the ring spans 1024 simulated seconds; rarer far-future events
/// (peer deaths drawn from heavy-tailed lifetimes) sit in the overflow
/// heap until the window reaches them.
const NSLOTS: usize = 4096;
const SLOT_MASK: u64 = NSLOTS as u64 - 1;

/// The calendar epoch (bucket index before wrapping) of an instant.
#[inline]
fn epoch(at: SimTime) -> u64 {
    // f64→u64 casts saturate, so absurdly far times stay monotone.
    (at.as_secs() / BUCKET_WIDTH_SECS) as u64
}

/// An opaque handle identifying a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use simkit::event::EventQueue;
/// use simkit::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "later");
/// q.schedule(SimTime::from_secs(1.0), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_secs(), e), (1.0, "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The calendar ring. Each bucket is sorted descending by
    /// `(at, seq)`, so its earliest entry pops off the back.
    ring: Vec<Vec<Scheduled<E>>>,
    /// Entries physically in the ring, including cancelled ones not yet
    /// reclaimed. Zero means every remaining event is in `overflow`.
    ring_count: usize,
    /// Epoch of the most recently popped event; the ring window is
    /// `[cursor, cursor + NSLOTS)`.
    cursor: u64,
    /// Events at or beyond the ring horizon, ordered like the old heap.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Seqs scheduled but neither fired nor cancelled — the authority on
    /// liveness. A stored entry whose seq is absent here was cancelled
    /// and is reclaimed lazily on pop; a handle whose seq is absent
    /// refers to an event that already fired (or was already cancelled)
    /// and cannot be cancelled again.
    pending: FxHashSet<u64>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            ring: (0..NSLOTS).map(|_| Vec::new()).collect(),
            ring_count: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            pending: FxHashSet::default(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current simulation instant: the timestamp of the most recently
    /// popped event, never earlier than any previously popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of live (non-cancelled) events still pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns true if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at` and returns a cancellation
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past would silently reorder causality.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        let entry = Scheduled { at, seq, event };
        if epoch(at) < self.cursor + NSLOTS as u64 {
            self.ring_insert(entry);
        } else {
            self.overflow.push(entry);
        }
        EventHandle(seq)
    }

    /// Inserts an entry into its ring bucket, keeping the bucket sorted
    /// descending by `(at, seq)`.
    fn ring_insert(&mut self, entry: Scheduled<E>) {
        let bucket = &mut self.ring[(epoch(entry.at) & SLOT_MASK) as usize];
        let key = (entry.at, entry.seq);
        let idx = bucket.partition_point(|s| (s.at, s.seq) > key);
        bucket.insert(idx, entry);
        self.ring_count += 1;
    }

    /// Moves overflow events whose epoch has entered the ring window into
    /// the ring; cancelled ones are dropped on the way.
    fn migrate(&mut self) {
        let horizon = self.cursor + NSLOTS as u64;
        while let Some(top) = self.overflow.peek() {
            if epoch(top.at) >= horizon {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry exists");
            if self.pending.contains(&entry.seq) {
                self.ring_insert(entry);
            }
        }
    }

    /// Scans the ring window for the slot holding the earliest live
    /// event, reclaiming cancelled entries met along the way. Returns
    /// `None` if the scan emptied the ring.
    fn earliest_live_slot(&mut self) -> Option<usize> {
        for e in self.cursor..self.cursor + NSLOTS as u64 {
            let slot = (e & SLOT_MASK) as usize;
            while let Some(s) = self.ring[slot].last() {
                if self.pending.contains(&s.seq) {
                    return Some(slot);
                }
                self.ring[slot].pop();
                self.ring_count -= 1;
            }
            if self.ring_count == 0 {
                break;
            }
        }
        None
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the handle referred to an event that had not yet
    /// fired or been cancelled; a handle for an event that already fired
    /// is rejected (`false`) and leaves the queue untouched. Cancellation
    /// is O(1); the stored slot is reclaimed lazily on pop.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.pending.remove(&handle.0)
    }

    /// Pops the earliest live event, advancing the clock to its timestamp.
    ///
    /// Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            self.migrate();
            if self.ring_count == 0 {
                // Everything lives in the overflow heap, whose top is the
                // global minimum.
                let s = self.overflow.pop()?;
                if !self.pending.remove(&s.seq) {
                    continue; // cancelled; reclaim lazily
                }
                self.now = s.at;
                self.cursor = epoch(s.at);
                self.popped += 1;
                return Some((s.at, s.event));
            }
            let Some(slot) = self.earliest_live_slot() else {
                // Only cancelled entries remained; the ring is now empty.
                continue;
            };
            let s = self.ring[slot].pop().expect("slot holds a live entry");
            self.ring_count -= 1;
            self.pending.remove(&s.seq);
            self.now = s.at;
            self.cursor = epoch(s.at);
            self.popped += 1;
            return Some((s.at, s.event));
        }
    }

    /// Peeks at the timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            self.migrate();
            if self.ring_count == 0 {
                // Drop leading cancelled entries so the peek is accurate.
                while let Some(s) = self.overflow.peek() {
                    if self.pending.contains(&s.seq) {
                        return Some(s.at);
                    }
                    self.overflow.pop();
                }
                return None;
            }
            match self.earliest_live_slot() {
                Some(slot) => {
                    let s = self.ring[slot].last().expect("slot holds a live entry");
                    return Some(s.at);
                }
                None => continue, // cleaning emptied the ring; check overflow
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), 'c');
        q.schedule(t(1.0), 'a');
        q.schedule(t(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), ());
        q.schedule(t(4.0), ());
        q.pop();
        assert_eq!(q.now(), t(1.0));
        q.pop();
        assert_eq!(q.now(), t(4.0));
        assert_eq!(q.events_processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10.0), ());
        q.pop();
        q.schedule(t(5.0), ());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1.0), 1);
        let _h2 = q.schedule(t(2.0), 2);
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn cancel_of_already_fired_event_is_rejected() {
        // Regression: the old implementation put the fired seq into the
        // cancelled set forever, permanently skewing `len()` and letting
        // `heap.len() - cancelled.len()` underflow.
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1.0), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        assert!(!q.cancel(h1), "a fired event cannot be cancelled");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // Accounting stays exact for later events.
        let h2 = q.schedule(t(2.0), 2);
        assert_eq!(q.len(), 1);
        assert!(!q.cancel(h1), "still rejected after more scheduling");
        assert!(q.cancel(h2));
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_of_fired_event_never_underflows_len() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1.0), ());
        q.pop();
        q.cancel(h); // must not poison the accounting
        q.cancel(h);
        assert_eq!(q.len(), 0, "len() would have underflowed before the fix");
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1.0), 1);
        q.schedule(t(2.0), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(2.0)));
    }

    #[test]
    fn empty_reporting() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule(t(1.0), 0);
        assert!(!q.is_empty());
        q.cancel(h);
        assert!(q.is_empty());
    }

    // ------------------------------------------------------------------
    // Calendar-queue internals: overflow migration and window wrap.
    // ------------------------------------------------------------------

    /// The ring spans `NSLOTS * BUCKET_WIDTH_SECS` seconds.
    fn horizon_secs() -> f64 {
        NSLOTS as f64 * BUCKET_WIDTH_SECS
    }

    #[test]
    fn far_future_events_pop_in_order() {
        // Events far beyond the ring horizon start in the overflow heap
        // and must still pop in exact (time, seq) order.
        let mut q = EventQueue::new();
        let far = horizon_secs() * 3.0;
        q.schedule(t(far + 1.0), 'd');
        q.schedule(t(0.5), 'a');
        q.schedule(t(far), 'c');
        q.schedule(t(1.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn overflow_ties_keep_schedule_order() {
        let mut q = EventQueue::new();
        let far = horizon_secs() * 2.0;
        for i in 0..50 {
            q.schedule(t(far), i);
        }
        // Drain: all events migrate from overflow into the ring together.
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_overflow_events_are_skipped() {
        let mut q = EventQueue::new();
        let far = horizon_secs() * 2.0;
        let h = q.schedule(t(far), 1);
        q.schedule(t(far + 1.0), 2);
        assert!(q.cancel(h));
        assert_eq!(q.pop().map(|(_, e)| e), Some(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn window_slides_as_time_advances() {
        // March time forward over several full ring wraps, scheduling a
        // short-gap event after each pop; order and clock must stay exact.
        let mut q = EventQueue::new();
        q.schedule(t(0.0), 0u64);
        let mut hops = 0u64;
        let gap = horizon_secs() / 3.0 + 0.1; // forces regular slot reuse
        while let Some((now, k)) = q.pop() {
            assert_eq!(k, hops);
            assert_eq!(q.now(), now);
            hops += 1;
            if hops < 20 {
                q.schedule(now + crate::time::SimDuration::from_secs(gap), hops);
            }
        }
        assert_eq!(hops, 20);
        assert_eq!(q.events_processed(), 20);
    }

    #[test]
    fn slot_reuse_across_epochs_keeps_order() {
        // Two events exactly one ring-span apart share a slot; the
        // near one must pop first, then the far one (initially overflow).
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 'n');
        q.schedule(t(1.0 + horizon_secs()), 'f');
        assert_eq!(q.pop().map(|(_, e)| e), Some('n'));
        assert_eq!(q.pop().map(|(_, e)| e), Some('f'));
    }

    #[test]
    fn peek_time_sees_overflow_only_queues() {
        let mut q = EventQueue::new();
        let far = horizon_secs() * 2.0;
        q.schedule(t(far), ());
        assert_eq!(q.peek_time(), Some(t(far)));
        assert_eq!(q.pop().map(|(at, ())| at), Some(t(far)));
    }

    // ------------------------------------------------------------------
    // Property test: the calendar queue agrees with a reference
    // BinaryHeap implementation on randomized schedules, including
    // cancels, duplicate times, and cancel-after-fire.
    // ------------------------------------------------------------------

    /// The old heap-based queue, reimplemented minimally as the oracle.
    struct RefQueue {
        heap: BinaryHeap<Scheduled<u64>>,
        pending: std::collections::HashSet<u64>,
        next_seq: u64,
        now: SimTime,
    }

    impl RefQueue {
        fn new() -> Self {
            RefQueue {
                heap: BinaryHeap::new(),
                pending: std::collections::HashSet::new(),
                next_seq: 0,
                now: SimTime::ZERO,
            }
        }

        fn schedule(&mut self, at: SimTime) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.insert(seq);
            self.heap.push(Scheduled {
                at,
                seq,
                event: seq,
            });
            seq
        }

        fn cancel(&mut self, seq: u64) -> bool {
            self.pending.remove(&seq)
        }

        fn pop(&mut self) -> Option<(SimTime, u64)> {
            while let Some(s) = self.heap.pop() {
                if !self.pending.remove(&s.seq) {
                    continue;
                }
                self.now = s.at;
                return Some((s.at, s.event));
            }
            None
        }
    }

    #[test]
    fn randomized_schedules_match_the_heap_oracle() {
        use crate::rng::RngStream;
        use crate::time::SimDuration;

        for trial in 0..20u64 {
            let mut rng = RngStream::from_seed(0xCA1E + trial, "calendar-prop");
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut oracle = RefQueue::new();
            // Handles by payload (the oracle's seq == payload by design;
            // the real queue's handles are tracked side by side).
            let mut handles: Vec<(u64, EventHandle)> = Vec::new();

            for _ in 0..2000 {
                match rng.below(10) {
                    // Schedule, biased toward near times, with duplicate
                    // instants and occasional far-future (overflow) times.
                    0..=5 => {
                        let gap = match rng.below(4) {
                            0 => 0.0, // duplicate of `now`
                            1 => rng.f64() * 1.0,
                            2 => rng.f64() * 50.0,
                            _ => rng.f64() * horizon_secs() * 2.5,
                        };
                        let at = oracle.now + SimDuration::from_secs(gap);
                        let seq = oracle.schedule(at);
                        let h = q.schedule(at, seq);
                        handles.push((seq, h));
                    }
                    // Cancel a random known handle: maybe live, maybe
                    // already fired (cancel-after-fire), maybe cancelled.
                    6..=7 => {
                        if !handles.is_empty() {
                            let (seq, h) = handles[rng.below(handles.len())];
                            assert_eq!(q.cancel(h), oracle.cancel(seq), "cancel({seq})");
                        }
                    }
                    // Pop.
                    _ => {
                        let got = q.pop();
                        let want = oracle.pop();
                        assert_eq!(got, want, "pop mismatch (trial {trial})");
                        if let Some((at, _)) = got {
                            assert_eq!(q.now(), at);
                        }
                    }
                }
                assert_eq!(q.len(), oracle.pending.len(), "len drift (trial {trial})");
            }
            // Drain both completely; tails must agree too.
            loop {
                let got = q.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "drain mismatch (trial {trial})");
                if got.is_none() {
                    break;
                }
            }
            assert!(q.is_empty());
        }
    }
}
