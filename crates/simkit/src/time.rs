//! Virtual simulation time.
//!
//! Simulation time is measured in seconds as an `f64` wrapped in the
//! [`SimTime`] newtype, and durations in [`SimDuration`]. Keeping the two
//! distinct prevents accidentally adding two absolute instants, a classic
//! simulation bug.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in seconds since the start
/// of the run.
///
/// `SimTime` is totally ordered; NaN values are rejected at construction.
///
/// # Examples
///
/// ```
/// use simkit::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(30.0);
/// assert_eq!(t.as_secs(), 30.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SimTime(f64);

/// A span of simulation time, in seconds.
///
/// # Examples
///
/// ```
/// use simkit::time::SimDuration;
///
/// let d = SimDuration::from_secs(1.5) * 2.0;
/// assert_eq!(d.as_secs(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct SimDuration(f64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a `SimTime` from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Returns the instant as seconds since the simulation origin.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the integer second bucket containing this instant.
    ///
    /// Used by per-second rate meters (e.g. `MaxProbesPerSecond` capacity
    /// accounting).
    #[must_use]
    pub fn second_bucket(self) -> u64 {
        self.0 as u64
    }

    /// Returns the elapsed duration since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        SimDuration(secs)
    }

    /// Returns the duration in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns true if the duration is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Eq for SimTime {}

// Total order is sound because construction rejects NaN.
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("SimTime is never NaN")
    }
}

impl Eq for SimDuration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("SimDuration is never NaN")
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics (debug) if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when order is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction went negative");
        SimDuration((self.0 - rhs.0).max(0.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

impl Default for SimDuration {
    fn default() -> Self {
        SimDuration::ZERO
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(2.5);
        assert_eq!((t + d).as_secs(), 12.5);
        assert_eq!(((t + d) - t).as_secs(), 2.5);
    }

    #[test]
    fn second_bucket_truncates() {
        assert_eq!(SimTime::from_secs(0.999).second_bucket(), 0);
        assert_eq!(SimTime::from_secs(1.0).second_bucket(), 1);
        assert_eq!(SimTime::from_secs(59.9).second_bucket(), 59);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(5.0);
        let b = SimTime::from_secs(7.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_secs(), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3.0),
            SimTime::ZERO,
            SimTime::from_secs(1.0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(1.0),
                SimTime::from_secs(3.0)
            ]
        );
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(4.0);
        assert_eq!((d * 0.5).as_secs(), 2.0);
        assert_eq!((d / 4.0).as_secs(), 1.0);
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "t=1.500s");
        assert_eq!(SimDuration::from_secs(0.25).to_string(), "0.250s");
    }
}
