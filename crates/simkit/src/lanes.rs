//! Lane-partitioned conservative parallel kernel.
//!
//! The serial [`Kernel`](crate::sim::Kernel) drives one event queue on
//! one thread. This module adds intra-run parallelism without giving up
//! the workspace's determinism contract: the simulated population is
//! split into a fixed number of **lanes** — a config knob, independent
//! of thread count, exactly how `--shard i/m` is seed-addressed — and
//! each lane owns its own calendar queue, trace sink, and (engine-side)
//! RNG streams. Lanes execute in **bounded time windows** sized by the
//! minimum cross-lane event latency (the *lookahead*: a cross-lane
//! probe RTT, a gossip round interval); within a window lanes share
//! nothing, so any number of worker threads may process them in any
//! order. Cross-lane events are staged in per-lane outboxes and
//! exchanged at the window barrier as one **sorted boundary batch**,
//! merged on a single thread in `(dst lane, time, src lane, emission
//! order)` order before the next window opens.
//!
//! # Determinism contract
//!
//! The output of [`LaneKernel::run`] is a pure function of the engine
//! state handed to it and of the lane count — **never** of `threads`:
//!
//! * within a window, a lane touches only its own queue, sink, and
//!   outbox — there is no shared mutable state to race on;
//! * [`LaneCtx::send`] asserts every cross-lane event lands at or after
//!   the window boundary (`at >= window_end`), so no event a worker has
//!   not yet seen can influence the window it is currently processing;
//! * the boundary batch is drained in lane-index order and stably
//!   sorted by `(dst, time)` before insertion, so destination-queue
//!   sequence numbers — and therefore same-instant tie-breaks — are
//!   identical no matter which worker ran which lane;
//! * the window schedule itself (`w_k = k·window`) is computed from
//!   `k` by multiplication, never by accumulation, so every thread
//!   agrees on the exact boundary instants.
//!
//! A run with `threads = 1` executes the very same window/barrier
//! schedule on the calling thread; byte-identical output across
//! `--threads 1..N` is checked by tests at every layer above.
//!
//! The lane kernel does not support scenario timelines (a
//! [`Scenario`](crate::scenario::Scenario) intervenes on global state,
//! which has no lane-local meaning); engines keep scenarios on the
//! serial path.

use std::sync::{Barrier, Mutex};

use crate::event::EventQueue;
use crate::sim::{KernelEvent, KernelParams, SimCtx};
use crate::time::{SimDuration, SimTime};
use crate::trace::{NullSink, TraceRecord, TraceSink};

/// A cross-lane event staged in a lane's outbox until the next window
/// barrier.
#[derive(Debug)]
struct Boundary<E> {
    dst: u32,
    at: SimTime,
    event: E,
}

/// One lane: its own calendar queue, trace sink, and boundary outbox.
#[derive(Debug)]
struct LaneState<E, T: TraceSink> {
    queue: EventQueue<KernelEvent<E>>,
    sink: T,
    outbox: Vec<Boundary<E>>,
}

/// What an engine sees while handling an event inside a lane: the
/// familiar [`SimCtx`] surface for lane-local scheduling plus
/// [`LaneCtx::send`] for cross-lane traffic.
pub struct LaneCtx<'a, E, T: TraceSink> {
    inner: SimCtx<'a, E, T>,
    lane: u32,
    lane_count: u32,
    window_end: SimTime,
    outbox: &'a mut Vec<Boundary<E>>,
}

impl<'a, E, T: TraceSink> LaneCtx<'a, E, T> {
    /// The lane-local scheduling/trace surface — identical to what the
    /// serial kernel hands [`Simulation::handle`](crate::sim::Simulation::handle),
    /// so ported engines pass it straight to their existing handlers.
    pub fn inner(&mut self) -> &mut SimCtx<'a, E, T> {
        &mut self.inner
    }

    /// This lane's index.
    #[must_use]
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Total number of lanes in the run.
    #[must_use]
    pub fn lane_count(&self) -> u32 {
        self.lane_count
    }

    /// End of the current time window — the earliest instant a
    /// cross-lane event may land at.
    #[must_use]
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// True once `now` has passed the warm-up boundary.
    #[must_use]
    pub fn after_warmup(&self, now: SimTime) -> bool {
        self.inner.after_warmup(now)
    }

    /// Stages an event for another lane, delivered at absolute time
    /// `at` when the current window closes.
    ///
    /// # Panics
    ///
    /// Panics when `dst_lane` is this lane or out of range, or when
    /// `at` is earlier than the window boundary — the conservative
    /// lookahead invariant the whole determinism argument rests on.
    pub fn send(&mut self, dst_lane: u32, at: SimTime, event: E) {
        assert!(
            dst_lane != self.lane,
            "lane {dst_lane} sent a boundary event to itself; use schedule()"
        );
        assert!(
            dst_lane < self.lane_count,
            "boundary event for lane {dst_lane} of {}",
            self.lane_count
        );
        assert!(
            at >= self.window_end,
            "cross-lane event at {at} violates the lookahead window (ends {})",
            self.window_end
        );
        self.outbox.push(Boundary {
            dst: dst_lane,
            at,
            event,
        });
    }
}

/// An engine the lane kernel can drive: one instance per lane, handling
/// its lane's events through a [`LaneCtx`].
pub trait LaneSimulation<T: TraceSink> {
    /// The engine's event alphabet (shared by all lanes).
    type Event;

    /// Handles one popped event of this lane.
    fn handle(&mut self, now: SimTime, event: Self::Event, ctx: &mut LaneCtx<'_, Self::Event, T>);

    /// Called at each of this lane's sample ticks that falls after
    /// warm-up.
    fn sample(&mut self, _now: SimTime) {}

    /// Live peers of this lane, reported in [`TraceRecord::Sample`]
    /// ticks (queried only when tracing).
    fn live_peers(&self) -> u64 {
        0
    }
}

/// The lane-partitioned kernel: `n` lanes advancing in lockstep time
/// windows, executed by up to `threads` workers.
///
/// Construction order mirrors the serial kernel: create the kernel,
/// let each lane's engine schedule its initial events through
/// [`LaneKernel::ctx`], then call [`LaneKernel::run`] — the first
/// sample tick of every lane is scheduled at that point, after all
/// init events.
#[derive(Debug)]
pub struct LaneKernel<E, T: TraceSink = NullSink> {
    lanes: Vec<LaneState<E, T>>,
    params: KernelParams,
    window: SimDuration,
    started: bool,
}

impl<E, T: TraceSink> LaneKernel<E, T> {
    /// Creates a kernel with one empty lane per sink.
    ///
    /// `window` is the lookahead: the minimum latency of any cross-lane
    /// event the engines will [`LaneCtx::send`].
    ///
    /// # Panics
    ///
    /// Panics on an empty sink list or a non-positive window.
    #[must_use]
    pub fn new(params: KernelParams, window: SimDuration, sinks: Vec<T>) -> Self {
        assert!(!sinks.is_empty(), "lane kernel needs at least one lane");
        assert!(
            window.as_secs() > 0.0,
            "lookahead window must be positive, got {window}"
        );
        LaneKernel {
            lanes: sinks
                .into_iter()
                .map(|sink| LaneState {
                    queue: EventQueue::new(),
                    sink,
                    outbox: Vec::new(),
                })
                .collect(),
            params,
            window,
            started: false,
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The run parameters.
    #[must_use]
    pub fn params(&self) -> &KernelParams {
        &self.params
    }

    /// A context for init-time scheduling into one lane (before
    /// [`LaneKernel::run`]).
    pub fn ctx(&mut self, lane: usize) -> SimCtx<'_, E, T> {
        let state = &mut self.lanes[lane];
        SimCtx::from_parts(&mut state.queue, self.params.warmup_end, &mut state.sink)
    }

    /// Kernel events popped so far, summed over lanes.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.lanes.iter().map(|l| l.queue.events_processed()).sum()
    }

    /// Consumes the kernel, returning each lane's sink in lane order.
    #[must_use]
    pub fn into_sinks(self) -> Vec<T> {
        self.lanes.into_iter().map(|l| l.sink).collect()
    }

    /// Drives every lane to the horizon in lockstep windows, using up
    /// to `threads` worker threads (clamped to the lane count; `1`
    /// runs the same schedule on the calling thread). `sims[i]` is
    /// lane `i`'s engine. Output is independent of `threads`.
    ///
    /// # Panics
    ///
    /// Panics when `sims` does not have exactly one engine per lane.
    pub fn run<S>(&mut self, sims: &mut [S], threads: usize)
    where
        S: LaneSimulation<T, Event = E> + Send,
        E: Send,
        T: Send,
    {
        assert_eq!(sims.len(), self.lanes.len(), "one engine per lane required");
        if !self.started {
            self.started = true;
            if let Some(interval) = self.params.sample_interval {
                for state in &mut self.lanes {
                    state
                        .queue
                        .schedule(state.queue.now() + interval, KernelEvent::Sample);
                }
            }
        }
        let threads = threads.clamp(1, self.lanes.len());
        if threads == 1 {
            self.run_windows_serial(sims);
        } else {
            self.run_windows_threaded(sims, threads);
        }
    }

    /// Start instant of window `k`, computed by multiplication so every
    /// thread agrees on the exact boundary (no accumulation drift).
    fn window_start(&self, k: u64) -> SimTime {
        SimTime::ZERO + self.window * k as f64
    }

    /// The single-thread window loop: same window schedule, same merge,
    /// no synchronization.
    fn run_windows_serial<S>(&mut self, sims: &mut [S])
    where
        S: LaneSimulation<T, Event = E>,
    {
        let (lane_count, params, window) = (self.lanes.len() as u32, self.params, self.window);
        let mut batch: Vec<Boundary<E>> = Vec::new();
        let mut k = 0u64;
        loop {
            let w_start = self.window_start(k);
            if w_start > params.end {
                break;
            }
            let w_end = w_start + window;
            for (i, (state, sim)) in self.lanes.iter_mut().zip(sims.iter_mut()).enumerate() {
                process_window(i as u32, lane_count, state, sim, w_end, &params);
            }
            for state in &mut self.lanes {
                batch.append(&mut state.outbox);
            }
            merge_batch(&mut batch, &mut self.lanes);
            k += 1;
        }
    }

    /// The multi-thread window loop: persistent scoped workers, two
    /// barrier waits per window (lanes done; merge done), with the
    /// boundary merge on the main thread between them.
    fn run_windows_threaded<S>(&mut self, sims: &mut [S], threads: usize)
    where
        S: LaneSimulation<T, Event = E> + Send,
        E: Send,
        T: Send,
    {
        let lane_count = self.lanes.len() as u32;
        let params = self.params;
        let window = self.window;
        let window_start = |k: u64| SimTime::ZERO + window * k as f64;
        // One mutex per lane. Never contended: worker `w` locks only
        // lanes `w, w+threads, …` strictly inside a window, and the
        // main thread locks only between the two barriers, while every
        // worker is parked. The mutexes exist to move `&mut` access
        // across the scope boundary, not to arbitrate.
        let cells: Vec<Mutex<(&mut LaneState<E, T>, &mut S)>> = self
            .lanes
            .iter_mut()
            .zip(sims.iter_mut())
            .map(Mutex::new)
            .collect();
        let barrier = Barrier::new(threads + 1);
        std::thread::scope(|scope| {
            for w in 0..threads {
                let cells = &cells;
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut k = 0u64;
                    loop {
                        let w_start = window_start(k);
                        if w_start > params.end {
                            break;
                        }
                        let w_end = w_start + window;
                        for i in (w..cells.len()).step_by(threads) {
                            let mut cell = cells[i].lock().expect("lane mutex");
                            let inner = &mut *cell;
                            let (state, sim) = (&mut *inner.0, &mut *inner.1);
                            process_window(i as u32, lane_count, state, sim, w_end, &params);
                        }
                        barrier.wait(); // lanes of window k done
                        barrier.wait(); // main merged the boundary batch
                        k += 1;
                    }
                });
            }
            let mut batch: Vec<Boundary<E>> = Vec::new();
            let mut k = 0u64;
            loop {
                let w_start = window_start(k);
                if w_start > params.end {
                    break;
                }
                barrier.wait(); // workers finished window k
                for cell in &cells {
                    let mut c = cell.lock().expect("lane mutex");
                    batch.append(&mut c.0.outbox);
                }
                // Stable sort + per-destination insertion; identical to
                // the serial path except the destination queue is
                // reached through its (idle) mutex.
                batch.sort_by_key(|b| (b.dst, b.at));
                for b in batch.drain(..) {
                    let mut c = cells[b.dst as usize].lock().expect("lane mutex");
                    c.0.queue.schedule(b.at, KernelEvent::User(b.event));
                }
                barrier.wait(); // open window k + 1
                k += 1;
            }
        });
    }
}

/// Drains one lane's boundary batch (already concatenated in lane-index
/// order) into the destination queues in `(dst, time)` order. The sort
/// is stable, so same-instant ties keep `(src lane, emission order)` —
/// the sequence numbers the destination queue assigns are a pure
/// function of lane count.
fn merge_batch<E, T: TraceSink>(batch: &mut Vec<Boundary<E>>, lanes: &mut [LaneState<E, T>]) {
    batch.sort_by_key(|b| (b.dst, b.at));
    for b in batch.drain(..) {
        lanes[b.dst as usize]
            .queue
            .schedule(b.at, KernelEvent::User(b.event));
    }
}

/// Pops one lane's events with `t < w_end && t <= end`, dispatching
/// exactly like the serial kernel (user events to the engine, sample
/// ticks gated on warm-up and rescheduled). Events at or past the
/// window boundary stay queued for a later window.
fn process_window<E, T, S>(
    lane: u32,
    lane_count: u32,
    state: &mut LaneState<E, T>,
    sim: &mut S,
    w_end: SimTime,
    params: &KernelParams,
) where
    T: TraceSink,
    S: LaneSimulation<T, Event = E>,
{
    while let Some(t) = state.queue.peek_time() {
        if t >= w_end || t > params.end {
            break;
        }
        let (now, event) = state.queue.pop().expect("peeked event present");
        match event {
            KernelEvent::User(ev) => {
                let mut ctx = LaneCtx {
                    inner: SimCtx::from_parts(&mut state.queue, params.warmup_end, &mut state.sink),
                    lane,
                    lane_count,
                    window_end: w_end,
                    outbox: &mut state.outbox,
                };
                sim.handle(now, ev, &mut ctx);
            }
            KernelEvent::Sample => {
                if now >= params.warmup_end {
                    sim.sample(now);
                }
                if state.sink.enabled() {
                    state.sink.record(
                        now,
                        TraceRecord::Sample {
                            live: sim.live_peers(),
                        },
                    );
                }
                let interval = params
                    .sample_interval
                    .expect("sample tick only exists when sampling is on");
                state.queue.schedule(now + interval, KernelEvent::Sample);
            }
            KernelEvent::Control(generation) => {
                // The lane kernel never schedules control events;
                // scenarios stay on the serial path.
                debug_assert!(false, "control event {generation} popped by a lane run");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Kernel, Simulation};

    /// A counting engine that bounces an event to the next lane with a
    /// one-window latency, and self-schedules a local tick every 0.25s.
    struct Bouncer {
        handled: u64,
        remote: u64,
        sampled: u64,
        latency: SimDuration,
    }

    #[derive(Clone, Copy)]
    enum Ev {
        Local,
        Hop(u64),
    }

    impl<T: TraceSink> LaneSimulation<T> for Bouncer {
        type Event = Ev;

        fn handle(&mut self, now: SimTime, ev: Ev, ctx: &mut LaneCtx<'_, Ev, T>) {
            self.handled += 1;
            match ev {
                Ev::Local => {
                    ctx.inner()
                        .schedule(now + SimDuration::from_secs(0.25), Ev::Local);
                }
                Ev::Hop(n) => {
                    self.remote += n;
                    let dst = (ctx.lane() + 1) % ctx.lane_count();
                    if dst != ctx.lane() {
                        ctx.send(dst, now + self.latency, Ev::Hop(n + 1));
                    }
                }
            }
        }

        fn sample(&mut self, _now: SimTime) {
            self.sampled += 1;
        }
    }

    fn bouncers(n: usize, latency_secs: f64) -> Vec<Bouncer> {
        (0..n)
            .map(|_| Bouncer {
                handled: 0,
                remote: 0,
                sampled: 0,
                latency: SimDuration::from_secs(latency_secs),
            })
            .collect()
    }

    fn run_bounce(lanes: usize, threads: usize) -> Vec<(u64, u64, u64)> {
        let params = KernelParams::new(SimDuration::from_secs(20.0))
            .with_warmup(SimDuration::from_secs(5.0))
            .with_sampling(SimDuration::from_secs(1.0));
        let mut kernel =
            LaneKernel::new(params, SimDuration::from_secs(1.0), vec![NullSink; lanes]);
        for i in 0..lanes {
            kernel.ctx(i).schedule(SimTime::ZERO, Ev::Local);
        }
        kernel.ctx(0).schedule(SimTime::ZERO, Ev::Hop(1));
        let mut sims = bouncers(lanes, 1.0);
        kernel.run(&mut sims, threads);
        sims.iter()
            .map(|s| (s.handled, s.remote, s.sampled))
            .collect()
    }

    #[test]
    fn identical_across_thread_counts() {
        let baseline = run_bounce(4, 1);
        for threads in 2..=6 {
            assert_eq!(run_bounce(4, threads), baseline, "threads = {threads}");
        }
        // The hop crossed a lane boundary every simulated second.
        assert!(baseline.iter().map(|&(_, r, _)| r).sum::<u64>() > 0);
    }

    #[test]
    fn lane_count_changes_the_trajectory_threads_do_not() {
        assert_ne!(run_bounce(2, 1), run_bounce(4, 1));
        assert_eq!(run_bounce(2, 1), run_bounce(2, 8));
    }

    #[test]
    fn single_lane_matches_serial_kernel() {
        // The same engine driven by the serial kernel through a shim.
        struct Shim(Bouncer);
        impl<T: TraceSink> Simulation<T> for Shim {
            type Event = Ev;
            fn handle(&mut self, now: SimTime, ev: Ev, ctx: &mut SimCtx<'_, Ev, T>) {
                self.0.handled += 1;
                if let Ev::Local = ev {
                    ctx.schedule(now + SimDuration::from_secs(0.25), Ev::Local);
                }
            }
            fn sample(&mut self, _now: SimTime) {
                self.0.sampled += 1;
            }
        }

        let params = KernelParams::new(SimDuration::from_secs(10.0))
            .with_warmup(SimDuration::from_secs(2.0))
            .with_sampling(SimDuration::from_secs(1.0));

        let mut serial = Shim(bouncers(1, 1.0).pop().unwrap());
        let mut kernel = Kernel::new(params, NullSink);
        kernel.ctx().schedule(SimTime::ZERO, Ev::Local);
        kernel.run(&mut serial);

        let mut laned = bouncers(1, 1.0);
        let mut lk = LaneKernel::new(params, SimDuration::from_secs(1.0), vec![NullSink]);
        lk.ctx(0).schedule(SimTime::ZERO, Ev::Local);
        lk.run(&mut laned, 4);

        assert_eq!(serial.0.handled, laned[0].handled);
        assert_eq!(serial.0.sampled, laned[0].sampled);
    }

    #[test]
    fn events_processed_sums_lanes() {
        let params = KernelParams::new(SimDuration::from_secs(2.0));
        let mut kernel = LaneKernel::new(params, SimDuration::from_secs(1.0), vec![NullSink; 3]);
        for i in 0..3 {
            kernel.ctx(i).schedule(SimTime::ZERO, Ev::Local);
        }
        let mut sims = bouncers(3, 1.0);
        kernel.run(&mut sims, 2);
        // Each lane: local ticks at 0, 0.25, …, 2.0 = 9 events.
        assert_eq!(kernel.events_processed(), 27);
    }

    #[test]
    #[should_panic(expected = "violates the lookahead window")]
    fn early_cross_lane_send_panics() {
        struct Eager;
        impl<T: TraceSink> LaneSimulation<T> for Eager {
            type Event = ();
            fn handle(&mut self, now: SimTime, (): (), ctx: &mut LaneCtx<'_, (), T>) {
                // Latency below the window: the conservative invariant
                // must reject this at the send site.
                ctx.send(1, now + SimDuration::from_secs(0.1), ());
            }
        }
        let params = KernelParams::new(SimDuration::from_secs(5.0));
        let mut kernel = LaneKernel::new(params, SimDuration::from_secs(1.0), vec![NullSink; 2]);
        kernel.ctx(0).schedule(SimTime::ZERO, ());
        kernel.run(&mut [Eager, Eager], 1);
    }
}
