//! Exponential distribution (Poisson inter-arrival times).

use crate::dist::ContinuousDist;
use crate::rng::RngStream;

/// Exponential distribution with the given rate `lambda` (events/second).
///
/// Query-burst arrivals in the workload follow a Poisson process, so the
/// gaps between bursts are exponential.
///
/// # Examples
///
/// ```
/// use simkit::dist::{ContinuousDist, Exponential};
/// use simkit::rng::RngStream;
///
/// let gap = Exponential::new(0.5).unwrap(); // mean 2 seconds
/// let mut rng = RngStream::from_seed(1, "doc");
/// assert!(gap.sample(&mut rng) >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

/// Error constructing an [`Exponential`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRateError;

impl std::fmt::Display for InvalidRateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exponential rate must be finite and positive")
    }
}

impl std::error::Error for InvalidRateError {}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRateError`] unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Self, InvalidRateError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(InvalidRateError);
        }
        Ok(Exponential { lambda })
    }

    /// The rate parameter, in events per second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.lambda
    }
}

impl ContinuousDist for Exponential {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        // Inverse CDF; (1 - u) avoids ln(0).
        let u = rng.f64();
        -(1.0 - u).ln() / self.lambda
    }

    fn mean(&self) -> Option<f64> {
        Some(1.0 / self.lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_rates() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(1.0).is_ok());
    }

    #[test]
    fn sample_mean_approaches_analytic_mean() {
        let d = Exponential::new(0.25).unwrap();
        let mut rng = RngStream::from_seed(1, "e");
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
        assert_eq!(d.mean(), Some(4.0));
    }

    #[test]
    fn samples_are_non_negative() {
        let d = Exponential::new(2.0).unwrap();
        let mut rng = RngStream::from_seed(2, "e");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }
}
