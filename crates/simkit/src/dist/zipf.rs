//! Zipf (discrete power-law) distribution over ranks, via an alias table.

use crate::dist::{AliasTable, DiscreteDist};
use crate::rng::RngStream;

/// Zipf distribution over ranks `0..n`, where rank `r` has weight
/// `1 / (r + 1)^exponent`.
///
/// Item popularity in file-sharing catalogs is strongly Zipf-like; the
/// query model uses one `Zipf` for item replication and one for query
/// popularity.
///
/// # Examples
///
/// ```
/// use simkit::dist::{Zipf, DiscreteDist};
/// use simkit::rng::RngStream;
///
/// let z = Zipf::new(100, 1.0).unwrap();
/// let mut rng = RngStream::from_seed(1, "doc");
/// assert!(z.sample_index(&mut rng) < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    table: AliasTable,
    exponent: f64,
}

/// Error constructing a [`Zipf`] distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildZipfError {
    /// `n` was zero.
    Empty,
    /// The exponent was negative or non-finite.
    InvalidExponent,
}

impl std::fmt::Display for BuildZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildZipfError::Empty => write!(f, "zipf over zero ranks"),
            BuildZipfError::InvalidExponent => write!(f, "zipf exponent must be finite and >= 0"),
        }
    }
}

impl std::error::Error for BuildZipfError {}

impl Zipf {
    /// Builds a Zipf distribution over `n` ranks with the given exponent.
    ///
    /// An exponent of `0.0` degenerates to the uniform distribution.
    ///
    /// # Errors
    ///
    /// Returns [`BuildZipfError`] if `n == 0` or the exponent is negative
    /// or non-finite.
    pub fn new(n: usize, exponent: f64) -> Result<Self, BuildZipfError> {
        if n == 0 {
            return Err(BuildZipfError::Empty);
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(BuildZipfError::InvalidExponent);
        }
        let weights: Vec<f64> = (0..n)
            .map(|r| 1.0 / ((r + 1) as f64).powf(exponent))
            .collect();
        let table = AliasTable::new(&weights).expect("zipf weights are positive and finite");
        Ok(Zipf { table, exponent })
    }

    /// The skew exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The normalized probability of rank `r`, or `None` if out of range.
    #[must_use]
    pub fn probability(&self, r: usize) -> Option<f64> {
        if r >= self.len() {
            return None;
        }
        let h: f64 = (0..self.len())
            .map(|k| 1.0 / ((k + 1) as f64).powf(self.exponent))
            .sum();
        Some(1.0 / ((r + 1) as f64).powf(self.exponent) / h)
    }
}

impl DiscreteDist for Zipf {
    fn sample_index(&self, rng: &mut RngStream) -> usize {
        self.table.sample_index(rng)
    }

    fn len(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert_eq!(Zipf::new(0, 1.0).unwrap_err(), BuildZipfError::Empty);
        assert_eq!(
            Zipf::new(5, -1.0).unwrap_err(),
            BuildZipfError::InvalidExponent
        );
        assert_eq!(
            Zipf::new(5, f64::INFINITY).unwrap_err(),
            BuildZipfError::InvalidExponent
        );
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0).unwrap();
        let mut rng = RngStream::from_seed(1, "z");
        let mut rank0 = 0;
        let mut tail = 0; // ranks >= 500
        for _ in 0..50_000 {
            let r = z.sample_index(&mut rng);
            if r == 0 {
                rank0 += 1;
            }
            if r >= 500 {
                tail += 1;
            }
        }
        assert!(
            rank0 > tail,
            "head should outweigh the entire tail half: {rank0} vs {tail}"
        );
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        let mut rng = RngStream::from_seed(2, "z");
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample_index(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (8500..11500).contains(&c),
                "uniform bucket out of range: {c}"
            );
        }
    }

    #[test]
    fn probability_sums_to_one() {
        let z = Zipf::new(50, 0.8).unwrap();
        let total: f64 = (0..50).map(|r| z.probability(r).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.probability(50).is_none());
    }

    #[test]
    fn empirical_head_probability_matches_analytic() {
        let z = Zipf::new(100, 1.2).unwrap();
        let mut rng = RngStream::from_seed(3, "z");
        let n = 200_000;
        let hits = (0..n).filter(|_| z.sample_index(&mut rng) == 0).count();
        let expected = z.probability(0).unwrap();
        let observed = hits as f64 / n as f64;
        assert!(
            (observed - expected).abs() < 0.01,
            "observed {observed:.4} vs {expected:.4}"
        );
    }
}
