//! Bounded (truncated) Pareto distribution, used for shared-file counts.

use crate::dist::ContinuousDist;
use crate::rng::RngStream;

/// Pareto distribution truncated to `[lo, hi]` with shape `alpha`.
///
/// Matches the "most peers share few files, a handful share thousands"
/// shape of measured file-sharing populations while keeping a hard upper
/// bound so a single simulated peer cannot own the whole catalog.
///
/// # Examples
///
/// ```
/// use simkit::dist::{BoundedPareto, ContinuousDist};
/// use simkit::rng::RngStream;
///
/// let files = BoundedPareto::new(1.0, 10_000.0, 0.8).unwrap();
/// let mut rng = RngStream::from_seed(1, "doc");
/// let x = files.sample(&mut rng);
/// assert!((1.0..=10_000.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

/// Error constructing a [`BoundedPareto`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidParetoError;

impl std::fmt::Display for InvalidParetoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bounded pareto requires 0 < lo < hi and finite alpha > 0"
        )
    }
}

impl std::error::Error for InvalidParetoError {}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[lo, hi]` with tail index `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParetoError`] unless `0 < lo < hi` and `alpha` is
    /// finite and positive.
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Result<Self, InvalidParetoError> {
        let params_ok = lo.is_finite() && hi.is_finite() && alpha.is_finite();
        if !params_ok || lo <= 0.0 || hi <= lo || alpha <= 0.0 {
            return Err(InvalidParetoError);
        }
        Ok(BoundedPareto { lo, hi, alpha })
    }

    /// The lower bound of the support.
    #[must_use]
    pub fn lower(&self) -> f64 {
        self.lo
    }

    /// The upper bound of the support.
    #[must_use]
    pub fn upper(&self) -> f64 {
        self.hi
    }
}

impl ContinuousDist for BoundedPareto {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        // Inverse CDF of the truncated Pareto.
        let u = rng.f64();
        let la = self.lo.powf(-self.alpha);
        let ha = self.hi.powf(-self.alpha);
        (la - u * (la - ha)).powf(-1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(BoundedPareto::new(0.0, 10.0, 1.0).is_err());
        assert!(BoundedPareto::new(5.0, 5.0, 1.0).is_err());
        assert!(BoundedPareto::new(5.0, 2.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 10.0, 0.0).is_err());
        assert!(BoundedPareto::new(1.0, 10.0, f64::NAN).is_err());
        assert!(BoundedPareto::new(1.0, 10.0, 1.0).is_ok());
    }

    #[test]
    fn samples_stay_in_bounds() {
        let d = BoundedPareto::new(2.0, 50.0, 1.2).unwrap();
        let mut rng = RngStream::from_seed(1, "p");
        for _ in 0..20_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=50.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn distribution_is_right_skewed() {
        let d = BoundedPareto::new(1.0, 10_000.0, 1.0).unwrap();
        let mut rng = RngStream::from_seed(2, "p");
        let n = 50_000;
        let below10 = (0..n).filter(|_| d.sample(&mut rng) < 10.0).count();
        // With alpha=1 on [1, 1e4], P(X < 10) = (1 - 1/10)/(1 - 1e-4) ≈ 0.9.
        let frac = below10 as f64 / n as f64;
        assert!((0.88..0.92).contains(&frac), "P(X<10) = {frac}");
    }
}
