//! Empirical distribution: resample i.i.d. from a fixed sample, exactly the
//! way the paper resamples its measured Gnutella session-length trace.

use crate::dist::ContinuousDist;
use crate::rng::RngStream;

/// A distribution defined by a finite sample; draws return uniformly random
/// elements of the sample (bootstrap resampling).
///
/// # Examples
///
/// ```
/// use simkit::dist::{ContinuousDist, EmpiricalDist};
/// use simkit::rng::RngStream;
///
/// let d = EmpiricalDist::from_sample(vec![1.0, 2.0, 3.0]).unwrap();
/// let mut rng = RngStream::from_seed(1, "doc");
/// assert!([1.0, 2.0, 3.0].contains(&d.sample(&mut rng)));
/// ```
#[derive(Debug, Clone)]
pub struct EmpiricalDist {
    sample: Vec<f64>,
    sorted: Vec<f64>,
}

/// Error constructing an [`EmpiricalDist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildEmpiricalError {
    /// The sample was empty.
    Empty,
    /// The sample contained a NaN or infinite value.
    NonFinite,
}

impl std::fmt::Display for BuildEmpiricalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildEmpiricalError::Empty => write!(f, "empirical sample is empty"),
            BuildEmpiricalError::NonFinite => {
                write!(f, "empirical sample contains non-finite values")
            }
        }
    }
}

impl std::error::Error for BuildEmpiricalError {}

impl EmpiricalDist {
    /// Builds the distribution from a raw sample.
    ///
    /// # Errors
    ///
    /// Returns [`BuildEmpiricalError`] if the sample is empty or contains
    /// non-finite values.
    pub fn from_sample(sample: Vec<f64>) -> Result<Self, BuildEmpiricalError> {
        if sample.is_empty() {
            return Err(BuildEmpiricalError::Empty);
        }
        if sample.iter().any(|x| !x.is_finite()) {
            return Err(BuildEmpiricalError::NonFinite);
        }
        let mut sorted = sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Ok(EmpiricalDist { sample, sorted })
    }

    /// Number of observations in the underlying sample.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// Returns true if the sample is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// The `q`-quantile of the sample (`q` clamped to `[0,1]`), by the
    /// nearest-rank method.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// The sample median.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Returns a new distribution with every observation multiplied by
    /// `factor` — this is exactly the paper's `LifespanMultiplier`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is non-finite or negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> EmpiricalDist {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and >= 0"
        );
        EmpiricalDist {
            sample: self.sample.iter().map(|x| x * factor).collect(),
            sorted: self.sorted.iter().map(|x| x * factor).collect(),
        }
    }
}

impl ContinuousDist for EmpiricalDist {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        self.sample[rng.below(self.sample.len())]
    }

    fn mean(&self) -> Option<f64> {
        Some(self.sample.iter().sum::<f64>() / self.sample.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_samples() {
        assert_eq!(
            EmpiricalDist::from_sample(vec![]).unwrap_err(),
            BuildEmpiricalError::Empty
        );
        assert_eq!(
            EmpiricalDist::from_sample(vec![1.0, f64::NAN]).unwrap_err(),
            BuildEmpiricalError::NonFinite
        );
    }

    #[test]
    fn draws_come_from_sample() {
        let d = EmpiricalDist::from_sample(vec![5.0, 6.0, 7.0]).unwrap();
        let mut rng = RngStream::from_seed(1, "em");
        for _ in 0..1000 {
            assert!([5.0, 6.0, 7.0].contains(&d.sample(&mut rng)));
        }
    }

    #[test]
    fn quantiles_and_median() {
        let d = EmpiricalDist::from_sample((1..=100).map(f64::from).collect()).unwrap();
        assert_eq!(d.median(), 50.0);
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 100.0);
        assert_eq!(d.quantile(0.9), 90.0);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let d = EmpiricalDist::from_sample(vec![10.0, 20.0]).unwrap();
        let s = d.scaled(0.2);
        assert_eq!(s.median(), 2.0);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn mean_is_sample_mean() {
        let d = EmpiricalDist::from_sample(vec![2.0, 4.0, 6.0]).unwrap();
        assert_eq!(d.mean(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_negative() {
        let d = EmpiricalDist::from_sample(vec![1.0]).unwrap();
        let _ = d.scaled(-1.0);
    }
}
