//! Probability distributions used by the workload models.
//!
//! All samplers draw from an [`RngStream`] so that
//! simulations remain deterministic under a fixed seed.
//!
//! [`RngStream`]: crate::RngStream

mod alias;
mod empirical;
mod exponential;
mod lognormal;
mod pareto;
mod zipf;

pub use alias::{AliasTable, BuildAliasError};
pub use empirical::{BuildEmpiricalError, EmpiricalDist};
pub use exponential::{Exponential, InvalidRateError};
pub use lognormal::{InvalidLogNormalError, LogNormal};
pub use pareto::{BoundedPareto, InvalidParetoError};
pub use zipf::{BuildZipfError, Zipf};

use crate::rng::RngStream;

/// A continuous distribution over non-negative reals.
pub trait ContinuousDist {
    /// Draws one sample.
    fn sample(&self, rng: &mut RngStream) -> f64;

    /// The analytical mean, if finite and known.
    fn mean(&self) -> Option<f64> {
        None
    }
}

/// A discrete distribution over `0..len()`.
pub trait DiscreteDist {
    /// Draws one index.
    fn sample_index(&self, rng: &mut RngStream) -> usize;

    /// Number of categories.
    fn len(&self) -> usize;

    /// Returns true if there are no categories.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
