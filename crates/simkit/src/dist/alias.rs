//! Walker's alias method for O(1) sampling from a discrete distribution.

use crate::dist::DiscreteDist;
use crate::rng::RngStream;

/// A precomputed alias table over weighted categories.
///
/// Construction is O(n); each sample is O(1). This is the workhorse behind
/// the Zipf catalog samplers, which are consulted on every simulated probe.
///
/// # Examples
///
/// ```
/// use simkit::dist::{AliasTable, DiscreteDist};
/// use simkit::rng::RngStream;
///
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = RngStream::from_seed(1, "doc");
/// let hits = (0..10_000).filter(|_| table.sample_index(&mut rng) == 1).count();
/// assert!((7000..8000).contains(&hits)); // ~75% of mass on index 1
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

/// Error building an [`AliasTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildAliasError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
    },
    /// All weights were zero.
    ZeroMass,
}

impl std::fmt::Display for BuildAliasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildAliasError::Empty => write!(f, "no categories provided"),
            BuildAliasError::InvalidWeight { index } => {
                write!(f, "weight at index {index} is negative or non-finite")
            }
            BuildAliasError::ZeroMass => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for BuildAliasError {}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Errors
    ///
    /// Returns [`BuildAliasError`] if `weights` is empty, contains a
    /// negative or non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, BuildAliasError> {
        if weights.is_empty() {
            return Err(BuildAliasError::Empty);
        }
        for (index, &w) in weights.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(BuildAliasError::InvalidWeight { index });
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(BuildAliasError::ZeroMass);
        }

        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        // Scaled probabilities: mean 1.0.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains is (numerically) exactly 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Ok(AliasTable { prob, alias })
    }
}

impl DiscreteDist for AliasTable {
    fn sample_index(&self, rng: &mut RngStream) -> usize {
        let n = self.prob.len();
        let i = rng.below(n);
        if rng.f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }

    fn len(&self) -> usize {
        self.prob.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(AliasTable::new(&[]).unwrap_err(), BuildAliasError::Empty);
        assert_eq!(
            AliasTable::new(&[1.0, -2.0]).unwrap_err(),
            BuildAliasError::InvalidWeight { index: 1 }
        );
        assert_eq!(
            AliasTable::new(&[0.0, f64::NAN]).unwrap_err(),
            BuildAliasError::InvalidWeight { index: 1 }
        );
        assert_eq!(
            AliasTable::new(&[0.0, 0.0]).unwrap_err(),
            BuildAliasError::ZeroMass
        );
    }

    #[test]
    fn single_category_always_sampled() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = RngStream::from_seed(1, "t");
        for _ in 0..100 {
            assert_eq!(t.sample_index(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_category_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = RngStream::from_seed(2, "t");
        for _ in 0..10_000 {
            assert_ne!(t.sample_index(&mut rng), 1);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = RngStream::from_seed(3, "t");
        let mut counts = [0u32; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[t.sample_index(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / total;
            let observed = f64::from(counts[i]) / f64::from(n);
            assert!(
                (observed - expected).abs() < 0.01,
                "category {i}: observed {observed:.4}, expected {expected:.4}"
            );
        }
    }

    #[test]
    fn len_reports_categories() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
