//! Log-normal distribution, used for heavy-tailed session lengths.

use crate::dist::ContinuousDist;
use crate::rng::RngStream;

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
///
/// Measured P2P session lengths are strongly right-skewed; the synthetic
/// lifetime sample is a mixture of log-normals.
///
/// # Examples
///
/// ```
/// use simkit::dist::{ContinuousDist, LogNormal};
/// use simkit::rng::RngStream;
///
/// // median = e^7 ≈ 1096 seconds
/// let d = LogNormal::new(7.0, 1.5).unwrap();
/// let mut rng = RngStream::from_seed(1, "doc");
/// assert!(d.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

/// Error constructing a [`LogNormal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLogNormalError;

impl std::fmt::Display for InvalidLogNormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "log-normal parameters must be finite with sigma > 0")
    }
}

impl std::error::Error for InvalidLogNormalError {}

impl LogNormal {
    /// Creates a log-normal with log-space mean `mu` and log-space standard
    /// deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLogNormalError`] unless both parameters are finite
    /// and `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, InvalidLogNormalError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
            return Err(InvalidLogNormalError);
        }
        Ok(LogNormal { mu, sigma })
    }

    /// The distribution's median, `exp(mu)`.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws a standard normal via Box–Muller.
    fn standard_normal(rng: &mut RngStream) -> f64 {
        let u1 = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl ContinuousDist for LogNormal {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }

    fn mean(&self) -> Option<f64> {
        Some((self.mu + self.sigma * self.sigma / 2.0).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_params() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(1.0, 0.0).is_err());
        assert!(LogNormal::new(1.0, -2.0).is_err());
        assert!(LogNormal::new(0.0, 1.0).is_ok());
    }

    #[test]
    fn samples_positive() {
        let d = LogNormal::new(2.0, 1.0).unwrap();
        let mut rng = RngStream::from_seed(1, "ln");
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn empirical_median_near_exp_mu() {
        let d = LogNormal::new(3.0, 0.8).unwrap();
        let mut rng = RngStream::from_seed(2, "ln");
        let mut v: Vec<f64> = (0..50_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        let expected = d.median();
        assert!(
            (median / expected - 1.0).abs() < 0.05,
            "median {median:.2} vs expected {expected:.2}"
        );
    }

    #[test]
    fn empirical_mean_near_analytic() {
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut rng = RngStream::from_seed(3, "ln");
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / f64::from(n);
        let analytic = d.mean().unwrap();
        assert!(
            (mean / analytic - 1.0).abs() < 0.03,
            "mean {mean:.3} vs {analytic:.3}"
        );
    }
}
