//! Time-stamped metric series for periodic simulation snapshots.

use crate::time::SimTime;

/// A series of `(time, value)` observations, appended in time order.
///
/// Used for connectivity and cache-health snapshots taken at sampling
/// events during a run.
///
/// # Examples
///
/// ```
/// use simkit::stats::TimeSeries;
/// use simkit::time::SimTime;
///
/// let mut ts = TimeSeries::new("live_entries");
/// ts.record(SimTime::from_secs(10.0), 42.0);
/// assert_eq!(ts.last(), Some((SimTime::from_secs(10.0), 42.0)));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with a display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series' display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the last recorded point — snapshots
    /// must arrive in time order.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "time series must be appended in time order");
        }
        self.points.push((at, value));
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns true if the series has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent point.
    #[must_use]
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Iterates over all points in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Mean of the values observed at or after `from` — used to average a
    /// steady-state window while discarding warm-up.
    #[must_use]
    pub fn mean_since(&self, from: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= from {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(1.0), 10.0);
        ts.record(t(2.0), 20.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.last(), Some((t(2.0), 20.0)));
        assert_eq!(ts.name(), "x");
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_out_of_order() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(5.0), 1.0);
        ts.record(t(4.0), 2.0);
    }

    #[test]
    fn mean_since_discards_warmup() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(0.0), 100.0); // warm-up artifact
        ts.record(t(10.0), 2.0);
        ts.record(t(20.0), 4.0);
        assert_eq!(ts.mean_since(t(5.0)), Some(3.0));
        assert_eq!(ts.mean_since(t(25.0)), None);
        assert_eq!(ts.mean_since(t(0.0)), Some(106.0 / 3.0));
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new("e");
        assert!(ts.is_empty());
        assert!(ts.last().is_none());
        assert!(ts.mean_since(t(0.0)).is_none());
    }
}
