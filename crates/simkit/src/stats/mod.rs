//! Online statistics used by the experiment harness.

mod counter;
mod histogram;
mod summary;
mod timeseries;

pub use counter::CounterSet;
pub use histogram::Histogram;
pub use summary::Summary;
pub use timeseries::TimeSeries;
