//! Named monotone counters.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named `u64` counters, suitable for tallying simulation events
/// (probes sent, probes refused, queries satisfied, …).
///
/// Backed by a `BTreeMap` so iteration — and therefore any printed report —
/// is deterministic.
///
/// # Examples
///
/// ```
/// use simkit::stats::CounterSet;
///
/// let mut c = CounterSet::new();
/// c.add("probes", 3);
/// c.incr("probes");
/// assert_eq!(c.get("probes"), 4);
/// assert_eq!(c.get("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSet {
    counts: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    #[must_use]
    pub fn new() -> Self {
        CounterSet {
            counts: BTreeMap::new(),
        }
    }

    /// Adds `n` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counts.entry(name).or_insert(0) += n;
    }

    /// Increments the counter `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name`; zero if never touched.
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "(no counters)");
        }
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = CounterSet::new();
        c.incr("a");
        c.add("a", 2);
        c.add("b", 10);
        assert_eq!(c.get("a"), 3);
        assert_eq!(c.get("b"), 10);
        assert_eq!(c.get("absent"), 0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = CounterSet::new();
        a.add("x", 1);
        let mut b = CounterSet::new();
        b.add("x", 2);
        b.add("y", 5);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 5);
    }

    #[test]
    fn display_is_deterministic() {
        let mut c = CounterSet::new();
        c.add("zeta", 1);
        c.add("alpha", 2);
        assert_eq!(c.to_string(), "alpha=2 zeta=1");
        assert_eq!(CounterSet::new().to_string(), "(no counters)");
    }

    #[test]
    fn iter_is_name_ordered() {
        let mut c = CounterSet::new();
        c.add("b", 1);
        c.add("a", 1);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
