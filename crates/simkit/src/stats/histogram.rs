//! A simple fixed-width histogram with exact-percentile support.

/// Collects `f64` observations and answers quantile queries exactly by
/// keeping all samples (the experiment scales here are small enough that
/// exactness beats sketching).
///
/// # Examples
///
/// ```
/// use simkit::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for x in 1..=100 {
///     h.record(x as f64);
/// }
/// assert_eq!(h.percentile(50.0), Some(50.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `x` is not finite.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Histogram::record({x})");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns true if no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (`0 <= p <= 100`) by nearest rank, or `None`
    /// when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples.len() as f64).ceil() as usize;
        Some(self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)])
    }

    /// Mean of the recorded observations; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Buckets the observations into `bins` equal-width bins spanning
    /// `[min, max]`; returns `(bin_lower_edge, count)` pairs.
    ///
    /// Returns an empty vector when there are no samples or `bins == 0`.
    pub fn binned(&mut self, bins: usize) -> Vec<(f64, usize)> {
        if self.samples.is_empty() || bins == 0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        let width = if hi > lo {
            (hi - lo) / bins as f64
        } else {
            1.0
        };
        let mut out: Vec<(f64, usize)> = (0..bins).map(|i| (lo + width * i as f64, 0)).collect();
        for &x in &self.samples {
            let mut idx = ((x - lo) / width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            out[idx].1 += 1;
        }
        out
    }

    /// Absorbs another histogram's observations. Quantiles afterwards
    /// equal those of recording both sample streams into one histogram
    /// (order is irrelevant: queries sort first).
    pub fn merge(&mut self, other: &Histogram) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }

    /// Consumes the histogram and returns the raw samples in sorted order.
    #[must_use]
    pub fn into_sorted_samples(mut self) -> Vec<f64> {
        self.ensure_sorted();
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.binned(4).is_empty());
    }

    #[test]
    fn percentiles_exact() {
        let mut h = Histogram::new();
        for x in 1..=10 {
            h.record(f64::from(x));
        }
        assert_eq!(h.percentile(10.0), Some(1.0));
        assert_eq!(h.percentile(50.0), Some(5.0));
        assert_eq!(h.percentile(100.0), Some(10.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
    }

    #[test]
    fn binning_covers_all_samples() {
        let mut h = Histogram::new();
        for x in 0..100 {
            h.record(f64::from(x));
        }
        let bins = h.binned(10);
        assert_eq!(bins.len(), 10);
        assert_eq!(bins.iter().map(|(_, c)| c).sum::<usize>(), 100);
        assert_eq!(bins[0].1, 10);
    }

    #[test]
    fn constant_samples_bin_safely() {
        let mut h = Histogram::new();
        for _ in 0..5 {
            h.record(7.0);
        }
        let bins = h.binned(3);
        assert_eq!(bins.iter().map(|(_, c)| c).sum::<usize>(), 5);
    }

    #[test]
    fn into_sorted_samples_sorts() {
        let mut h = Histogram::new();
        h.record(3.0);
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.into_sorted_samples(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut all = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for x in 0..50 {
            all.record(f64::from(x));
            left.record(f64::from(x));
        }
        for x in 50..100 {
            all.record(f64::from(x));
            right.record(f64::from(x));
        }
        left.merge(&right);
        left.merge(&Histogram::new());
        assert_eq!(left.count(), all.count());
        for p in [0.0, 25.0, 50.0, 95.0, 100.0] {
            assert_eq!(left.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn mean_is_correct() {
        let mut h = Histogram::new();
        h.record(2.0);
        h.record(6.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.count(), 2);
    }
}
