//! Running summary statistics (Welford's online algorithm).

use std::fmt;

/// Accumulates count, mean, variance, min and max in O(1) memory.
///
/// # Examples
///
/// ```
/// use simkit::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `x` is not finite.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Summary::record({x})");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Population variance; `0.0` with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
                self.count,
                self.mean(),
                self.std_dev(),
                self.min,
                self.max
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn mean_and_variance_match_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = Summary::new();
        for &x in &data {
            s.record(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0];
        let mut a = Summary::new();
        let mut b = Summary::new();
        let mut whole = Summary::new();
        for &x in &a_data {
            a.record(x);
            whole.record(x);
        }
        for &x in &b_data {
            b.record(x);
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }
}
