//! The shared simulation kernel.
//!
//! Every discrete-event engine in the workspace used to hand-roll the
//! same four pieces on top of [`EventQueue`]: the pop-dispatch loop with
//! an end-of-run guard, churn (sample a lifetime, schedule a death,
//! spawn a replacement), warm-up gating, and periodic metric sampling.
//! This module owns all four:
//!
//! * [`Simulation`] — the engine-side trait: an event type plus a
//!   `handle` method that receives each popped event and a [`SimCtx`]
//!   for scheduling follow-ups and emitting trace records;
//! * [`Kernel`] — the driver that owns the queue, the clock horizon,
//!   the warm-up boundary, and the periodic sample tick;
//! * [`ChurnDriver`] — reusable lifetime-sampling/death-scheduling for
//!   constant-population churn, generic over any [`Lifetimes`] model;
//! * the trace layer ([`crate::trace`]) threaded through [`SimCtx`], so
//!   every engine gets structured observability without touching its
//!   hot path (the default [`NullSink`] monomorphizes to nothing).
//!
//! The kernel preserves the workspace's determinism contract: it draws
//! no randomness of its own, schedules in a fixed order (engine init
//! first, then the first sample tick), and inherits the event queue's
//! no-time-travel invariant — scheduling into the past panics.
//!
//! # Example: a counting engine on the kernel
//!
//! ```
//! use simkit::sim::{Kernel, KernelParams, SimCtx, Simulation};
//! use simkit::time::{SimDuration, SimTime};
//! use simkit::trace::{NullSink, TraceSink};
//!
//! struct Ticker {
//!     ticks: u32,
//! }
//!
//! impl<T: TraceSink> Simulation<T> for Ticker {
//!     type Event = ();
//!     fn handle(&mut self, now: SimTime, _ev: (), ctx: &mut SimCtx<'_, (), T>) {
//!         self.ticks += 1;
//!         ctx.schedule(now + SimDuration::from_secs(1.0), ());
//!     }
//! }
//!
//! let params = KernelParams::new(SimDuration::from_secs(10.0));
//! let mut kernel = Kernel::new(params, NullSink);
//! kernel.ctx().schedule(SimTime::ZERO, ());
//! let mut sim = Ticker { ticks: 0 };
//! kernel.run(&mut sim);
//! assert_eq!(sim.ticks, 11); // t = 0, 1, …, 10
//! ```

use crate::event::{EventHandle, EventQueue};
use crate::rng::RngStream;
use crate::scenario::{Intervenable, Scenario, ScenarioError};
use crate::time::{SimDuration, SimTime};
use crate::trace::{NullSink, ProbeKind, ProbeOutcome, TraceRecord, TraceSink};

/// The unified run surface every engine exposes.
///
/// The three simulators (GUESS, Gnutella, gossip) construct differently
/// — each has its own validated config — but once built they all run
/// the same way: consume `self`, drive the kernel to the horizon, and
/// return the engine's aggregate report. This trait pins that shape so
/// driver code (`repro`, the bench harness, cross-engine tests) can
/// dispatch engines generically instead of tracking per-engine method
/// names.
///
/// `run_traced` is the required method; `run` is the untraced
/// convenience that every engine gets for free (a [`NullSink`]
/// monomorphizes the traced body down to the bare loop).
pub trait Runnable: Sized {
    /// Aggregated results of a completed run.
    type Report;

    /// Runs to completion with a caller-provided trace sink, returning
    /// both the report and the sink for inspection.
    fn run_traced<T: TraceSink>(self, sink: T) -> (Self::Report, T);

    /// Runs to completion untraced.
    #[must_use]
    fn run(self) -> Self::Report {
        self.run_traced(NullSink).0
    }

    /// Runs to completion under a [`Scenario`] timeline with a
    /// caller-provided trace sink. The empty scenario is guaranteed
    /// byte-identical to [`Runnable::run_traced`].
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when an intervention names a knob the
    /// engine does not have, fails config re-validation, or carries a
    /// malformed partition spec.
    fn run_scenario_traced<T: TraceSink>(
        self,
        scenario: &Scenario,
        sink: T,
    ) -> Result<(Self::Report, T), ScenarioError>;

    /// Runs to completion under a [`Scenario`] timeline, untraced.
    ///
    /// # Errors
    ///
    /// As [`Runnable::run_scenario_traced`].
    fn run_scenario(self, scenario: &Scenario) -> Result<Self::Report, ScenarioError> {
        Ok(self.run_scenario_traced(scenario, NullSink)?.0)
    }
}

/// What every engine report can tell the harness about the run itself,
/// independent of the engine's domain metrics.
pub trait SimReport {
    /// Kernel events processed over the whole run (warm-up included) —
    /// the throughput denominator of `repro bench`.
    fn events_processed(&self) -> u64;
}

/// A peer-lifetime distribution, as the kernel's churn driver sees it.
///
/// The concrete models live in the `workload` crate (which depends on
/// `simkit`, not the other way around); they implement this hook so
/// [`ChurnDriver`] can sample them without a dependency cycle.
pub trait Lifetimes {
    /// Draws one session length from the model.
    fn sample_lifetime(&self, rng: &mut RngStream) -> SimDuration;
}

impl<L: Lifetimes + ?Sized> Lifetimes for &L {
    fn sample_lifetime(&self, rng: &mut RngStream) -> SimDuration {
        (**self).sample_lifetime(rng)
    }
}

/// Reusable constant-population churn: sample a lifetime from the
/// model, schedule the peer's death event, and trace the join.
///
/// Engines call [`ChurnDriver::spawn`] once per peer instance — at
/// initial population and again for every replacement born on a death
/// — instead of hand-rolling the draw-and-schedule pair. The RNG is
/// passed in at the call site so the engine's established stream and
/// draw order stay exactly as they were (byte-identical runs).
#[derive(Debug, Clone)]
pub struct ChurnDriver<L> {
    lifetimes: L,
}

impl<L: Lifetimes> ChurnDriver<L> {
    /// Wraps a lifetime model.
    #[must_use]
    pub fn new(lifetimes: L) -> Self {
        ChurnDriver { lifetimes }
    }

    /// Borrows the underlying lifetime model.
    #[must_use]
    pub fn lifetimes(&self) -> &L {
        &self.lifetimes
    }

    /// Registers a newborn peer: draws its lifetime from the model
    /// (one draw from `rng`, at this exact point in the stream),
    /// schedules `death` at `now + lifetime`, and emits a
    /// [`TraceRecord::PeerJoin`]. Returns the death event's handle.
    pub fn spawn<E, T: TraceSink>(
        &self,
        ctx: &mut SimCtx<'_, E, T>,
        rng: &mut RngStream,
        now: SimTime,
        peer: u64,
        death: E,
    ) -> EventHandle {
        let life = self.lifetimes.sample_lifetime(rng);
        if ctx.tracing() {
            ctx.emit(now, TraceRecord::PeerJoin { peer });
        }
        ctx.schedule(now + life, death)
    }

    /// Records the (traced) death of a peer instance. The engine calls
    /// this from its death handler before spawning the replacement.
    pub fn died<E, T: TraceSink>(&self, ctx: &mut SimCtx<'_, E, T>, now: SimTime, peer: u64) {
        if ctx.tracing() {
            ctx.emit(now, TraceRecord::PeerDeath { peer });
        }
    }
}

/// The kernel's own event wrapper: engine events, the periodic sample
/// tick the kernel drives itself, and scenario control events. A
/// control event carries the generation stamp of its compiled timeline
/// entry ([`Scenario::compile`]); plain [`Kernel::run`] never schedules
/// one. Crate-visible so the lane-partitioned kernel
/// ([`crate::lanes`]) can drive per-lane queues of the same alphabet.
#[derive(Debug, Clone, Copy)]
pub(crate) enum KernelEvent<E> {
    User(E),
    Sample,
    Control(u32),
}

/// Clock horizon, warm-up boundary, and sampling cadence of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelParams {
    /// Events after this instant are not processed.
    pub end: SimTime,
    /// Instant at which measurement starts ([`SimCtx::after_warmup`],
    /// [`Simulation::sample`] gating). `SimTime::ZERO` disables
    /// warm-up exclusion.
    pub warmup_end: SimTime,
    /// Cadence of the kernel-driven sample tick; `None` disables
    /// sampling entirely (no tick events are ever scheduled).
    pub sample_interval: Option<SimDuration>,
}

impl KernelParams {
    /// Params for a run of `duration` with no warm-up and no sampling.
    #[must_use]
    pub fn new(duration: SimDuration) -> Self {
        KernelParams {
            end: SimTime::ZERO + duration,
            warmup_end: SimTime::ZERO,
            sample_interval: None,
        }
    }

    /// Sets the warm-up span (measured from the start of the run).
    #[must_use]
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup_end = SimTime::ZERO + warmup;
        self
    }

    /// Enables the periodic sample tick.
    #[must_use]
    pub fn with_sampling(mut self, interval: SimDuration) -> Self {
        self.sample_interval = Some(interval);
        self
    }
}

/// What the engine sees while handling an event: the scheduler, the
/// warm-up boundary, and the trace sink.
pub struct SimCtx<'a, E, T: TraceSink> {
    queue: &'a mut EventQueue<KernelEvent<E>>,
    warmup_end: SimTime,
    sink: &'a mut T,
}

impl<'a, E, T: TraceSink> SimCtx<'a, E, T> {
    /// Assembles a context over a caller-owned queue — how the
    /// lane-partitioned kernel ([`crate::lanes`]) hands each lane the
    /// same engine-facing surface the serial kernel builds internally.
    pub(crate) fn from_parts(
        queue: &'a mut EventQueue<KernelEvent<E>>,
        warmup_end: SimTime,
        sink: &'a mut T,
    ) -> Self {
        SimCtx {
            queue,
            warmup_end,
            sink,
        }
    }

    /// Schedules an engine event at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock (the queue's
    /// no-time-travel invariant).
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventHandle {
        self.queue.schedule(at, KernelEvent::User(event))
    }

    /// Cancels a previously scheduled engine event.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// The current simulation instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// True once `now` has passed the warm-up boundary — the gate for
    /// recording query metrics.
    #[must_use]
    pub fn after_warmup(&self, now: SimTime) -> bool {
        now >= self.warmup_end
    }

    /// True when the trace sink wants records. Emission sites guard
    /// record construction behind this so the [`NullSink`] path costs
    /// nothing.
    #[inline]
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.sink.enabled()
    }

    /// Emits one trace record (a no-op for disabled sinks).
    #[inline]
    pub fn emit(&mut self, at: SimTime, rec: TraceRecord) {
        if self.sink.enabled() {
            self.sink.record(at, rec);
        }
    }

    /// Emits one [`TraceRecord::Probe`] per `(target, outcome)` pair —
    /// all on behalf of the same query, kind, and instant. Engines that
    /// process whole message batches per event (e.g. a flood hop) stage
    /// the pairs in a reusable scratch buffer and hand them over in one
    /// call instead of constructing records per message. A no-op for
    /// disabled sinks.
    #[inline]
    pub fn emit_probes(
        &mut self,
        at: SimTime,
        query: u64,
        kind: ProbeKind,
        probes: &[(u64, ProbeOutcome)],
    ) {
        if self.sink.enabled() {
            self.sink.record_probes(at, query, kind, probes);
        }
    }
}

/// An engine the kernel can drive, generic over the trace sink so the
/// disabled path monomorphizes away.
pub trait Simulation<T: TraceSink> {
    /// The engine's event alphabet.
    type Event;

    /// Handles one popped event. All follow-up scheduling and trace
    /// emission goes through `ctx`.
    fn handle(&mut self, now: SimTime, event: Self::Event, ctx: &mut SimCtx<'_, Self::Event, T>);

    /// Called at each kernel sample tick that falls after warm-up.
    /// Engines take their periodic metric snapshots here; the default
    /// does nothing.
    fn sample(&mut self, _now: SimTime) {}

    /// Number of currently live peers, reported in the kernel's
    /// [`TraceRecord::Sample`] ticks (queried only when tracing).
    fn live_peers(&self) -> u64 {
        0
    }
}

/// The kernel-owned event-loop driver.
///
/// Construction order matters for byte-identical replays: create the
/// kernel, let the engine schedule its initial events through
/// [`Kernel::ctx`], then call [`Kernel::run`] — `run` schedules the
/// first sample tick (if sampling is on) before popping anything, so
/// the tick's sequence number lands after all engine init events,
/// exactly where the ported engines used to put it.
#[derive(Debug)]
pub struct Kernel<E, T: TraceSink = NullSink> {
    queue: EventQueue<KernelEvent<E>>,
    params: KernelParams,
    sink: T,
    started: bool,
}

impl<E, T: TraceSink> Kernel<E, T> {
    /// Creates a kernel with an empty queue.
    #[must_use]
    pub fn new(params: KernelParams, sink: T) -> Self {
        Kernel {
            queue: EventQueue::new(),
            params,
            sink,
            started: false,
        }
    }

    /// The run parameters.
    #[must_use]
    pub fn params(&self) -> &KernelParams {
        &self.params
    }

    /// Events popped so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.queue.events_processed()
    }

    /// A context for init-time scheduling (before [`Kernel::run`]).
    pub fn ctx(&mut self) -> SimCtx<'_, E, T> {
        SimCtx {
            queue: &mut self.queue,
            warmup_end: self.params.warmup_end,
            sink: &mut self.sink,
        }
    }

    /// Drives the loop to completion: pops events in `(time, seq)`
    /// order, stops past `params.end`, dispatches engine events to
    /// [`Simulation::handle`], and owns the sample tick — gating
    /// [`Simulation::sample`] on warm-up, emitting a
    /// [`TraceRecord::Sample`] when tracing, and rescheduling.
    pub fn run<S>(&mut self, sim: &mut S)
    where
        S: Simulation<T, Event = E>,
    {
        if !self.started {
            self.started = true;
            if let Some(interval) = self.params.sample_interval {
                self.queue
                    .schedule(self.queue.now() + interval, KernelEvent::Sample);
            }
        }
        while let Some((now, event)) = self.queue.pop() {
            if now > self.params.end {
                break;
            }
            match event {
                KernelEvent::User(ev) => {
                    let mut ctx = SimCtx {
                        queue: &mut self.queue,
                        warmup_end: self.params.warmup_end,
                        sink: &mut self.sink,
                    };
                    sim.handle(now, ev, &mut ctx);
                }
                KernelEvent::Sample => {
                    if now >= self.params.warmup_end {
                        sim.sample(now);
                    }
                    if self.sink.enabled() {
                        self.sink.record(
                            now,
                            TraceRecord::Sample {
                                live: sim.live_peers(),
                            },
                        );
                    }
                    let interval = self
                        .params
                        .sample_interval
                        .expect("sample tick only exists when sampling is on");
                    self.queue.schedule(now + interval, KernelEvent::Sample);
                }
                KernelEvent::Control(generation) => {
                    // Plain runs never schedule control events; one here
                    // means a caller mixed `run` into a scenario run.
                    debug_assert!(false, "control event {generation} popped by a plain run");
                }
            }
        }
    }

    /// As [`Kernel::run`], but first schedules one control event per
    /// entry of the compiled `scenario` timeline (entries past the
    /// horizon are dropped) and dispatches each to
    /// [`Intervenable::intervene`] as it fires. Control events are
    /// scheduled before anything is popped, so an empty timeline leaves
    /// the event sequence — and therefore the run — byte-identical to
    /// [`Kernel::run`].
    ///
    /// # Errors
    ///
    /// Aborts the run and returns the first [`ScenarioError`] an
    /// intervention raises.
    pub fn run_scenario<S>(&mut self, sim: &mut S, scenario: &Scenario) -> Result<(), ScenarioError>
    where
        S: Intervenable<T, Event = E>,
    {
        let compiled = scenario.compile();
        for (generation, entry) in compiled.iter().enumerate() {
            if entry.at <= self.params.end {
                let stamp = u32::try_from(generation).expect("timeline fits u32");
                self.queue.schedule(entry.at, KernelEvent::Control(stamp));
            }
        }
        if !self.started {
            self.started = true;
            if let Some(interval) = self.params.sample_interval {
                self.queue
                    .schedule(self.queue.now() + interval, KernelEvent::Sample);
            }
        }
        while let Some((now, event)) = self.queue.pop() {
            if now > self.params.end {
                break;
            }
            match event {
                KernelEvent::User(ev) => {
                    let mut ctx = SimCtx {
                        queue: &mut self.queue,
                        warmup_end: self.params.warmup_end,
                        sink: &mut self.sink,
                    };
                    sim.handle(now, ev, &mut ctx);
                }
                KernelEvent::Sample => {
                    if now >= self.params.warmup_end {
                        sim.sample(now);
                    }
                    if self.sink.enabled() {
                        self.sink.record(
                            now,
                            TraceRecord::Sample {
                                live: sim.live_peers(),
                            },
                        );
                    }
                    let interval = self
                        .params
                        .sample_interval
                        .expect("sample tick only exists when sampling is on");
                    self.queue.schedule(now + interval, KernelEvent::Sample);
                }
                KernelEvent::Control(generation) => {
                    let action = compiled[generation as usize].action;
                    let mut ctx = SimCtx {
                        queue: &mut self.queue,
                        warmup_end: self.params.warmup_end,
                        sink: &mut self.sink,
                    };
                    sim.intervene(now, &action, &mut ctx)?;
                }
            }
        }
        Ok(())
    }

    /// Consumes the kernel, returning the trace sink for inspection.
    pub fn into_sink(self) -> T {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, RecordingSink};

    /// A minimal engine: every event reschedules itself after `gap`
    /// until `limit` events have been handled; `sample` counts ticks.
    struct Echo {
        handled: u32,
        sampled: u32,
        limit: u32,
        gap: SimDuration,
    }

    impl Echo {
        fn new(limit: u32, gap_secs: f64) -> Self {
            Echo {
                handled: 0,
                sampled: 0,
                limit,
                gap: SimDuration::from_secs(gap_secs),
            }
        }
    }

    impl<T: TraceSink> Simulation<T> for Echo {
        type Event = u32;

        fn handle(&mut self, now: SimTime, ev: u32, ctx: &mut SimCtx<'_, u32, T>) {
            self.handled += 1;
            if self.handled < self.limit {
                ctx.schedule(now + self.gap, ev + 1);
            }
        }

        fn sample(&mut self, _now: SimTime) {
            self.sampled += 1;
        }

        fn live_peers(&self) -> u64 {
            42
        }
    }

    #[test]
    fn runs_until_horizon() {
        let mut kernel = Kernel::new(KernelParams::new(SimDuration::from_secs(5.0)), NullSink);
        kernel.ctx().schedule(SimTime::ZERO, 0);
        let mut sim = Echo::new(u32::MAX, 1.0);
        kernel.run(&mut sim);
        // Events at t = 0..=5 are in range; the t = 6 event is past the end.
        assert_eq!(sim.handled, 6);
    }

    #[test]
    fn sample_ticks_fire_after_warmup_only() {
        let params = KernelParams::new(SimDuration::from_secs(10.0))
            .with_warmup(SimDuration::from_secs(5.0))
            .with_sampling(SimDuration::from_secs(1.0));
        let mut kernel = Kernel::new(params, NullSink);
        kernel.ctx().schedule(SimTime::ZERO, 0);
        let mut sim = Echo::new(1, 1.0);
        kernel.run(&mut sim);
        // Ticks at 1..=10; those at 5..=10 are post-warm-up.
        assert_eq!(sim.sampled, 6);
    }

    #[test]
    fn sample_trace_records_cover_warmup_too() {
        let params = KernelParams::new(SimDuration::from_secs(10.0))
            .with_warmup(SimDuration::from_secs(5.0))
            .with_sampling(SimDuration::from_secs(1.0));
        let mut kernel = Kernel::new(params, RecordingSink::new());
        kernel.ctx().schedule(SimTime::ZERO, 0);
        let mut sim = Echo::new(1, 1.0);
        kernel.run(&mut sim);
        let sink = kernel.into_sink();
        let samples: Vec<_> = sink
            .select(|r| matches!(r, TraceRecord::Sample { .. }))
            .collect();
        assert_eq!(samples.len(), 10, "trace sees every tick, warm-up included");
        for (_, r) in samples {
            assert_eq!(*r, TraceRecord::Sample { live: 42 });
        }
    }

    #[test]
    fn no_sampling_means_no_ticks() {
        let mut kernel = Kernel::new(
            KernelParams::new(SimDuration::from_secs(10.0)),
            CountingSink::new(),
        );
        kernel.ctx().schedule(SimTime::ZERO, 0);
        let mut sim = Echo::new(3, 1.0);
        kernel.run(&mut sim);
        assert_eq!(sim.sampled, 0);
        assert_eq!(kernel.into_sink().samples, 0);
    }

    #[test]
    fn churn_driver_schedules_death_at_sampled_lifetime() {
        struct Fixed(f64);
        impl Lifetimes for Fixed {
            fn sample_lifetime(&self, _rng: &mut RngStream) -> SimDuration {
                SimDuration::from_secs(self.0)
            }
        }

        struct OneDeath {
            died_at: Option<SimTime>,
        }
        impl<T: TraceSink> Simulation<T> for OneDeath {
            type Event = &'static str;
            fn handle(
                &mut self,
                now: SimTime,
                ev: &'static str,
                _ctx: &mut SimCtx<'_, &'static str, T>,
            ) {
                assert_eq!(ev, "death");
                self.died_at = Some(now);
            }
        }

        let churn = ChurnDriver::new(Fixed(7.5));
        let mut rng = RngStream::from_seed(1, "churn-test");
        let mut kernel = Kernel::new(
            KernelParams::new(SimDuration::from_secs(100.0)),
            CountingSink::new(),
        );
        churn.spawn(&mut kernel.ctx(), &mut rng, SimTime::ZERO, 3, "death");
        let mut sim = OneDeath { died_at: None };
        kernel.run(&mut sim);
        assert_eq!(sim.died_at, Some(SimTime::from_secs(7.5)));
        let sink = kernel.into_sink();
        assert_eq!(sink.joins, 1);
    }

    impl<T: TraceSink> crate::scenario::Intervenable<T> for Echo {
        fn intervene(
            &mut self,
            now: SimTime,
            action: &crate::scenario::Intervention,
            ctx: &mut SimCtx<'_, u32, T>,
        ) -> Result<(), crate::scenario::ScenarioError> {
            match action {
                crate::scenario::Intervention::FlashCrowd { queries } => {
                    // Inject extra engine events immediately.
                    for _ in 0..*queries {
                        ctx.schedule(now, 0);
                    }
                    Ok(())
                }
                other => Err(crate::scenario::ScenarioError::Unsupported {
                    engine: "echo",
                    action: other.label(),
                }),
            }
        }
    }

    #[test]
    fn empty_scenario_matches_plain_run() {
        let mut plain = Echo::new(u32::MAX, 1.0);
        let mut kernel = Kernel::new(KernelParams::new(SimDuration::from_secs(5.0)), NullSink);
        kernel.ctx().schedule(SimTime::ZERO, 0);
        kernel.run(&mut plain);

        let mut scen = Echo::new(u32::MAX, 1.0);
        let mut kernel = Kernel::new(KernelParams::new(SimDuration::from_secs(5.0)), NullSink);
        kernel.ctx().schedule(SimTime::ZERO, 0);
        kernel
            .run_scenario(&mut scen, &crate::scenario::Scenario::new())
            .expect("empty scenario cannot fail");
        assert_eq!(plain.handled, scen.handled);
    }

    #[test]
    fn control_events_fire_at_their_instant() {
        let mut sim = Echo::new(u32::MAX, 10.0); // one self-event at t=0 only
        let mut kernel = Kernel::new(KernelParams::new(SimDuration::from_secs(5.0)), NullSink);
        kernel.ctx().schedule(SimTime::ZERO, 0);
        let scenario = crate::scenario::Scenario::new().at(2.0).flash_crowd(3);
        kernel.run_scenario(&mut sim, &scenario).expect("supported");
        // t=0 seed event + 3 injected at t=2 (each reschedules at t=12,
        // past the horizon).
        assert_eq!(sim.handled, 4);
    }

    #[test]
    fn control_events_past_the_horizon_are_dropped() {
        let mut sim = Echo::new(u32::MAX, 10.0);
        let mut kernel = Kernel::new(KernelParams::new(SimDuration::from_secs(5.0)), NullSink);
        kernel.ctx().schedule(SimTime::ZERO, 0);
        let scenario = crate::scenario::Scenario::new().at(50.0).flash_crowd(3);
        kernel.run_scenario(&mut sim, &scenario).expect("dropped");
        assert_eq!(sim.handled, 1, "late control event never fires");
    }

    #[test]
    fn unsupported_intervention_aborts_the_run() {
        let mut sim = Echo::new(u32::MAX, 1.0);
        let mut kernel = Kernel::new(KernelParams::new(SimDuration::from_secs(5.0)), NullSink);
        kernel.ctx().schedule(SimTime::ZERO, 0);
        let scenario = crate::scenario::Scenario::new().at(2.0).heal();
        let err = kernel.run_scenario(&mut sim, &scenario).unwrap_err();
        assert_eq!(
            err,
            crate::scenario::ScenarioError::Unsupported {
                engine: "echo",
                action: "heal",
            }
        );
        assert!(sim.handled >= 2, "ran up to the failing control event");
        assert!(sim.handled < 6, "aborted before the horizon");
    }

    #[test]
    fn ctx_warmup_gate() {
        let params = KernelParams::new(SimDuration::from_secs(10.0))
            .with_warmup(SimDuration::from_secs(4.0));
        let mut kernel: Kernel<(), NullSink> = Kernel::new(params, NullSink);
        let ctx = kernel.ctx();
        assert!(!ctx.after_warmup(SimTime::from_secs(3.9)));
        assert!(ctx.after_warmup(SimTime::from_secs(4.0)));
    }
}
