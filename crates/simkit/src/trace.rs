//! Structured simulation tracing.
//!
//! Every engine built on [`crate::sim`] emits typed [`TraceRecord`]s —
//! peer churn, probes, query lifecycles, cache evictions, periodic
//! samples — through a [`TraceSink`]. The default sink, [`NullSink`],
//! reports itself disabled so that every emission site compiles down to
//! nothing on the hot path (sinks are monomorphized, never boxed); a
//! [`CountingSink`] tallies records for tests and reconciliation, and a
//! [`RecordingSink`] keeps them all for invariant checks. File formats
//! (e.g. JSONL) live with their consumers, not here.

use crate::time::SimTime;

/// What kind of network probe a [`TraceRecord::Probe`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// A query probe (GUESS iterative/parallel search).
    Query,
    /// A maintenance ping (GUESS cache upkeep).
    Ping,
    /// A flooded query message (Gnutella forwarding).
    Flood,
    /// A rumor push hop (gossip/epidemic dissemination).
    Push,
    /// A rumor pull exchange (gossip duplicate receiver re-entering
    /// dissemination).
    Pull,
    /// A pushed cache invalidation (maintenance plane, subject died).
    Invalidate,
    /// A pushed cache refresh (maintenance plane, subject re-published).
    Refresh,
}

impl ProbeKind {
    /// Stable lowercase name, used by file sinks.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProbeKind::Query => "query",
            ProbeKind::Ping => "ping",
            ProbeKind::Flood => "flood",
            ProbeKind::Push => "push",
            ProbeKind::Pull => "pull",
            ProbeKind::Invalidate => "invalidate",
            ProbeKind::Refresh => "refresh",
        }
    }
}

/// How a probe turned out, from the sender's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeOutcome {
    /// Reached a live peer that processed it.
    Good,
    /// Addressed to a peer that had already left the network.
    Dead,
    /// Dropped by an overloaded peer (capacity refusal).
    Refused,
    /// Arrived at a peer that had already seen this query (flooding).
    Duplicate,
}

impl ProbeOutcome {
    /// Stable lowercase name, used by file sinks.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ProbeOutcome::Good => "good",
            ProbeOutcome::Dead => "dead",
            ProbeOutcome::Refused => "refused",
            ProbeOutcome::Duplicate => "duplicate",
        }
    }
}

/// One structured trace event.
///
/// Peers are identified by the engine's dense instance id (GUESS peer
/// addresses, Gnutella slot indices); query ids are per-run sequence
/// numbers assigned at query start.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceRecord {
    /// A peer instance entered the network.
    PeerJoin {
        /// Engine-assigned peer instance id.
        peer: u64,
    },
    /// A peer instance left the network.
    PeerDeath {
        /// Engine-assigned peer instance id.
        peer: u64,
    },
    /// A query began at `origin`.
    QueryStart {
        /// Per-run query sequence number.
        query: u64,
        /// Peer instance id of the querying peer.
        origin: u64,
    },
    /// One probe/message sent on behalf of a query or of maintenance.
    Probe {
        /// Query id, or the sentinel [`NO_QUERY`] for maintenance pings.
        query: u64,
        /// Peer instance id of the probed peer.
        target: u64,
        /// What kind of probe this was.
        kind: ProbeKind,
        /// How it turned out.
        outcome: ProbeOutcome,
    },
    /// A query finished (satisfied or pool exhausted).
    QueryEnd {
        /// Per-run query sequence number.
        query: u64,
        /// Whether the desired number of results was reached.
        satisfied: bool,
        /// Total probes/messages this query cost.
        probes: u32,
        /// Results obtained.
        results: u32,
    },
    /// A cache entry was evicted to admit another.
    CacheEvict {
        /// Peer instance id owning the cache.
        owner: u64,
        /// Peer instance id of the evicted entry.
        evicted: u64,
    },
    /// A periodic kernel sample tick.
    Sample {
        /// Live peers at the tick.
        live: u64,
    },
}

/// Query-id sentinel for probes not belonging to any query
/// (maintenance pings).
pub const NO_QUERY: u64 = u64::MAX;

/// A consumer of [`TraceRecord`]s.
///
/// Sinks are threaded through the simulation kernel as a generic
/// parameter, so the disabled path ([`NullSink`]) monomorphizes to
/// nothing: emission sites guard record *construction* behind
/// [`TraceSink::enabled`], which is a compile-time constant `false`
/// for the null sink.
pub trait TraceSink {
    /// Whether records should be constructed and delivered at all.
    /// Call sites skip building records when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one record stamped with its simulation time.
    fn record(&mut self, at: SimTime, rec: TraceRecord);

    /// Consumes a batch of probe records — one per `(target, outcome)`
    /// pair — all belonging to the same query and kind at one instant.
    /// The default forwards each pair to [`TraceSink::record`]; sinks
    /// with per-call overhead (e.g. buffered writers) may override.
    fn record_probes(
        &mut self,
        at: SimTime,
        query: u64,
        kind: ProbeKind,
        probes: &[(u64, ProbeOutcome)],
    ) {
        for &(target, outcome) in probes {
            self.record(
                at,
                TraceRecord::Probe {
                    query,
                    target,
                    kind,
                    outcome,
                },
            );
        }
    }
}

/// The default sink: tracing off, zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _at: SimTime, _rec: TraceRecord) {}
}

/// A sink that tallies records by type — the test/reconciliation sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// `PeerJoin` records seen.
    pub joins: u64,
    /// `PeerDeath` records seen.
    pub deaths: u64,
    /// `QueryStart` records seen.
    pub query_starts: u64,
    /// `QueryEnd` records seen.
    pub query_ends: u64,
    /// `QueryEnd` records with `satisfied == true`.
    pub satisfied: u64,
    /// Sum of `QueryEnd::probes` over all ended queries.
    pub query_end_probes: u64,
    /// `Probe` records with [`ProbeKind::Query`].
    pub query_probes: u64,
    /// `Probe` records with [`ProbeKind::Ping`].
    pub ping_probes: u64,
    /// `Probe` records with [`ProbeKind::Flood`].
    pub flood_probes: u64,
    /// `Probe` records with [`ProbeKind::Push`].
    pub push_probes: u64,
    /// `Probe` records with [`ProbeKind::Pull`].
    pub pull_probes: u64,
    /// `Probe` records with [`ProbeKind::Invalidate`].
    pub invalidate_probes: u64,
    /// `Probe` records with [`ProbeKind::Refresh`].
    pub refresh_probes: u64,
    /// `CacheEvict` records seen.
    pub evictions: u64,
    /// `Sample` records seen.
    pub samples: u64,
}

impl CountingSink {
    /// A fresh all-zero counter sink.
    #[must_use]
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Total records consumed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.joins
            + self.deaths
            + self.query_starts
            + self.query_ends
            + self.query_probes
            + self.ping_probes
            + self.flood_probes
            + self.push_probes
            + self.pull_probes
            + self.invalidate_probes
            + self.refresh_probes
            + self.evictions
            + self.samples
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, _at: SimTime, rec: TraceRecord) {
        match rec {
            TraceRecord::PeerJoin { .. } => self.joins += 1,
            TraceRecord::PeerDeath { .. } => self.deaths += 1,
            TraceRecord::QueryStart { .. } => self.query_starts += 1,
            TraceRecord::QueryEnd {
                satisfied, probes, ..
            } => {
                self.query_ends += 1;
                self.query_end_probes += u64::from(probes);
                if satisfied {
                    self.satisfied += 1;
                }
            }
            TraceRecord::Probe { kind, .. } => match kind {
                ProbeKind::Query => self.query_probes += 1,
                ProbeKind::Ping => self.ping_probes += 1,
                ProbeKind::Flood => self.flood_probes += 1,
                ProbeKind::Push => self.push_probes += 1,
                ProbeKind::Pull => self.pull_probes += 1,
                ProbeKind::Invalidate => self.invalidate_probes += 1,
                ProbeKind::Refresh => self.refresh_probes += 1,
            },
            TraceRecord::CacheEvict { .. } => self.evictions += 1,
            TraceRecord::Sample { .. } => self.samples += 1,
        }
    }
}

/// A sink that keeps every record, timestamped, for offline assertions.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The records, in emission order.
    pub records: Vec<(SimTime, TraceRecord)>,
}

impl RecordingSink {
    /// A fresh empty recorder.
    #[must_use]
    pub fn new() -> Self {
        RecordingSink::default()
    }

    /// Iterates over the records of one variant selected by `filter`.
    pub fn select<'a, F>(&'a self, filter: F) -> impl Iterator<Item = &'a (SimTime, TraceRecord)>
    where
        F: Fn(&TraceRecord) -> bool + 'a,
    {
        self.records.iter().filter(move |(_, r)| filter(r))
    }
}

impl TraceSink for RecordingSink {
    fn record(&mut self, at: SimTime, rec: TraceRecord) {
        self.records.push((at, rec));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(SimTime::ZERO, TraceRecord::PeerJoin { peer: 1 }); // no-op
    }

    #[test]
    fn counting_sink_tallies_by_variant() {
        let mut s = CountingSink::new();
        assert!(s.enabled());
        let t = SimTime::from_secs(1.0);
        s.record(t, TraceRecord::PeerJoin { peer: 0 });
        s.record(t, TraceRecord::PeerDeath { peer: 0 });
        s.record(
            t,
            TraceRecord::QueryStart {
                query: 0,
                origin: 3,
            },
        );
        s.record(
            t,
            TraceRecord::Probe {
                query: 0,
                target: 4,
                kind: ProbeKind::Query,
                outcome: ProbeOutcome::Good,
            },
        );
        s.record(
            t,
            TraceRecord::Probe {
                query: NO_QUERY,
                target: 5,
                kind: ProbeKind::Ping,
                outcome: ProbeOutcome::Dead,
            },
        );
        s.record(
            t,
            TraceRecord::QueryEnd {
                query: 0,
                satisfied: true,
                probes: 7,
                results: 2,
            },
        );
        s.record(
            t,
            TraceRecord::CacheEvict {
                owner: 1,
                evicted: 2,
            },
        );
        s.record(t, TraceRecord::Sample { live: 100 });
        s.record(
            t,
            TraceRecord::Probe {
                query: 1,
                target: 6,
                kind: ProbeKind::Push,
                outcome: ProbeOutcome::Duplicate,
            },
        );
        s.record(
            t,
            TraceRecord::Probe {
                query: 1,
                target: 6,
                kind: ProbeKind::Pull,
                outcome: ProbeOutcome::Good,
            },
        );
        s.record(
            t,
            TraceRecord::Probe {
                query: NO_QUERY,
                target: 7,
                kind: ProbeKind::Invalidate,
                outcome: ProbeOutcome::Good,
            },
        );
        s.record(
            t,
            TraceRecord::Probe {
                query: NO_QUERY,
                target: 8,
                kind: ProbeKind::Refresh,
                outcome: ProbeOutcome::Refused,
            },
        );
        assert_eq!(s.joins, 1);
        assert_eq!(s.deaths, 1);
        assert_eq!(s.query_starts, 1);
        assert_eq!(s.query_ends, 1);
        assert_eq!(s.satisfied, 1);
        assert_eq!(s.query_end_probes, 7);
        assert_eq!(s.query_probes, 1);
        assert_eq!(s.ping_probes, 1);
        assert_eq!(s.flood_probes, 0);
        assert_eq!(s.push_probes, 1);
        assert_eq!(s.pull_probes, 1);
        assert_eq!(s.invalidate_probes, 1);
        assert_eq!(s.refresh_probes, 1);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.samples, 1);
        assert_eq!(s.total(), 12);
    }

    #[test]
    fn recording_sink_keeps_order_and_filters() {
        let mut s = RecordingSink::new();
        s.record(SimTime::from_secs(1.0), TraceRecord::Sample { live: 10 });
        s.record(SimTime::from_secs(2.0), TraceRecord::PeerJoin { peer: 9 });
        s.record(SimTime::from_secs(3.0), TraceRecord::Sample { live: 11 });
        let samples: Vec<_> = s
            .select(|r| matches!(r, TraceRecord::Sample { .. }))
            .collect();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].0, SimTime::from_secs(1.0));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ProbeKind::Query.name(), "query");
        assert_eq!(ProbeKind::Ping.name(), "ping");
        assert_eq!(ProbeKind::Flood.name(), "flood");
        assert_eq!(ProbeKind::Push.name(), "push");
        assert_eq!(ProbeKind::Pull.name(), "pull");
        assert_eq!(ProbeKind::Invalidate.name(), "invalidate");
        assert_eq!(ProbeKind::Refresh.name(), "refresh");
        assert_eq!(ProbeOutcome::Good.name(), "good");
        assert_eq!(ProbeOutcome::Dead.name(), "dead");
        assert_eq!(ProbeOutcome::Refused.name(), "refused");
        assert_eq!(ProbeOutcome::Duplicate.name(), "duplicate");
    }
}
