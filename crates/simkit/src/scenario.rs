//! Scenario timelines: scripted mid-run interventions.
//!
//! Every experiment in the workspace used to measure a *static*
//! configuration run to completion, but the interesting failure modes of
//! the protocols under study — cache staleness, malicious takeover,
//! churn recovery — are *dynamic* phenomena. This module adds the
//! missing axis: a [`Scenario`] is a timeline of [`Intervention`]s
//! (join/leave waves, query flash crowds, parameter flips, network
//! partitions) that the kernel delivers to the engine at scripted
//! simulation instants, through the [`Intervenable`] trait.
//!
//! # Event model
//!
//! [`Scenario::compile`] stable-sorts the timeline by instant and stamps
//! each entry with its post-sort index — its *generation*. The kernel
//! ([`crate::sim::Kernel::run_scenario`]) schedules one control event
//! per generation **before** popping anything, so control events
//! interleave with engine events purely by `(time, seq)` order and the
//! run stays deterministic. An empty timeline schedules nothing, which
//! is what makes the no-op-scenario invariance guarantee hold: running
//! through the scenario path with an empty timeline is byte-identical
//! to a plain run.
//!
//! # The `Intervenable` contract
//!
//! Engines keep their validated `Config` immutable after `build()`; the
//! knobs a scenario may flip live in a separate runtime-state struct
//! that [`Intervenable::intervene`] legally mutates. Interventions must
//! reuse the engine's existing machinery — join/leave waves go through
//! the churn paths, flash crowds through the workload query generators,
//! parameter flips re-validate through the engine's builder validation
//! — so a scenario can never put an engine into a state an ordinary run
//! could not reach.
//!
//! # Example
//!
//! ```
//! use simkit::scenario::{Intervention, Param, Scenario};
//!
//! let s = Scenario::new()
//!     .at(100.0)
//!     .mass_join(50)
//!     .at(200.0)
//!     .flash_crowd(400)
//!     .at(300.0)
//!     .param_flip(Param::QueryRate(0.05))
//!     .at(400.0)
//!     .partition(2)
//!     .at(500.0)
//!     .heal();
//! assert_eq!(s.len(), 5);
//! ```

use crate::time::{SimDuration, SimTime};

use crate::sim::{SimCtx, Simulation};
use crate::trace::TraceSink;

/// How an engine keeps its cached peer state fresh.
///
/// `Pull` is the classic poll-until-stale model (GUESS Ping/Pong);
/// `Push` replaces most polling with CUP-style pushed invalidations and
/// refreshes along interest edges; `Hybrid` keeps full-rate polling and
/// adds pushed invalidations on top. Engines without a maintenance
/// plane reject flips of this parameter as unsupported.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum MaintenanceMode {
    /// Poll-only freshness: periodic pings discover stale state.
    #[default]
    Pull,
    /// Push-dominant: subjects push invalidations and refreshes to
    /// interested holders; polling runs at a stretched interval.
    Push,
    /// Full-rate polling plus pushed invalidations.
    Hybrid,
}

impl MaintenanceMode {
    /// Stable lowercase name, used in reports and CLI surfaces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MaintenanceMode::Pull => "pull",
            MaintenanceMode::Push => "push",
            MaintenanceMode::Hybrid => "hybrid",
        }
    }
}

impl std::fmt::Display for MaintenanceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime-flippable parameter, engine-agnostic.
///
/// Each engine supports the subset that names one of its own knobs and
/// rejects the rest with [`ScenarioError::Unsupported`]. Flips are
/// re-validated through the engine's existing config validation before
/// they take effect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Param {
    /// Per-peer query rate (queries/sec). All three engines.
    QueryRate(f64),
    /// Fraction of newborn peers that are malicious (GUESS).
    BadPeerFraction(f64),
    /// Interval between a peer's periodic pings (GUESS).
    PingInterval(SimDuration),
    /// Probes issued concurrently per query (GUESS).
    ParallelProbes(usize),
    /// Contacts per spreader per round (gossip).
    Fanout(usize),
    /// Rounds a rumor may spread before retirement (gossip).
    RoundTtl(u32),
    /// Probability a duplicate push triggers a pull (gossip).
    PullProbability(f64),
    /// Flood TTL in hops (Gnutella).
    FloodTtl(usize),
    /// Neighbor-count target the overlay repairs toward (Gnutella).
    TargetDegree(usize),
    /// Cache maintenance mode: pull, push, or hybrid (GUESS).
    MaintenanceMode(MaintenanceMode),
}

impl Param {
    /// Stable display name of the flipped knob.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Param::QueryRate(_) => "query_rate",
            Param::BadPeerFraction(_) => "bad_peer_fraction",
            Param::PingInterval(_) => "ping_interval",
            Param::ParallelProbes(_) => "parallel_probes",
            Param::Fanout(_) => "fanout",
            Param::RoundTtl(_) => "round_ttl",
            Param::PullProbability(_) => "pull_probability",
            Param::FloodTtl(_) => "flood_ttl",
            Param::TargetDegree(_) => "target_degree",
            Param::MaintenanceMode(_) => "maintenance_mode",
        }
    }
}

/// One scripted intervention, delivered at its timeline instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Intervention {
    /// Grow the network by `count` newborn peers at once.
    MassJoin {
        /// Peers to add.
        count: usize,
    },
    /// Kill `count` uniformly chosen live peers at once (the engine's
    /// normal death path runs for each, replacements included where the
    /// engine's churn model prescribes them).
    MassLeave {
        /// Peers to kill.
        count: usize,
    },
    /// Inject `queries` extra queries immediately, from uniformly
    /// chosen live sources, through the normal query path.
    FlashCrowd {
        /// Queries to inject.
        queries: usize,
    },
    /// Flip one runtime parameter (re-validated before taking effect).
    ParamFlip(Param),
    /// Split the network into `groups` groups (peer `i` belongs to
    /// group `i % groups`); cross-group messages are dropped until
    /// [`Intervention::Heal`].
    Partition {
        /// Number of groups (must be ≥ 2).
        groups: u32,
    },
    /// Remove the active partition.
    Heal,
}

impl Intervention {
    /// Stable display label of the intervention kind.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Intervention::MassJoin { .. } => "mass_join",
            Intervention::MassLeave { .. } => "mass_leave",
            Intervention::FlashCrowd { .. } => "flash_crowd",
            Intervention::ParamFlip(_) => "param_flip",
            Intervention::Partition { .. } => "partition",
            Intervention::Heal => "heal",
        }
    }
}

/// Why a scenario could not be applied to an engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A [`Param`] flip failed the engine's config validation. Carries
    /// the engine's own validation message.
    InvalidParam(String),
    /// The engine has no knob matching the requested intervention.
    Unsupported {
        /// The rejecting engine.
        engine: &'static str,
        /// The label of the rejected action or parameter.
        action: &'static str,
    },
    /// A partition spec that does not describe ≥ 2 groups.
    BadPartition {
        /// The offending group count.
        groups: u32,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidParam(msg) => {
                write!(f, "scenario: parameter flip rejected: {msg}")
            }
            ScenarioError::Unsupported { engine, action } => {
                write!(f, "scenario: {engine} does not support {action}")
            }
            ScenarioError::BadPartition { groups } => {
                write!(f, "scenario: a partition needs >= 2 groups, got {groups}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// One compiled timeline entry: instant + action. Its position in the
/// compiled vector is its generation stamp — the payload of the control
/// event the kernel schedules for it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledEvent {
    pub(crate) at: SimTime,
    pub(crate) action: Intervention,
}

/// A timeline of interventions, built fluently.
///
/// [`Scenario::at`] moves the cursor; every action method appends an
/// intervention at the cursor. See the [module docs](self) for a full
/// example. The empty scenario is the identity: running through the
/// scenario machinery with it is byte-identical to a plain run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    events: Vec<(SimTime, Intervention)>,
    cursor: SimTime,
}

impl Scenario {
    /// An empty timeline with the cursor at t = 0.
    #[must_use]
    pub fn new() -> Self {
        Scenario::default()
    }

    /// Moves the cursor to `secs` seconds of simulation time.
    #[must_use]
    pub fn at(mut self, secs: f64) -> Self {
        self.cursor = SimTime::from_secs(secs);
        self
    }

    /// Appends an arbitrary intervention at the cursor.
    #[must_use]
    pub fn intervene(mut self, action: Intervention) -> Self {
        self.events.push((self.cursor, action));
        self
    }

    /// Appends a [`Intervention::MassJoin`] of `count` peers.
    #[must_use]
    pub fn mass_join(self, count: usize) -> Self {
        self.intervene(Intervention::MassJoin { count })
    }

    /// Appends a [`Intervention::MassLeave`] of `count` peers.
    #[must_use]
    pub fn mass_leave(self, count: usize) -> Self {
        self.intervene(Intervention::MassLeave { count })
    }

    /// Appends a [`Intervention::FlashCrowd`] of `queries` queries.
    #[must_use]
    pub fn flash_crowd(self, queries: usize) -> Self {
        self.intervene(Intervention::FlashCrowd { queries })
    }

    /// Appends a [`Intervention::ParamFlip`].
    #[must_use]
    pub fn param_flip(self, param: Param) -> Self {
        self.intervene(Intervention::ParamFlip(param))
    }

    /// Appends a [`Intervention::Partition`] into `groups` groups.
    #[must_use]
    pub fn partition(self, groups: u32) -> Self {
        self.intervene(Intervention::Partition { groups })
    }

    /// Appends a [`Intervention::Heal`].
    #[must_use]
    pub fn heal(self) -> Self {
        self.intervene(Intervention::Heal)
    }

    /// Number of interventions on the timeline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the timeline is empty (the identity scenario).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The timeline entries in insertion order (instant, action).
    #[must_use]
    pub fn events(&self) -> &[(SimTime, Intervention)] {
        &self.events
    }

    /// Compiles the timeline: stable-sorts by instant (insertion order
    /// breaks ties) and stamps each entry with its index — the
    /// generation carried by the kernel's control events.
    pub(crate) fn compile(&self) -> Vec<CompiledEvent> {
        let mut compiled: Vec<CompiledEvent> = self
            .events
            .iter()
            .map(|&(at, action)| CompiledEvent { at, action })
            .collect();
        compiled.sort_by_key(|entry| entry.at);
        compiled
    }
}

/// An engine that accepts mid-run interventions.
///
/// Implementors split construction-time config from runtime state: the
/// validated `Config` stays immutable after `build()`, and `intervene`
/// mutates only the runtime side, routing every action through the
/// engine's existing churn / workload / validation machinery. Actions
/// the engine cannot express return [`ScenarioError`]; the kernel
/// aborts the run and surfaces the error.
pub trait Intervenable<T: TraceSink>: Simulation<T> {
    /// Applies one intervention at instant `now`. Follow-up scheduling
    /// and trace emission go through `ctx`, exactly as in
    /// [`Simulation::handle`].
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the action names a knob the
    /// engine does not have, fails the engine's config re-validation,
    /// or carries a malformed partition spec.
    fn intervene(
        &mut self,
        now: SimTime,
        action: &Intervention,
        ctx: &mut SimCtx<'_, Self::Event, T>,
    ) -> Result<(), ScenarioError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_at_the_cursor() {
        let s = Scenario::new()
            .at(10.0)
            .mass_join(5)
            .mass_leave(3)
            .at(20.0)
            .flash_crowd(100);
        let ev = s.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].0, SimTime::from_secs(10.0));
        assert_eq!(ev[1].0, SimTime::from_secs(10.0), "cursor sticks");
        assert_eq!(ev[2].0, SimTime::from_secs(20.0));
        assert_eq!(ev[2].1, Intervention::FlashCrowd { queries: 100 });
    }

    #[test]
    fn compile_is_a_stable_sort_by_time() {
        // Inserted out of order; ties keep insertion order.
        let s = Scenario::new()
            .at(30.0)
            .heal()
            .at(10.0)
            .partition(2)
            .at(10.0)
            .mass_join(1);
        let c = s.compile();
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].at, SimTime::from_secs(10.0));
        assert_eq!(c[0].action, Intervention::Partition { groups: 2 });
        assert_eq!(c[1].at, SimTime::from_secs(10.0));
        assert_eq!(c[1].action, Intervention::MassJoin { count: 1 });
        assert_eq!(c[2].action, Intervention::Heal);
    }

    #[test]
    fn empty_scenario_compiles_to_nothing() {
        let s = Scenario::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.compile().is_empty());
    }

    #[test]
    fn labels_and_param_names_are_stable() {
        assert_eq!(Intervention::Heal.label(), "heal");
        assert_eq!(Intervention::MassJoin { count: 1 }.label(), "mass_join");
        assert_eq!(
            Intervention::ParamFlip(Param::QueryRate(0.1)).label(),
            "param_flip"
        );
        assert_eq!(Param::Fanout(2).name(), "fanout");
        assert_eq!(Param::FloodTtl(5).name(), "flood_ttl");
        assert_eq!(
            Param::MaintenanceMode(MaintenanceMode::Push).name(),
            "maintenance_mode"
        );
    }

    #[test]
    fn maintenance_mode_defaults_to_pull_and_names_are_stable() {
        assert_eq!(MaintenanceMode::default(), MaintenanceMode::Pull);
        assert_eq!(MaintenanceMode::Pull.name(), "pull");
        assert_eq!(MaintenanceMode::Push.name(), "push");
        assert_eq!(MaintenanceMode::Hybrid.name(), "hybrid");
        assert_eq!(MaintenanceMode::Hybrid.to_string(), "hybrid");
    }

    #[test]
    fn errors_display_their_cause() {
        let e = ScenarioError::Unsupported {
            engine: "gossip",
            action: "ping_interval",
        };
        assert!(e.to_string().contains("gossip"));
        assert!(e.to_string().contains("ping_interval"));
        let p = ScenarioError::BadPartition { groups: 1 };
        assert!(p.to_string().contains(">= 2"));
        let v = ScenarioError::InvalidParam("rate must be positive".into());
        assert!(v.to_string().contains("rate must be positive"));
    }
}
