//! Deterministic random-number streams.
//!
//! Every stochastic component of a simulation draws from its own
//! [`RngStream`], derived from a single run seed plus a component label.
//! Splitting streams this way keeps components statistically independent
//! *and* means adding randomness to one component cannot perturb the draws
//! seen by another — runs stay comparable across code changes.
//!
//! The generator is a self-contained xoshiro256++ (public domain, Blackman
//! & Vigna) seeded through SplitMix64, so the crate needs no external RNG
//! dependency and streams are bit-reproducible across platforms and
//! toolchain versions.
//!
//! For parameter sweeps, [`derive_seed`] folds `(master seed, experiment
//! label, point index)` into an independent per-point seed. The derivation
//! is pure, so a sweep point's stream depends only on its identity — never
//! on the order or thread in which points execute. This is what makes the
//! parallel experiment runner in `guess-bench` deterministic at any
//! `--jobs` level.

/// A named, seedable random stream.
///
/// # Examples
///
/// ```
/// use simkit::rng::RngStream;
///
/// let mut a = RngStream::from_seed(42, "lifetimes");
/// let mut b = RngStream::from_seed(42, "lifetimes");
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed + label => same stream
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    s: [u64; 4],
}

/// Stable 64-bit FNV-1a hash, used to fold a stream label into the seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent per-point seed for a parameter sweep.
///
/// Folds a master seed, a sweep label (typically the experiment name) and
/// a point index into one well-mixed 64-bit seed. The result depends only
/// on the three inputs — not on execution order — so sweep points may run
/// in parallel, in any order, and still draw identical streams.
///
/// # Examples
///
/// ```
/// use simkit::rng::derive_seed;
///
/// let a = derive_seed(7, "fig3", 0);
/// let b = derive_seed(7, "fig3", 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(7, "fig3", 0)); // pure function of its inputs
/// ```
#[must_use]
pub fn derive_seed(master: u64, label: &str, point: u64) -> u64 {
    let mut state = master
        ^ fnv1a(label.as_bytes()).rotate_left(17)
        ^ point.wrapping_mul(0xa076_1d64_78bd_642f);
    // Two SplitMix64 rounds decorrelate adjacent point indices.
    let _ = splitmix64(&mut state);
    splitmix64(&mut state)
}

impl RngStream {
    /// Creates a stream from a run seed and a component label.
    ///
    /// Distinct labels under the same seed yield independent streams;
    /// identical `(seed, label)` pairs yield identical streams.
    #[must_use]
    pub fn from_seed(seed: u64, label: &str) -> Self {
        let mut state = seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        RngStream { s }
    }

    /// Derives a child stream labelled `label` from this stream's current
    /// state. Useful for giving every simulated peer its own stream.
    #[must_use]
    pub fn fork(&mut self, label: &str) -> RngStream {
        let seed = self.next_u64();
        RngStream::from_seed(seed, label)
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[allow(clippy::should_implement_trait)]
    #[must_use = "discarding the draw still advances the stream"]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (the upper half of a 64-bit draw).
    #[must_use = "discarding the draw still advances the stream"]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform integer in `[0, bound)` without modulo bias
    /// (Lemire's multiply-and-shift rejection method).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` (53 random mantissa bits).
    #[must_use]
    pub fn f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Bernoulli trial succeeding with probability `p` (clamped to `[0,1]`).
    #[must_use]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[must_use]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        self.bounded_u64(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            self.next_u64()
        } else {
            lo + self.bounded_u64(span + 1)
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[must_use]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k clamped to n),
    /// returned in random order.
    #[must_use]
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        if k * 8 <= n {
            // Sparse case: rejection sampling is O(k) expected, avoiding
            // the O(n) index-vector setup — this path runs on every pong.
            let mut picked = Vec::with_capacity(k);
            while picked.len() < k {
                let c = self.below(n);
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            return picked;
        }
        // Dense case: partial Fisher–Yates.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RngStream::from_seed(7, "x");
        let mut b = RngStream::from_seed(7, "x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_split_streams() {
        let mut a = RngStream::from_seed(7, "alpha");
        let mut b = RngStream::from_seed(7, "beta");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams with different labels should diverge");
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::from_seed(1, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = RngStream::from_seed(2, "cal");
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2700..=3300).contains(&hits), "got {hits} hits for p=0.3");
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = RngStream::from_seed(11, "f");
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x), "f64() out of range: {x}");
        }
    }

    #[test]
    fn below_is_in_range() {
        let mut r = RngStream::from_seed(3, "b");
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_small_ranges_uniformly() {
        let mut r = RngStream::from_seed(12, "u");
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[r.below(5)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1700..=2300).contains(&c), "bucket {i} got {c}/10000");
        }
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = RngStream::from_seed(13, "ri");
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_inclusive(3, 5) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
        // Degenerate and full-width ranges are legal.
        assert_eq!(r.range_inclusive(9, 9), 9);
        let _ = r.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = RngStream::from_seed(4, "s");
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_clamps_k() {
        let mut r = RngStream::from_seed(5, "s2");
        assert_eq!(r.sample_indices(3, 10).len(), 3);
        assert!(r.sample_indices(0, 4).is_empty());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::from_seed(6, "sh");
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_children() {
        let mut parent = RngStream::from_seed(9, "p");
        let mut c1 = parent.fork("child");
        let mut c2 = parent.fork("child");
        // Two forks from different parent states differ even with equal labels.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = RngStream::from_seed(10, "ch");
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[5]), Some(&5));
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut r = RngStream::from_seed(14, "fb");
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 random bytes are all-zero with probability 2^-104.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn derive_seed_is_pure_and_sensitive() {
        assert_eq!(derive_seed(1, "fig3", 0), derive_seed(1, "fig3", 0));
        assert_ne!(derive_seed(1, "fig3", 0), derive_seed(1, "fig3", 1));
        assert_ne!(derive_seed(1, "fig3", 0), derive_seed(2, "fig3", 0));
        assert_ne!(derive_seed(1, "fig3", 0), derive_seed(1, "fig4", 0));
    }

    #[test]
    fn derived_streams_are_independent() {
        let mut a = RngStream::from_seed(derive_seed(3, "exp", 0), "run");
        let mut b = RngStream::from_seed(derive_seed(3, "exp", 1), "run");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "adjacent point streams should diverge");
    }
}
