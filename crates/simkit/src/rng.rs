//! Deterministic random-number streams.
//!
//! Every stochastic component of a simulation draws from its own
//! [`RngStream`], derived from a single run seed plus a component label.
//! Splitting streams this way keeps components statistically independent
//! *and* means adding randomness to one component cannot perturb the draws
//! seen by another — runs stay comparable across code changes.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A named, seedable random stream.
///
/// # Examples
///
/// ```
/// use rand::RngCore;
/// use simkit::rng::RngStream;
///
/// let mut a = RngStream::from_seed(42, "lifetimes");
/// let mut b = RngStream::from_seed(42, "lifetimes");
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed + label => same stream
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: StdRng,
}

/// Stable 64-bit FNV-1a hash, used to fold a stream label into the seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl RngStream {
    /// Creates a stream from a run seed and a component label.
    ///
    /// Distinct labels under the same seed yield independent streams;
    /// identical `(seed, label)` pairs yield identical streams.
    #[must_use]
    pub fn from_seed(seed: u64, label: &str) -> Self {
        let mixed = seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        // SplitMix64 expansion of the 64-bit seed into the 32-byte StdRng seed.
        let mut state = mixed;
        let mut seed_bytes = [0u8; 32];
        for chunk in seed_bytes.chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        RngStream { rng: StdRng::from_seed(seed_bytes) }
    }

    /// Derives a child stream labelled `label` from this stream's current
    /// state. Useful for giving every simulated peer its own stream.
    #[must_use]
    pub fn fork(&mut self, label: &str) -> RngStream {
        let seed = self.rng.gen::<u64>();
        RngStream::from_seed(seed, label)
    }

    /// Uniform draw in `[0, 1)`.
    #[must_use]
    pub fn f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli trial succeeding with probability `p` (clamped to `[0,1]`).
    #[must_use]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[must_use]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        self.rng.gen_range(0..bound)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[must_use]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len())])
        }
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k clamped to n),
    /// returned in random order.
    #[must_use]
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        if k * 8 <= n {
            // Sparse case: rejection sampling is O(k) expected, avoiding
            // the O(n) index-vector setup — this path runs on every pong.
            let mut picked = Vec::with_capacity(k);
            while picked.len() < k {
                let c = self.below(n);
                if !picked.contains(&c) {
                    picked.push(c);
                }
            }
            return picked;
        }
        // Dense case: partial Fisher–Yates.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

impl RngCore for RngStream {
    fn next_u32(&mut self) -> u32 {
        self.rng.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.rng.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.rng.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = RngStream::from_seed(7, "x");
        let mut b = RngStream::from_seed(7, "x");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_split_streams() {
        let mut a = RngStream::from_seed(7, "alpha");
        let mut b = RngStream::from_seed(7, "beta");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams with different labels should diverge");
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::from_seed(1, "c");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = RngStream::from_seed(2, "cal");
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2700..=3300).contains(&hits), "got {hits} hits for p=0.3");
    }

    #[test]
    fn below_is_in_range() {
        let mut r = RngStream::from_seed(3, "b");
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = RngStream::from_seed(4, "s");
        let s = r.sample_indices(50, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_clamps_k() {
        let mut r = RngStream::from_seed(5, "s2");
        assert_eq!(r.sample_indices(3, 10).len(), 3);
        assert!(r.sample_indices(0, 4).is_empty());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::from_seed(6, "sh");
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_independent_children() {
        let mut parent = RngStream::from_seed(9, "p");
        let mut c1 = parent.fork("child");
        let mut c2 = parent.fork("child");
        // Two forks from different parent states differ even with equal labels.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = RngStream::from_seed(10, "ch");
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[5]), Some(&5));
    }
}
