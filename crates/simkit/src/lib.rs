//! `simkit` — a small, deterministic discrete-event simulation substrate.
//!
//! This crate provides the machinery every simulation in the workspace is
//! built on:
//!
//! * [`time`] — virtual clock types ([`SimTime`],
//!   [`SimDuration`]);
//! * [`event`] — a deterministic, cancellable [`EventQueue`] (a
//!   calendar queue: O(1) amortized scheduling);
//! * [`hash`] — a deterministic FxHash-style hasher for hot-path maps
//!   ([`hash::FxHashMap`], [`hash::FxHashSet`]);
//! * [`rng`] — seedable, label-split random streams
//!   ([`RngStream`]);
//! * [`dist`] — the distributions the workload models need (Zipf via alias
//!   tables, exponential, log-normal, bounded Pareto, empirical resampling);
//! * [`stats`] — online statistics (summaries, histograms, counters,
//!   time series);
//! * [`sim`] — the shared simulation kernel: the [`sim::Simulation`]
//!   trait, the kernel-owned event-loop driver, churn, warm-up gating
//!   and periodic sampling;
//! * [`scenario`] — scripted mid-run intervention timelines
//!   ([`Scenario`]) delivered through the [`scenario::Intervenable`]
//!   trait;
//! * [`trace`] — the structured trace layer: typed records and
//!   pluggable [`trace::TraceSink`]s, zero-cost when disabled.
//!
//! # Example: a minimal M/M/1-ish arrival loop
//!
//! ```
//! use simkit::dist::{ContinuousDist, Exponential};
//! use simkit::event::EventQueue;
//! use simkit::rng::RngStream;
//! use simkit::stats::Summary;
//! use simkit::time::{SimDuration, SimTime};
//!
//! let mut rng = RngStream::from_seed(7, "arrivals");
//! let gaps = Exponential::new(1.0)?;
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::ZERO, ());
//!
//! let mut inter = Summary::new();
//! let mut last = SimTime::ZERO;
//! while let Some((now, ())) = queue.pop() {
//!     inter.record((now.saturating_since(last)).as_secs());
//!     last = now;
//!     if queue.events_processed() < 1000 {
//!         queue.schedule(now + SimDuration::from_secs(gaps.sample(&mut rng)), ());
//!     }
//! }
//! assert_eq!(inter.count(), 1000);
//! # Ok::<(), simkit::dist::InvalidRateError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod event;
pub mod hash;
pub mod lanes;
pub mod rng;
pub mod scenario;
pub mod sim;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::EventQueue;
pub use lanes::{LaneCtx, LaneKernel, LaneSimulation};
pub use rng::RngStream;
pub use scenario::{Intervenable, Intervention, Param, Scenario, ScenarioError};
pub use sim::{ChurnDriver, Kernel, KernelParams, SimCtx, Simulation};
pub use time::{SimDuration, SimTime};
pub use trace::{NullSink, TraceRecord, TraceSink};
