//! A fast, deterministic hasher for hot-path maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which simulation-internal maps keyed by small integers
//! (peer addresses, event sequence numbers, query ids) do not need. This
//! module provides a hand-rolled multiply-xor hasher in the style of
//! rustc's FxHash: one wrapping multiply per word, no per-process random
//! state, no external dependency — consistent with the offline build.
//!
//! Determinism note: `HashMap` iteration order still depends on
//! insertion history even with a fixed hasher, so the simulators keep
//! the existing rule that nothing observable may iterate a hash map.
//! Switching a map from SipHash to Fx therefore cannot perturb reports;
//! it only removes hashing overhead from lookups.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio multiplier (2^64 / φ), the same constant rustc's FxHash
/// uses to spread consecutive small integers across the hash space.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const ROTATE: u32 = 5;

/// A multiply-xor hasher: `hash = (hash.rot(5) ^ word) * SEED` per word.
///
/// Not DoS-resistant — only for simulation-internal keys that an
/// adversary cannot choose.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the slice; the tail is zero-padded. Hot
        // keys are integers and never take this path, but `&str`/byte
        // keys must still hash correctly.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; stateless, so identical across runs
/// and processes.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An empty [`FxHashMap`] with room for `cap` entries.
#[must_use]
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// An empty [`FxHashSet`] with room for `cap` entries.
#[must_use]
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn integers_hash_consistently_and_distinctly() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        // Consecutive small keys must not collide into nearby buckets
        // trivially: check a spread of low bits.
        let mut low_bits: Vec<u64> = (0u64..64).map(|i| hash_of(&i) & 0xff).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(low_bits.len() > 32, "low bits collapse: {}", low_bits.len());
    }

    #[test]
    fn byte_slices_of_different_lengths_differ() {
        let a = hash_of(&b"abcdefgh".as_slice());
        let b = hash_of(&b"abcdefg".as_slice());
        let c = hash_of(&b"abcdefgh\0".as_slice());
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn maps_behave_like_std_maps() {
        let mut m: FxHashMap<u64, &str> = map_with_capacity(16);
        assert!(m.capacity() >= 16);
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.remove(&2), Some("two"));
        assert!(m.remove(&2).is_none());

        let mut s: FxHashSet<u64> = set_with_capacity(8);
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert!(s.contains(&7));
    }

    #[test]
    fn hashing_is_process_independent() {
        // No random state anywhere: the hash of a known key is a fixed
        // function of the algorithm. Pin one value so an accidental
        // change to the constants is caught.
        let h = hash_of(&0u64);
        assert_eq!(h, 0, "hash of 0 via one multiply of 0 stays 0");
        assert_eq!(hash_of(&1u64), SEED);
    }
}
