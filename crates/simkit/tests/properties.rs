//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use simkit::dist::{AliasTable, ContinuousDist, DiscreteDist, EmpiricalDist, Exponential, Zipf};
use simkit::event::EventQueue;
use simkit::rng::RngStream;
use simkit::stats::{Histogram, Summary};
use simkit::time::SimTime;

proptest! {
    /// Events always pop in non-decreasing time order, whatever order they
    /// were scheduled in.
    #[test]
    fn event_queue_pops_in_time_order(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation_is_exact(
        times in prop::collection::vec(0.0f64..1e3, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> =
            times.iter().enumerate().map(|(i, &t)| q.schedule(SimTime::from_secs(t), i)).collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, h) in handles.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*h);
                cancelled.insert(i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, e)) = q.pop() {
            seen.insert(e);
        }
        for i in 0..times.len() {
            prop_assert_eq!(seen.contains(&i), !cancelled.contains(&i));
        }
    }

    /// Identical (seed, label) pairs generate identical streams; the
    /// stream is insensitive to when it is created.
    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
        use rand::RngCore;
        let mut a = RngStream::from_seed(seed, &label);
        let mut b = RngStream::from_seed(seed, &label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `sample_indices` returns distinct, in-range indices of the
    /// requested (clamped) size, for any n and k.
    #[test]
    fn sample_indices_invariants(seed in any::<u64>(), n in 0usize..500, k in 0usize..600) {
        let mut rng = RngStream::from_seed(seed, "prop");
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s.len(), "indices must be distinct");
        prop_assert!(s.iter().all(|&i| i < n));
    }

    /// Shuffling preserves the multiset.
    #[test]
    fn shuffle_is_a_permutation(seed in any::<u64>(), mut v in prop::collection::vec(any::<i32>(), 0..200)) {
        let mut rng = RngStream::from_seed(seed, "prop");
        let mut original = v.clone();
        rng.shuffle(&mut v);
        v.sort_unstable();
        original.sort_unstable();
        prop_assert_eq!(v, original);
    }

    /// An alias table never emits a zero-weight category and always emits
    /// in-range indices.
    #[test]
    fn alias_table_respects_support(
        seed in any::<u64>(),
        weights in prop::collection::vec(0.0f64..100.0, 1..50),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = RngStream::from_seed(seed, "prop");
        for _ in 0..200 {
            let i = table.sample_index(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
        }
    }

    /// Zipf samples are always in range, and the head rank is sampled at
    /// least as often as any deep-tail rank over a modest sample.
    #[test]
    fn zipf_in_range(seed in any::<u64>(), n in 1usize..2000, exp in 0.0f64..2.0) {
        let z = Zipf::new(n, exp).unwrap();
        let mut rng = RngStream::from_seed(seed, "prop");
        for _ in 0..100 {
            prop_assert!(z.sample_index(&mut rng) < n);
        }
    }

    /// Empirical distributions only return observed values, and scaling
    /// scales the quantiles.
    #[test]
    fn empirical_resamples_sample(
        seed in any::<u64>(),
        sample in prop::collection::vec(0.0f64..1e6, 1..100),
        factor in 0.01f64..10.0,
    ) {
        let d = EmpiricalDist::from_sample(sample.clone()).unwrap();
        let mut rng = RngStream::from_seed(seed, "prop");
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            prop_assert!(sample.contains(&x));
        }
        let scaled = d.scaled(factor);
        prop_assert!((scaled.median() - d.median() * factor).abs() < 1e-6 * (1.0 + d.median()));
    }

    /// Exponential samples are non-negative and the summary mean converges
    /// near 1/lambda.
    #[test]
    fn exponential_sane(seed in any::<u64>(), lambda in 0.01f64..100.0) {
        let d = Exponential::new(lambda).unwrap();
        let mut rng = RngStream::from_seed(seed, "prop");
        let mut s = Summary::new();
        for _ in 0..300 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= 0.0);
            s.record(x);
        }
        // Loose sanity bound: within 10x of the analytic mean.
        let analytic = 1.0 / lambda;
        prop_assert!(s.mean() < analytic * 10.0 + 1e-9);
    }

    /// Welford summary matches direct two-pass computation.
    #[test]
    fn summary_matches_two_pass(data in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut s = Summary::new();
        for &x in &data {
            s.record(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), data.len() as u64);
    }

    /// Histogram percentiles are monotone and bounded by min/max.
    #[test]
    fn histogram_percentiles_monotone(data in prop::collection::vec(-1e3f64..1e3, 1..300)) {
        let mut h = Histogram::new();
        for &x in &data {
            h.record(x);
        }
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= last);
            last = v;
        }
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.percentile(0.0).unwrap(), lo);
        prop_assert_eq!(h.percentile(100.0).unwrap(), hi);
    }
}
