//! Property-style tests for the simulation substrate.
//!
//! The build environment is offline, so these are driven by `RngStream`
//! itself rather than proptest: each test generates many randomized cases
//! from a fixed seed, which keeps the coverage of the old property tests
//! while staying fully deterministic.

use simkit::dist::{AliasTable, ContinuousDist, DiscreteDist, EmpiricalDist, Exponential, Zipf};
use simkit::event::EventQueue;
use simkit::rng::RngStream;
use simkit::stats::{Histogram, Summary};
use simkit::time::SimTime;

/// Generates a random lowercase label of 1..=12 chars.
fn gen_label(rng: &mut RngStream) -> String {
    let len = 1 + rng.below(12);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

/// Events always pop in non-decreasing time order, whatever order they
/// were scheduled in.
#[test]
fn event_queue_pops_in_time_order() {
    let mut gen = RngStream::from_seed(0x11, "cases");
    for _ in 0..40 {
        let n = 1 + gen.below(200);
        let times: Vec<f64> = (0..n).map(|_| gen.uniform(0.0, 1e6)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            popped += 1;
        }
        assert_eq!(popped, times.len());
    }
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn event_queue_cancellation_is_exact() {
    let mut gen = RngStream::from_seed(0x12, "cases");
    for _ in 0..40 {
        let n = 1 + gen.below(100);
        let times: Vec<f64> = (0..n).map(|_| gen.uniform(0.0, 1e3)).collect();
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_secs(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, h) in handles.iter().enumerate() {
            if gen.chance(0.5) {
                q.cancel(*h);
                cancelled.insert(i);
            }
        }
        let mut seen = std::collections::HashSet::new();
        while let Some((_, e)) = q.pop() {
            seen.insert(e);
        }
        for i in 0..times.len() {
            assert_eq!(seen.contains(&i), !cancelled.contains(&i));
        }
    }
}

/// Identical (seed, label) pairs generate identical streams; the stream is
/// insensitive to when it is created.
#[test]
fn rng_streams_are_reproducible() {
    let mut gen = RngStream::from_seed(0x13, "cases");
    for _ in 0..50 {
        let seed = gen.next_u64();
        let label = gen_label(&mut gen);
        let mut a = RngStream::from_seed(seed, &label);
        let mut b = RngStream::from_seed(seed, &label);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

/// `sample_indices` returns distinct, in-range indices of the requested
/// (clamped) size, for any n and k.
#[test]
fn sample_indices_invariants() {
    let mut gen = RngStream::from_seed(0x14, "cases");
    for _ in 0..200 {
        let n = gen.below(500);
        let k = gen.below(600);
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let s = rng.sample_indices(n, k);
        assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), s.len(), "indices must be distinct");
        assert!(s.iter().all(|&i| i < n));
    }
}

/// Shuffling preserves the multiset.
#[test]
fn shuffle_is_a_permutation() {
    let mut gen = RngStream::from_seed(0x15, "cases");
    for _ in 0..60 {
        let n = gen.below(200);
        let mut v: Vec<i32> = (0..n).map(|_| gen.next_u32() as i32).collect();
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let mut original = v.clone();
        rng.shuffle(&mut v);
        v.sort_unstable();
        original.sort_unstable();
        assert_eq!(v, original);
    }
}

/// An alias table never emits a zero-weight category and always emits
/// in-range indices.
#[test]
fn alias_table_respects_support() {
    let mut gen = RngStream::from_seed(0x16, "cases");
    for _ in 0..40 {
        let n = 1 + gen.below(50);
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                if gen.chance(0.25) {
                    0.0
                } else {
                    gen.uniform(0.0, 100.0)
                }
            })
            .collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        for _ in 0..200 {
            let i = table.sample_index(&mut rng);
            assert!(i < weights.len());
            assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
        }
    }
}

/// Zipf samples are always in range.
#[test]
fn zipf_in_range() {
    let mut gen = RngStream::from_seed(0x17, "cases");
    for _ in 0..40 {
        let n = 1 + gen.below(2000);
        let exp = gen.uniform(0.0, 2.0);
        let z = Zipf::new(n, exp).unwrap();
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        for _ in 0..100 {
            assert!(z.sample_index(&mut rng) < n);
        }
    }
}

/// Empirical distributions only return observed values, and scaling scales
/// the quantiles.
#[test]
fn empirical_resamples_sample() {
    let mut gen = RngStream::from_seed(0x18, "cases");
    for _ in 0..40 {
        let n = 1 + gen.below(100);
        let sample: Vec<f64> = (0..n).map(|_| gen.uniform(0.0, 1e6)).collect();
        let factor = gen.uniform(0.01, 10.0);
        let d = EmpiricalDist::from_sample(sample.clone()).unwrap();
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        for _ in 0..50 {
            let x = d.sample(&mut rng);
            assert!(sample.contains(&x));
        }
        let scaled = d.scaled(factor);
        assert!((scaled.median() - d.median() * factor).abs() < 1e-6 * (1.0 + d.median()));
    }
}

/// Exponential samples are non-negative and the summary mean stays within a
/// loose sanity bound of 1/lambda.
#[test]
fn exponential_sane() {
    let mut gen = RngStream::from_seed(0x19, "cases");
    for _ in 0..40 {
        let lambda = gen.uniform(0.01, 100.0);
        let d = Exponential::new(lambda).unwrap();
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let mut s = Summary::new();
        for _ in 0..300 {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0);
            s.record(x);
        }
        let analytic = 1.0 / lambda;
        assert!(s.mean() < analytic * 10.0 + 1e-9);
    }
}

/// Welford summary matches direct two-pass computation.
#[test]
fn summary_matches_two_pass() {
    let mut gen = RngStream::from_seed(0x1a, "cases");
    for _ in 0..60 {
        let n = 2 + gen.below(200);
        let data: Vec<f64> = (0..n).map(|_| gen.uniform(-1e6, 1e6)).collect();
        let mut s = Summary::new();
        for &x in &data {
            s.record(x);
        }
        let count = data.len() as f64;
        let mean = data.iter().sum::<f64>() / count;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count;
        assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        assert_eq!(s.count(), data.len() as u64);
    }
}

/// Histogram percentiles are monotone and bounded by min/max.
#[test]
fn histogram_percentiles_monotone() {
    let mut gen = RngStream::from_seed(0x1b, "cases");
    for _ in 0..60 {
        let n = 1 + gen.below(300);
        let data: Vec<f64> = (0..n).map(|_| gen.uniform(-1e3, 1e3)).collect();
        let mut h = Histogram::new();
        for &x in &data {
            h.record(x);
        }
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!(v >= last);
            last = v;
        }
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(h.percentile(0.0).unwrap(), lo);
        assert_eq!(h.percentile(100.0).unwrap(), hi);
    }
}
