//! Criterion end-to-end benchmarks: small complete simulation runs.
//!
//! These gauge full-system throughput per protocol configuration — the
//! numbers that govern how long the paper-scale `repro` sweeps take.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use guess::config::Config;
use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;
use gnutella::population::Population;
use gnutella::{FixedExtentCurve, Topology};
use simkit::rng::RngStream;
use simkit::time::SimDuration;
use workload::content::CatalogParams;

fn small_cfg(seed: u64) -> Config {
    let mut cfg = Config::small_test(seed);
    cfg.run.duration = SimDuration::from_secs(250.0);
    cfg.run.warmup = SimDuration::from_secs(50.0);
    cfg
}

fn bench_guess_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("guess_sim_small");
    g.sample_size(10);
    g.bench_function("random_policies", |b| {
        b.iter(|| GuessSim::new(small_cfg(1)).expect("valid").run().queries);
    });
    g.bench_function("mfs_policies", |b| {
        b.iter(|| {
            let mut cfg = small_cfg(2);
            cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
            GuessSim::new(cfg).expect("valid").run().queries
        });
    });
    g.bench_function("poisoned_20pct", |b| {
        b.iter(|| {
            let mut cfg = small_cfg(3);
            cfg.system.bad_peer_fraction = 0.2;
            GuessSim::new(cfg).expect("valid").run().queries
        });
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let pop = Population::generate(500, CatalogParams::default(), 7).expect("valid");
    let mut g = c.benchmark_group("forwarding_baselines");
    g.sample_size(10);
    g.bench_function("fixed_extent_curve_500x500", |b| {
        b.iter(|| {
            let mut rng = RngStream::from_seed(7, "bench");
            FixedExtentCurve::evaluate(&pop, 500, &mut rng).unsatisfiable_fraction()
        });
    });
    g.bench_function("flood_ttl5_regular4", |b| {
        let mut rng = RngStream::from_seed(8, "bench");
        let topo = Topology::random_regular(500, 4, &mut rng);
        b.iter(|| {
            let t = pop.sample_target(&mut rng);
            gnutella::flood(&topo, &pop, 0, 5, t).results
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_secs(1));
    targets = bench_guess_run, bench_baselines
}
criterion_main!(benches);
