//! End-to-end benchmarks: small complete simulation runs.
//!
//! These gauge full-system throughput per protocol configuration — the
//! numbers that govern how long the paper-scale `repro` sweeps take.
//! Plain `fn main()` harness (the offline build environment has no
//! criterion). Run with `cargo bench --bench experiments`.

use std::hint::black_box;
use std::time::Instant;

use gnutella::population::Population;
use gnutella::{FixedExtentCurve, Topology};
use guess::config::Config;
use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;
use simkit::rng::RngStream;
use simkit::time::SimDuration;
use workload::content::CatalogParams;

/// Times `iters` runs of `f` (after one warmup) and prints the mean.
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<42} {per_iter:>12.2?}/iter  ({iters} iters)");
}

fn small_cfg(seed: u64) -> Config {
    let mut cfg = Config::small_test(seed);
    cfg.run.duration = SimDuration::from_secs(250.0);
    cfg.run.warmup = SimDuration::from_secs(50.0);
    cfg
}

fn main() {
    bench("guess_sim_small/random_policies", 10, || {
        GuessSim::new(small_cfg(1)).expect("valid").run().queries
    });
    bench("guess_sim_small/mfs_policies", 10, || {
        let mut cfg = small_cfg(2);
        cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
        GuessSim::new(cfg).expect("valid").run().queries
    });
    bench("guess_sim_small/poisoned_20pct", 10, || {
        let mut cfg = small_cfg(3);
        cfg.system.bad_peer_fraction = 0.2;
        GuessSim::new(cfg).expect("valid").run().queries
    });

    let pop = Population::generate(500, CatalogParams::default(), 7).expect("valid");
    bench("forwarding/fixed_extent_curve_500x500", 10, || {
        let mut rng = RngStream::from_seed(7, "bench");
        FixedExtentCurve::evaluate(&pop, 500, &mut rng).unsatisfiable_fraction()
    });
    let mut rng = RngStream::from_seed(8, "bench");
    let topo = Topology::random_regular(500, 4, &mut rng);
    bench("forwarding/flood_ttl5_regular4", 1000, || {
        let t = pop.sample_target(&mut rng);
        gnutella::flood(&topo, &pop, 0, 5, t).results
    });
}
