//! Criterion micro-benchmarks for the simulator's hot paths.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use guess::addr::AddrAllocator;
use guess::entry::CacheEntry;
use guess::graph::largest_component;
use guess::link_cache::LinkCache;
use guess::policy::{select_top_k, ProbeQueue, ReplacementPolicy, SelectionPolicy};
use simkit::dist::{DiscreteDist, Zipf};
use simkit::event::EventQueue;
use simkit::rng::RngStream;
use simkit::time::SimTime;

fn entries(n: usize) -> Vec<CacheEntry> {
    let mut alloc = AddrAllocator::new();
    (0..n)
        .map(|i| CacheEntry::from_pong(alloc.allocate(), SimTime::from_secs(i as f64), (i % 500) as u32, (i % 7) as u32))
        .collect()
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u32 {
                q.schedule(SimTime::from_secs(f64::from(i % 97)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += u64::from(e);
            }
            sum
        });
    });
}

fn bench_link_cache_offer(c: &mut Criterion) {
    let es = entries(5000);
    c.bench_function("link_cache_offer_random_5k", |b| {
        b.iter_batched(
            || (LinkCache::new(100), RngStream::from_seed(1, "b")),
            |(mut cache, mut rng)| {
                for e in &es {
                    let _ = cache.offer(*e, ReplacementPolicy::Random, &mut rng);
                }
                cache.len()
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("link_cache_offer_lfs_5k", |b| {
        b.iter_batched(
            || (LinkCache::new(100), RngStream::from_seed(1, "b")),
            |(mut cache, mut rng)| {
                for e in &es {
                    let _ = cache.offer(*e, ReplacementPolicy::Lfs, &mut rng);
                }
                cache.len()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_policy_selection(c: &mut Criterion) {
    let es = entries(500);
    c.bench_function("select_top5_mfs_from_500", |b| {
        let mut rng = RngStream::from_seed(2, "b");
        b.iter(|| select_top_k(SelectionPolicy::Mfs, &es, 5, &mut rng));
    });
    c.bench_function("select_top5_random_from_500", |b| {
        let mut rng = RngStream::from_seed(2, "b");
        b.iter(|| select_top_k(SelectionPolicy::Random, &es, 5, &mut rng));
    });
    c.bench_function("probe_queue_churn_500", |b| {
        let mut rng = RngStream::from_seed(3, "b");
        b.iter(|| {
            let mut q = ProbeQueue::new(SelectionPolicy::Mr);
            for e in &es {
                q.push(*e, &mut rng);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        });
    });
}

fn bench_zipf(c: &mut Criterion) {
    let z = Zipf::new(20_000, 1.2).expect("valid");
    c.bench_function("zipf_sample_20k_ranks", |b| {
        let mut rng = RngStream::from_seed(4, "b");
        b.iter(|| z.sample_index(&mut rng));
    });
}

fn bench_connectivity(c: &mut Criterion) {
    let mut rng = RngStream::from_seed(5, "b");
    let n = 1000;
    let edges: Vec<(usize, usize)> = (0..20_000).map(|_| (rng.below(n), rng.below(n))).collect();
    c.bench_function("largest_component_1k_nodes_20k_edges", |b| {
        b.iter(|| largest_component(n, edges.iter().copied()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets =
    bench_event_queue,
    bench_link_cache_offer,
    bench_policy_selection,
    bench_zipf,
    bench_connectivity
}
criterion_main!(benches);
