//! Micro-benchmarks for the simulator's hot paths.
//!
//! Plain `fn main()` harness (the offline build environment has no
//! criterion): each benchmark runs a fixed number of timed iterations and
//! reports the mean per-iteration wall clock. Run with
//! `cargo bench --bench simulator`.

use std::hint::black_box;
use std::time::Instant;

use guess::addr::AddrAllocator;
use guess::entry::CacheEntry;
use guess::graph::largest_component;
use guess::link_cache::LinkCache;
use guess::policy::{select_top_k, ProbeQueue, ReplacementPolicy, SelectionPolicy};
use simkit::dist::{DiscreteDist, Zipf};
use simkit::event::EventQueue;
use simkit::rng::RngStream;
use simkit::time::SimTime;

/// Times `iters` runs of `f` (after one warmup) and prints the mean.
fn bench<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<42} {per_iter:>12.2?}/iter  ({iters} iters)");
}

fn entries(n: usize) -> Vec<CacheEntry> {
    let mut alloc = AddrAllocator::new();
    (0..n)
        .map(|i| {
            CacheEntry::from_pong(
                alloc.allocate(),
                SimTime::from_secs(i as f64),
                (i % 500) as u32,
                (i % 7) as u32,
            )
        })
        .collect()
}

fn main() {
    bench("event_queue_push_pop_10k", 100, || {
        let mut q = EventQueue::new();
        for i in 0..10_000u32 {
            q.schedule(SimTime::from_secs(f64::from(i % 97)), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum += u64::from(e);
        }
        sum
    });

    let es = entries(5000);
    bench("link_cache_offer_random_5k", 100, || {
        let mut cache = LinkCache::new(100);
        let mut rng = RngStream::from_seed(1, "b");
        for e in &es {
            let _ = cache.offer(*e, ReplacementPolicy::Random, &mut rng);
        }
        cache.len()
    });
    bench("link_cache_offer_lfs_5k", 100, || {
        let mut cache = LinkCache::new(100);
        let mut rng = RngStream::from_seed(1, "b");
        for e in &es {
            let _ = cache.offer(*e, ReplacementPolicy::Lfs, &mut rng);
        }
        cache.len()
    });

    let es500 = entries(500);
    let mut rng = RngStream::from_seed(2, "b");
    bench("select_top5_mfs_from_500", 2000, || {
        select_top_k(SelectionPolicy::Mfs, &es500, 5, &mut rng)
    });
    let mut rng = RngStream::from_seed(2, "b");
    bench("select_top5_random_from_500", 2000, || {
        select_top_k(SelectionPolicy::Random, &es500, 5, &mut rng)
    });
    let mut rng = RngStream::from_seed(3, "b");
    bench("probe_queue_churn_500", 1000, || {
        let mut q = ProbeQueue::new(SelectionPolicy::Mr);
        for e in &es500 {
            q.push(*e, &mut rng);
        }
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        n
    });

    let z = Zipf::new(20_000, 1.2).expect("valid");
    let mut rng = RngStream::from_seed(4, "b");
    bench("zipf_sample_20k_ranks", 100_000, || {
        z.sample_index(&mut rng)
    });

    let mut rng = RngStream::from_seed(5, "b");
    let n = 1000;
    let edges: Vec<(usize, usize)> = (0..20_000).map(|_| (rng.below(n), rng.below(n))).collect();
    bench("largest_component_1k_nodes_20k_edges", 100, || {
        largest_component(n, edges.iter().copied())
    });
}
