//! `repro bench` — the in-repo wall-clock benchmark harness.
//!
//! Runs fixed-seed workloads of each engine N times and reports the
//! minimum and median wall time plus kernel events per second. The
//! harness is hand-rolled (the offline build has no criterion): every
//! workload is a deterministic simulation, so between-run variance is
//! pure scheduler/allocator noise and min/median over a handful of
//! iterations is a stable signal.
//!
//! Results are emitted through the structured [`Report`] JSON as
//! `BENCH_<n>.json` files — the repo's perf trajectory, whose canonical
//! home is the repo root (the `repro bench` default out dir).
//! `BENCH_0.json` (pre-optimization), `BENCH_1.json` (post
//! slab/calendar-queue pass), `BENCH_2.json` (post wavefront-flood
//! rewrite), `BENCH_3.json` (arena memory layout, first carrying
//! `bytes_per_peer` and the `guess-1m` row), and `BENCH_4.json` (the
//! lane-partitioned parallel kernel, first carrying the `cores` and
//! `threads` columns and the `--threads` sweep's `<workload>@t<N>`
//! rows) are committed baselines; the `BENCH_*.json` gitignore pattern
//! keeps ad-hoc runs untracked.
//! `scripts/verify.sh` replays the quick workloads and fails on a >2×
//! median regression against the committed baseline — both on the
//! aggregate matrix and per-engine via `--only <workload>`.

use std::time::Instant;

use crate::report::{Cell, Report, TableBlock};
use crate::scale::{base_config, Scale};
use simkit::sim::{Runnable, SimReport};

/// Fixed master seed for every bench workload. Changing it invalidates
/// wall-time comparisons across BENCH_* generations, so don't.
const BENCH_SEED: u64 = 0xBE7C;

/// Measured outcome of one workload.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload id, e.g. `guess-full`.
    pub name: String,
    /// Engine name (`guess`, `gnutella`, `gossip`).
    pub engine: &'static str,
    /// Scale label (`Full` or `Quick`).
    pub scale: Scale,
    /// Timed iterations.
    pub iters: usize,
    /// Kernel events processed per iteration (identical across
    /// iterations — the workloads are deterministic).
    pub events: u64,
    /// Fastest iteration, seconds.
    pub min_secs: f64,
    /// Median iteration, seconds.
    pub median_secs: f64,
    /// Simulated peers in the workload's network.
    pub peers: usize,
    /// Peak heap growth of the first iteration divided by `peers` —
    /// the engine's large-N memory footprint (see
    /// [`crate::alloc_meter`]).
    pub bytes_per_peer: u64,
    /// Worker threads this row ran with. `1` is the serial kernel —
    /// the path every earlier BENCH generation measured; `> 1` runs
    /// the lane-partitioned parallel kernel ([`BENCH_LANES`] lanes).
    pub threads: usize,
}

impl BenchResult {
    /// Kernel events per second at the median wall time.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.median_secs > 0.0 {
            self.events as f64 / self.median_secs
        } else {
            0.0
        }
    }
}

/// Runs one built simulator to completion and returns its kernel event
/// count — the engine-generic dispatch the unified [`Runnable`] /
/// [`SimReport`] surface provides; the workload closures below differ
/// only in how they build their config.
fn events_of<S: Runnable>(sim: S) -> u64
where
    S::Report: SimReport,
{
    sim.run().events_processed()
}

/// Lane count used by every threaded (`--threads > 1`) bench row.
/// Fixed independently of the thread count so a row's simulated
/// trajectory is addressed by `(seed, lanes)` alone and thread-scaling
/// rows differ only in wall-clock.
pub const BENCH_LANES: usize = 8;

/// One benchmarkable workload: a name plus a closure that runs the
/// simulation once with a given worker-thread budget and returns the
/// kernel event count. `threads = 1` is the serial path — the exact
/// bytes every earlier BENCH generation measured.
struct Workload {
    name: &'static str,
    engine: &'static str,
    scale: Scale,
    /// Simulated peers — the denominator of `bytes_per_peer`.
    peers: usize,
    /// Whether the engine has a lane decomposition; `false` (gnutella,
    /// whose floods traverse one shared overlay) skips threaded rows.
    lanes: bool,
    run: Box<dyn Fn(usize) -> u64>,
}

/// The workload matrix. Quick rows come first so `--quick` (used by the
/// CI smoke gate) is a prefix of the full matrix.
fn workloads(quick_only: bool) -> Vec<Workload> {
    let mut list = Vec::new();
    for scale in [Scale::Quick, Scale::Full] {
        if quick_only && scale == Scale::Full {
            continue;
        }
        list.push(Workload {
            name: match scale {
                Scale::Quick => "guess-quick",
                Scale::Full => "guess-full",
            },
            engine: "guess",
            scale,
            peers: base_config(scale, BENCH_SEED).system.network_size,
            lanes: true,
            run: Box::new(move |threads| {
                let mut cfg = base_config(scale, BENCH_SEED);
                if threads > 1 {
                    cfg.run.lanes = BENCH_LANES;
                }
                guess::run_lanes(cfg, threads)
                    .expect("bench config validates")
                    .events_processed
            }),
        });
        list.push(Workload {
            name: match scale {
                Scale::Quick => "gnutella-quick",
                Scale::Full => "gnutella-full",
            },
            engine: "gnutella",
            scale,
            peers: gnutella::dynamic::GnutellaConfig::default().network_size,
            lanes: false,
            run: Box::new(move |_threads| {
                let cfg = gnutella::dynamic::GnutellaConfig::default()
                    .with_duration(scale.duration())
                    .with_warmup(scale.warmup())
                    .with_seed(BENCH_SEED);
                events_of(cfg.build().expect("bench config validates"))
            }),
        });
        list.push(Workload {
            name: match scale {
                Scale::Quick => "gossip-quick",
                Scale::Full => "gossip-full",
            },
            engine: "gossip",
            scale,
            peers: gossip::Config::default().network_size,
            lanes: true,
            run: Box::new(move |threads| {
                let mut cfg = gossip::Config::default()
                    .with_seed(BENCH_SEED)
                    .with_duration(scale.duration())
                    .with_warmup(scale.warmup());
                if threads > 1 {
                    cfg = cfg.with_lanes(BENCH_LANES);
                }
                gossip::run_lanes(cfg, threads)
                    .expect("bench config validates")
                    .events_processed
            }),
        });
    }
    if !quick_only {
        // Million-peer GUESS run: the large-N memory-layout showcase.
        // Maintenance-only (queries off) over a short horizon — the
        // point is arena footprint (`bytes_per_peer`) and that a
        // million-peer network populates, churns, and samples (the
        // stride-sampled metrics path engages above the 50k threshold).
        list.push(Workload {
            name: "guess-1m",
            engine: "guess",
            scale: Scale::Full,
            peers: MILLION,
            lanes: true,
            run: Box::new(|threads| {
                let mut cfg = million_peer_config();
                if threads > 1 {
                    cfg.run.lanes = BENCH_LANES;
                }
                guess::run_lanes(cfg, threads)
                    .expect("valid config")
                    .events_processed
            }),
        });
    }
    list
}

const MILLION: usize = 1_000_000;

/// The `guess-1m` configuration: paper-default protocol parameters at
/// `NetworkSize = 1e6`, queries off, a 120-second horizon.
fn million_peer_config() -> guess::config::Config {
    let mut cfg = base_config(Scale::Full, BENCH_SEED).with_network_size(MILLION);
    cfg.run.duration = simkit::time::SimDuration::from_secs(120.0);
    cfg.run.warmup = simkit::time::SimDuration::from_secs(30.0);
    cfg.run.simulate_queries = false;
    cfg
}

/// Median of already-measured wall times (mean of the middle pair for
/// even counts).
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// The workload names in matrix order — what `--only` accepts.
#[must_use]
pub fn workload_names(quick_only: bool) -> Vec<&'static str> {
    workloads(quick_only).iter().map(|w| w.name).collect()
}

/// Runs the workload matrix `iters` times each and returns the measured
/// results in matrix order. A non-empty `only` restricts the run to the
/// named workloads (matrix order is preserved; unknown names are an
/// error so typos cannot silently skip a gate). Each workload runs once
/// per entry of `threads` (`[1]` is the classic serial matrix): the
/// `1`-thread row keeps the workload's plain name, threaded rows are
/// suffixed `@t<N>` and run the lane-partitioned kernel with
/// [`BENCH_LANES`] lanes. Engines without a lane decomposition
/// (gnutella) skip threaded rows with a note. Prints one progress line
/// per row as it completes (the full matrix takes minutes).
///
/// # Errors
///
/// Returns the offending name when `only` lists an unknown workload.
pub fn run_workloads(
    quick_only: bool,
    iters: usize,
    only: &[String],
    threads: &[usize],
) -> Result<Vec<BenchResult>, String> {
    let iters = iters.max(1);
    let threads = if threads.is_empty() {
        &[1][..]
    } else {
        threads
    };
    let matrix = workloads(quick_only);
    for name in only {
        if !matrix.iter().any(|w| w.name == name) {
            return Err(format!(
                "unknown workload '{name}' (available: {})",
                matrix.iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
            ));
        }
    }
    let mut results = Vec::new();
    for w in matrix {
        if !only.is_empty() && !only.iter().any(|n| n == w.name) {
            continue;
        }
        for &t in threads {
            let t = t.max(1);
            if t > 1 && !w.lanes {
                println!(
                    "  {:<16} skipped at {t} threads (no lane decomposition)",
                    w.name
                );
                continue;
            }
            let name = if t == 1 {
                w.name.to_string()
            } else {
                format!("{}@t{t}", w.name)
            };
            let mut walls = Vec::with_capacity(iters);
            let mut events = 0u64;
            let mut bytes_per_peer = 0u64;
            for i in 0..iters {
                // Meter the first iteration only: the peak heap growth
                // over the pre-run level is the simulation's working set
                // (later iterations see allocator reuse and would
                // under-read).
                let metered_from = crate::alloc_meter::current_bytes();
                if i == 0 {
                    crate::alloc_meter::reset_peak();
                }
                let started = Instant::now();
                let got = (w.run)(t);
                walls.push(started.elapsed().as_secs_f64());
                if i == 0 {
                    events = got;
                    let grown = crate::alloc_meter::peak_bytes().saturating_sub(metered_from);
                    bytes_per_peer = grown as u64 / w.peers.max(1) as u64;
                } else {
                    debug_assert_eq!(got, events, "bench workloads must be deterministic");
                }
            }
            walls.sort_by(f64::total_cmp);
            let r = BenchResult {
                name,
                engine: w.engine,
                scale: w.scale,
                iters,
                events,
                min_secs: walls[0],
                median_secs: median(&walls),
                peers: w.peers,
                bytes_per_peer,
                threads: t,
            };
            println!(
                "  {:<20} {:>10} events  min {:>8.3}s  median {:>8.3}s  {:>12.0} events/s  {:>8} B/peer",
                r.name,
                r.events,
                r.min_secs,
                r.median_secs,
                r.events_per_sec(),
                r.bytes_per_peer
            );
            results.push(r);
        }
    }
    Ok(results)
}

/// Logical CPUs of the host running the bench — recorded in every row
/// so thread-scaling numbers carry their hardware context.
#[must_use]
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Assembles bench results into a structured [`Report`]; the JSON form
/// of this report is the `BENCH_<n>.json` schema (see EXPERIMENTS.md).
#[must_use]
pub fn build_report(results: &[BenchResult]) -> Report {
    let mut t = TableBlock::new(
        "bench",
        vec![
            "workload",
            "engine",
            "scale",
            "iters",
            "events",
            "min_s",
            "median_s",
            "events_per_s",
            "peers",
            "bytes_per_peer",
            "cores",
            "threads",
        ],
    );
    let cores = host_cores();
    for r in results {
        t.row(vec![
            Cell::text(&r.name),
            Cell::text(r.engine),
            Cell::text(format!("{:?}", r.scale)),
            Cell::size(r.iters),
            Cell::uint(r.events),
            Cell::float(r.min_secs, 4),
            Cell::float(r.median_secs, 4),
            Cell::float(r.events_per_sec(), 0),
            Cell::size(r.peers),
            Cell::uint(r.bytes_per_peer),
            Cell::size(cores),
            Cell::size(r.threads),
        ]);
    }
    Report::new()
        .text(
            "Fixed-seed engine workloads; wall-clock min/median over N runs.\n\
             Deterministic workloads: events per iteration are identical.\n\n",
        )
        .table(t)
}

/// The smallest `n` such that `BENCH_<n>.json` does not yet exist in
/// `dir` — the next slot in the perf trajectory.
#[must_use]
pub fn next_bench_index(dir: &std::path::Path) -> u32 {
    let mut n = 0u32;
    while dir.join(format!("BENCH_{n}.json")).exists() {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[1.0, 2.0, 9.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 9.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quick_matrix_is_a_prefix_of_the_full_matrix() {
        let quick: Vec<&str> = workloads(true).iter().map(|w| w.name).collect();
        let all: Vec<&str> = workloads(false).iter().map(|w| w.name).collect();
        assert_eq!(quick.len(), 3);
        assert_eq!(all.len(), 7);
        assert_eq!(&all[..quick.len()], &quick[..]);
    }

    #[test]
    fn million_peer_workload_is_full_only_and_validates() {
        assert!(!workloads(true).iter().any(|w| w.name == "guess-1m"));
        let w = workloads(false)
            .into_iter()
            .find(|w| w.name == "guess-1m")
            .expect("full matrix carries guess-1m");
        assert_eq!(w.peers, MILLION);
        let cfg = million_peer_config();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.system.network_size, MILLION);
        assert!(!cfg.run.simulate_queries);
        assert!(
            cfg.run.metrics_sample_threshold < MILLION,
            "the million-peer run must exercise the sampled-metrics path"
        );
    }

    #[test]
    fn report_rows_match_results() {
        let r = BenchResult {
            name: "guess-quick".into(),
            engine: "guess",
            scale: Scale::Quick,
            iters: 3,
            events: 1000,
            min_secs: 0.5,
            median_secs: 0.8,
            peers: 1000,
            bytes_per_peer: 512,
            threads: 1,
        };
        assert!((r.events_per_sec() - 1250.0).abs() < 1e-9);
        let report = build_report(std::slice::from_ref(&r));
        let json = report.render_json("bench", "wall-clock benchmark", "Quick");
        let expected = format!(
            "\"guess-quick\", \"guess\", \"Quick\", 3, 1000, 0.5000, 0.8000, 1250, 1000, 512, {}, 1",
            host_cores()
        );
        assert!(json.contains(&expected), "row missing from {json}");
    }

    #[test]
    fn next_index_skips_existing_files() {
        let dir = std::env::temp_dir().join(format!("bench-idx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_bench_index(&dir), 0);
        std::fs::write(dir.join("BENCH_0.json"), "{}").unwrap();
        assert_eq!(next_bench_index(&dir), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
