//! `repro bench` — the in-repo wall-clock benchmark harness.
//!
//! Runs fixed-seed workloads of each engine N times and reports the
//! minimum and median wall time plus kernel events per second. The
//! harness is hand-rolled (the offline build has no criterion): every
//! workload is a deterministic simulation, so between-run variance is
//! pure scheduler/allocator noise and min/median over a handful of
//! iterations is a stable signal.
//!
//! Results are emitted through the structured [`Report`] JSON as
//! `BENCH_<n>.json` files — the repo's perf trajectory. `BENCH_0.json`
//! (pre-optimization), `BENCH_1.json` (post slab/calendar-queue pass),
//! and `BENCH_2.json` (post wavefront-flood rewrite) are committed
//! baselines; ad-hoc output directories are gitignored.
//! `scripts/verify.sh` replays the quick workloads and fails on a >2×
//! median regression against the committed baseline — both on the
//! aggregate matrix and per-engine via `--only <workload>`.

use std::time::Instant;

use crate::report::{Cell, Report, TableBlock};
use crate::scale::{base_config, Scale};
use simkit::sim::{Runnable, SimReport};

/// Fixed master seed for every bench workload. Changing it invalidates
/// wall-time comparisons across BENCH_* generations, so don't.
const BENCH_SEED: u64 = 0xBE7C;

/// Measured outcome of one workload.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload id, e.g. `guess-full`.
    pub name: String,
    /// Engine name (`guess`, `gnutella`, `gossip`).
    pub engine: &'static str,
    /// Scale label (`Full` or `Quick`).
    pub scale: Scale,
    /// Timed iterations.
    pub iters: usize,
    /// Kernel events processed per iteration (identical across
    /// iterations — the workloads are deterministic).
    pub events: u64,
    /// Fastest iteration, seconds.
    pub min_secs: f64,
    /// Median iteration, seconds.
    pub median_secs: f64,
}

impl BenchResult {
    /// Kernel events per second at the median wall time.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.median_secs > 0.0 {
            self.events as f64 / self.median_secs
        } else {
            0.0
        }
    }
}

/// Runs one built simulator to completion and returns its kernel event
/// count — the engine-generic dispatch the unified [`Runnable`] /
/// [`SimReport`] surface provides; the workload closures below differ
/// only in how they build their config.
fn events_of<S: Runnable>(sim: S) -> u64
where
    S::Report: SimReport,
{
    sim.run().events_processed()
}

/// One benchmarkable workload: a name plus a closure that runs the
/// simulation once and returns the kernel event count.
struct Workload {
    name: &'static str,
    engine: &'static str,
    scale: Scale,
    run: Box<dyn Fn() -> u64>,
}

/// The workload matrix. Quick rows come first so `--quick` (used by the
/// CI smoke gate) is a prefix of the full matrix.
fn workloads(quick_only: bool) -> Vec<Workload> {
    let mut list = Vec::new();
    for scale in [Scale::Quick, Scale::Full] {
        if quick_only && scale == Scale::Full {
            continue;
        }
        list.push(Workload {
            name: match scale {
                Scale::Quick => "guess-quick",
                Scale::Full => "guess-full",
            },
            engine: "guess",
            scale,
            run: Box::new(move || {
                let cfg = base_config(scale, BENCH_SEED);
                events_of(cfg.build().expect("bench config validates"))
            }),
        });
        list.push(Workload {
            name: match scale {
                Scale::Quick => "gnutella-quick",
                Scale::Full => "gnutella-full",
            },
            engine: "gnutella",
            scale,
            run: Box::new(move || {
                let cfg = gnutella::dynamic::GnutellaConfig::default()
                    .with_duration(scale.duration())
                    .with_warmup(scale.warmup())
                    .with_seed(BENCH_SEED);
                events_of(cfg.build().expect("bench config validates"))
            }),
        });
        list.push(Workload {
            name: match scale {
                Scale::Quick => "gossip-quick",
                Scale::Full => "gossip-full",
            },
            engine: "gossip",
            scale,
            run: Box::new(move || {
                let cfg = gossip::Config::default()
                    .with_seed(BENCH_SEED)
                    .with_duration(scale.duration())
                    .with_warmup(scale.warmup());
                events_of(cfg.build().expect("bench config validates"))
            }),
        });
    }
    list
}

/// Median of already-measured wall times (mean of the middle pair for
/// even counts).
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// The workload names in matrix order — what `--only` accepts.
#[must_use]
pub fn workload_names(quick_only: bool) -> Vec<&'static str> {
    workloads(quick_only).iter().map(|w| w.name).collect()
}

/// Runs the workload matrix `iters` times each and returns the measured
/// results in matrix order. A non-empty `only` restricts the run to the
/// named workloads (matrix order is preserved; unknown names are an
/// error so typos cannot silently skip a gate). Prints one progress
/// line per workload as it completes (the full matrix takes minutes).
///
/// # Errors
///
/// Returns the offending name when `only` lists an unknown workload.
pub fn run_workloads(
    quick_only: bool,
    iters: usize,
    only: &[String],
) -> Result<Vec<BenchResult>, String> {
    let iters = iters.max(1);
    let matrix = workloads(quick_only);
    for name in only {
        if !matrix.iter().any(|w| w.name == name) {
            return Err(format!(
                "unknown workload '{name}' (available: {})",
                matrix.iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
            ));
        }
    }
    let mut results = Vec::new();
    for w in matrix {
        if !only.is_empty() && !only.iter().any(|n| n == w.name) {
            continue;
        }
        let mut walls = Vec::with_capacity(iters);
        let mut events = 0u64;
        for i in 0..iters {
            let started = Instant::now();
            let got = (w.run)();
            walls.push(started.elapsed().as_secs_f64());
            if i == 0 {
                events = got;
            } else {
                debug_assert_eq!(got, events, "bench workloads must be deterministic");
            }
        }
        walls.sort_by(f64::total_cmp);
        let r = BenchResult {
            name: w.name.to_string(),
            engine: w.engine,
            scale: w.scale,
            iters,
            events,
            min_secs: walls[0],
            median_secs: median(&walls),
        };
        println!(
            "  {:<16} {:>10} events  min {:>8.3}s  median {:>8.3}s  {:>12.0} events/s",
            r.name,
            r.events,
            r.min_secs,
            r.median_secs,
            r.events_per_sec()
        );
        results.push(r);
    }
    Ok(results)
}

/// Assembles bench results into a structured [`Report`]; the JSON form
/// of this report is the `BENCH_<n>.json` schema (see EXPERIMENTS.md).
#[must_use]
pub fn build_report(results: &[BenchResult]) -> Report {
    let mut t = TableBlock::new(
        "bench",
        vec![
            "workload",
            "engine",
            "scale",
            "iters",
            "events",
            "min_s",
            "median_s",
            "events_per_s",
        ],
    );
    for r in results {
        t.row(vec![
            Cell::text(&r.name),
            Cell::text(r.engine),
            Cell::text(format!("{:?}", r.scale)),
            Cell::size(r.iters),
            Cell::uint(r.events),
            Cell::float(r.min_secs, 4),
            Cell::float(r.median_secs, 4),
            Cell::float(r.events_per_sec(), 0),
        ]);
    }
    Report::new()
        .text(
            "Fixed-seed engine workloads; wall-clock min/median over N runs.\n\
             Deterministic workloads: events per iteration are identical.\n\n",
        )
        .table(t)
}

/// The smallest `n` such that `BENCH_<n>.json` does not yet exist in
/// `dir` — the next slot in the perf trajectory.
#[must_use]
pub fn next_bench_index(dir: &std::path::Path) -> u32 {
    let mut n = 0u32;
    while dir.join(format!("BENCH_{n}.json")).exists() {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[1.0, 2.0, 9.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 9.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quick_matrix_is_a_prefix_of_the_full_matrix() {
        let quick: Vec<&str> = workloads(true).iter().map(|w| w.name).collect();
        let all: Vec<&str> = workloads(false).iter().map(|w| w.name).collect();
        assert_eq!(quick.len(), 3);
        assert_eq!(all.len(), 6);
        assert_eq!(&all[..quick.len()], &quick[..]);
    }

    #[test]
    fn report_rows_match_results() {
        let r = BenchResult {
            name: "guess-quick".into(),
            engine: "guess",
            scale: Scale::Quick,
            iters: 3,
            events: 1000,
            min_secs: 0.5,
            median_secs: 0.8,
        };
        assert!((r.events_per_sec() - 1250.0).abs() < 1e-9);
        let report = build_report(std::slice::from_ref(&r));
        let json = report.render_json("bench", "wall-clock benchmark", "Quick");
        assert!(
            json.contains("\"guess-quick\", \"guess\", \"Quick\", 3, 1000, 0.5000, 0.8000, 1250")
        );
    }

    #[test]
    fn next_index_skips_existing_files() {
        let dir = std::env::temp_dir().join(format!("bench-idx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_bench_index(&dir), 0);
        std::fs::write(dir.join("BENCH_0.json"), "{}").unwrap();
        assert_eq!(next_bench_index(&dir), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
