//! A JSONL file sink for simulation traces.
//!
//! [`JsonlSink`] implements [`TraceSink`] by writing one JSON object per
//! record to any `Write` target while tallying the same totals a
//! [`CountingSink`] would, so a traced run can be reconciled against its
//! [`RunReport`](guess::metrics::RunReport) after the fact. The JSON is
//! emitted by hand with the same escaping rules as the experiment
//! reports (the build environment is offline, so no serde).
//!
//! One line per record — see EXPERIMENTS.md for the full schema:
//!
//! ```json
//! {"t": 612.5, "type": "probe", "query": 41, "target": 900, "kind": "query", "outcome": "good"}
//! ```

use std::io::{self, Write};

use simkit::time::SimTime;
use simkit::trace::{CountingSink, TraceRecord, TraceSink, NO_QUERY};

use crate::report::json_string;

/// A trace sink that streams records as JSON Lines.
///
/// Writes go through the wrapped writer unbuffered from this type's
/// point of view — hand a `BufWriter` in for file targets. I/O errors
/// are sticky: the first failure is kept in [`JsonlSink::io_error`] and
/// later records are dropped (simulations do not unwind mid-event).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    /// Tally of everything written, for reconciliation.
    pub counts: CountingSink,
    /// Lines successfully written.
    pub lines: u64,
    /// The first write error, if any occurred.
    pub io_error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            counts: CountingSink::new(),
            lines: 0,
            io_error: None,
        }
    }

    /// Flushes and returns the writer, the tally, and any sticky error.
    pub fn finish(mut self) -> (W, CountingSink, Option<io::Error>) {
        if self.io_error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.io_error = Some(e);
            }
        }
        (self.writer, self.counts, self.io_error)
    }

    fn render(at: SimTime, rec: &TraceRecord) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t\": ");
        out.push_str(&format!("{}", at.as_secs()));
        out.push_str(", \"type\": ");
        match rec {
            TraceRecord::PeerJoin { peer } => {
                json_string("peer_join", &mut out);
                out.push_str(&format!(", \"peer\": {peer}"));
            }
            TraceRecord::PeerDeath { peer } => {
                json_string("peer_death", &mut out);
                out.push_str(&format!(", \"peer\": {peer}"));
            }
            TraceRecord::QueryStart { query, origin } => {
                json_string("query_start", &mut out);
                out.push_str(&format!(", \"query\": {query}, \"origin\": {origin}"));
            }
            TraceRecord::Probe {
                query,
                target,
                kind,
                outcome,
            } => {
                json_string("probe", &mut out);
                if *query == NO_QUERY {
                    out.push_str(", \"query\": null");
                } else {
                    out.push_str(&format!(", \"query\": {query}"));
                }
                out.push_str(&format!(", \"target\": {target}, \"kind\": "));
                json_string(kind.name(), &mut out);
                out.push_str(", \"outcome\": ");
                json_string(outcome.name(), &mut out);
            }
            TraceRecord::QueryEnd {
                query,
                satisfied,
                probes,
                results,
            } => {
                json_string("query_end", &mut out);
                out.push_str(&format!(
                    ", \"query\": {query}, \"satisfied\": {satisfied}, \
                     \"probes\": {probes}, \"results\": {results}"
                ));
            }
            TraceRecord::CacheEvict { owner, evicted } => {
                json_string("cache_evict", &mut out);
                out.push_str(&format!(", \"owner\": {owner}, \"evicted\": {evicted}"));
            }
            TraceRecord::Sample { live } => {
                json_string("sample", &mut out);
                out.push_str(&format!(", \"live\": {live}"));
            }
        }
        out.push_str("}\n");
        out
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, at: SimTime, rec: TraceRecord) {
        self.counts.record(at, rec);
        if self.io_error.is_some() {
            return;
        }
        let line = Self::render(at, &rec);
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.io_error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::trace::{ProbeKind, ProbeOutcome};

    fn emit_all(sink: &mut JsonlSink<Vec<u8>>) {
        let t = SimTime::from_secs(1.5);
        sink.record(t, TraceRecord::PeerJoin { peer: 3 });
        sink.record(t, TraceRecord::PeerDeath { peer: 3 });
        sink.record(
            t,
            TraceRecord::QueryStart {
                query: 0,
                origin: 7,
            },
        );
        sink.record(
            t,
            TraceRecord::Probe {
                query: 0,
                target: 9,
                kind: ProbeKind::Query,
                outcome: ProbeOutcome::Good,
            },
        );
        sink.record(
            t,
            TraceRecord::Probe {
                query: NO_QUERY,
                target: 9,
                kind: ProbeKind::Ping,
                outcome: ProbeOutcome::Dead,
            },
        );
        sink.record(
            t,
            TraceRecord::QueryEnd {
                query: 0,
                satisfied: true,
                probes: 2,
                results: 1,
            },
        );
        sink.record(
            t,
            TraceRecord::CacheEvict {
                owner: 1,
                evicted: 2,
            },
        );
        sink.record(t, TraceRecord::Sample { live: 50 });
    }

    #[test]
    fn one_line_per_record_with_expected_fields() {
        let mut sink = JsonlSink::new(Vec::new());
        emit_all(&mut sink);
        let (buf, counts, err) = sink.finish();
        assert!(err.is_none());
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        assert_eq!(counts.total(), 8);
        assert!(lines[0].contains("\"type\": \"peer_join\""));
        assert!(lines[3].contains("\"kind\": \"query\""));
        assert!(lines[3].contains("\"outcome\": \"good\""));
        // Maintenance pings carry a null query id, not the sentinel.
        assert!(lines[4].contains("\"query\": null"));
        assert!(!lines[4].contains(&NO_QUERY.to_string()));
        assert!(lines[5].contains("\"satisfied\": true"));
        assert!(lines[7].contains("\"live\": 50"));
        for l in &lines {
            assert!(l.starts_with("{\"t\": 1.5, "), "bad line {l}");
            assert!(l.ends_with('}'), "bad line {l}");
        }
    }

    #[test]
    fn tally_matches_a_plain_counting_sink() {
        let mut sink = JsonlSink::new(Vec::new());
        emit_all(&mut sink);
        let mut plain = CountingSink::new();
        let t = SimTime::from_secs(1.5);
        plain.record(t, TraceRecord::PeerJoin { peer: 3 });
        assert_eq!(sink.counts.joins, plain.joins);
        assert_eq!(sink.counts.query_probes, 1);
        assert_eq!(sink.counts.ping_probes, 1);
        assert_eq!(sink.lines, 8);
    }
}
