//! Scratch: sweep catalog parameters to hit the paper's calibration
//! targets at N=1000: ~6% unsatisfiable floor and ~40-50 mean first-hit
//! rank for answerable queries (which drives Random-policy probe cost).
//!
//! Accepts `--jobs N` (default: all cores); each combo is an independent
//! work unit, and lines print in combo order regardless of N.

use gnutella::population::Population;
use gnutella::FixedExtentCurve;
use guess_bench::runner::Ctx;
use guess_bench::scale::Scale;
use simkit::rng::RngStream;
use workload::content::CatalogParams;

fn main() {
    let ctx = Ctx::new(Scale::Quick, guess_bench::jobs_from_args());
    let combos = vec![
        (25_000, 0.95, 1.25),
        (20_000, 1.00, 1.25),
        (30_000, 0.90, 1.30),
        (25_000, 0.90, 1.25),
        (20_000, 0.95, 1.20),
        (25_000, 1.00, 1.30),
        (10_000, 0.80, 1.05),
        (10_000, 0.90, 1.10),
        (20_000, 0.90, 1.20),
        (8_000, 0.80, 1.00),
        (5_000, 0.70, 1.00),
        (5_000, 0.80, 0.95),
        (12_000, 1.00, 1.15),
        (15_000, 0.95, 1.25),
    ];
    let lines = ctx.map(combos, |(items, rep, query)| {
        let params = CatalogParams { items, replication_exponent: rep, query_exponent: query };
        let pop = Population::generate(1000, params, 7).unwrap();
        let mut rng = RngStream::from_seed(7, "sweep");
        let curve = FixedExtentCurve::evaluate(&pop, 3000, &mut rng);
        let floor = curve.unsatisfiable_fraction();
        // Mean first-hit rank over answerable queries approximates the
        // satisfied-query probe cost under Random probing.
        let mut ranks = 0usize;
        let mut n = 0usize;
        for e in 1..=1000 {
            // histogram trick: unsat(e-1) - unsat(e) = fraction with rank e
            let f = curve.unsatisfaction_at(e - 1) - curve.unsatisfaction_at(e);
            ranks += (f * 3000.0).round() as usize * e;
            if f > 0.0 {
                n += (f * 3000.0).round() as usize;
            }
        }
        let mean_rank = ranks as f64 / n.max(1) as f64;
        format!(
            "items={items:6} rep={rep:.2} query={query:.2}  floor={floor:.3}  mean_first_hit={mean_rank:.1}  unsat@100={:.3}",
            curve.unsatisfaction_at(100)
        )
    });
    for line in lines {
        println!("{line}");
    }
}
