//! Scratch calibration binary: checks the default configuration against
//! the paper's headline numbers before the full experiment harness runs.

use guess::config::Config;
use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;
use gnutella::population::Population;
use gnutella::FixedExtentCurve;
use simkit::rng::RngStream;
use workload::content::CatalogParams;

fn main() {
    // 1. Unsatisfiable floor at N=1000 (paper: ~6%).
    let pop = Population::generate(1000, CatalogParams::default(), 1).unwrap();
    let mut rng = RngStream::from_seed(1, "cal");
    let curve = FixedExtentCurve::evaluate(&pop, 2000, &mut rng);
    println!("floor (whole-network unsatisfiable): {:.3}", curve.unsatisfiable_fraction());
    println!("fixed extent 540: unsat {:.3}", curve.unsatisfaction_at(540));
    println!("fixed extent 1000: unsat {:.3}", curve.unsatisfaction_at(1000));

    // 2. GUESS with default (Random) policies.
    let cfg = Config::default();
    let report = GuessSim::new(cfg.clone()).unwrap().run();
    println!(
        "GUESS Random: probes/query {:.1} (good {:.1} dead {:.1} refused {:.2}), unsat {:.3}, queries {}",
        report.probes_per_query(),
        report.good_per_query(),
        report.dead_per_query(),
        report.refused_per_query(),
        report.unsatisfaction(),
        report.queries
    );
    println!(
        "  live frac {:.3} live abs {:.1}",
        report.live_fraction.unwrap_or(-1.0),
        report.live_absolute.unwrap_or(-1.0)
    );

    // 3. GUESS with QueryPong = MFS (paper: ~17 probes, 8% unsat).
    let mut cfg2 = Config::default();
    cfg2.protocol.query_pong = SelectionPolicy::Mfs;
    let r2 = GuessSim::new(cfg2).unwrap().run();
    println!(
        "GUESS QueryPong=MFS: probes/query {:.1}, unsat {:.3}",
        r2.probes_per_query(),
        r2.unsatisfaction()
    );

    // 4. MFS/MFS/LFS combo (paper fig 10/11: ~4 probes at 0% bad).
    let mut cfg3 = Config::default();
    cfg3.protocol = cfg3.protocol.with_uniform_policy(SelectionPolicy::Mfs);
    let r3 = GuessSim::new(cfg3).unwrap().run();
    println!(
        "GUESS MFS/MFS/LFS: probes/query {:.1}, unsat {:.3}",
        r3.probes_per_query(),
        r3.unsatisfaction()
    );
}
