//! Scratch calibration binary: checks the default configuration against
//! the paper's headline numbers before the full experiment harness runs.
//!
//! Accepts `--jobs N` (default: all cores); the four checks are
//! independent work units and print in a fixed order regardless of N.

use gnutella::population::Population;
use gnutella::FixedExtentCurve;
use guess::config::Config;
use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;
use guess_bench::runner::Ctx;
use guess_bench::scale::Scale;
use simkit::rng::RngStream;
use simkit::sim::Runnable;
use workload::content::CatalogParams;

fn main() {
    let ctx = Ctx::new(Scale::Full, guess_bench::jobs_from_args());
    let parts = ctx.map(vec![0usize, 1, 2, 3], |part| match part {
        0 => {
            // 1. Unsatisfiable floor at N=1000 (paper: ~6%).
            let pop = Population::generate(1000, CatalogParams::default(), 1).unwrap();
            let mut rng = RngStream::from_seed(1, "cal");
            let curve = FixedExtentCurve::evaluate(&pop, 2000, &mut rng);
            format!(
                "floor (whole-network unsatisfiable): {:.3}\n\
                 fixed extent 540: unsat {:.3}\n\
                 fixed extent 1000: unsat {:.3}",
                curve.unsatisfiable_fraction(),
                curve.unsatisfaction_at(540),
                curve.unsatisfaction_at(1000)
            )
        }
        1 => {
            // 2. GUESS with default (Random) policies.
            let report = GuessSim::new(Config::default()).unwrap().run();
            format!(
                "GUESS Random: probes/query {:.1} (good {:.1} dead {:.1} refused {:.2}), unsat {:.3}, queries {}\n  \
                 live frac {:.3} live abs {:.1}",
                report.probes_per_query(),
                report.good_per_query(),
                report.dead_per_query(),
                report.refused_per_query(),
                report.unsatisfaction(),
                report.queries,
                report.live_fraction.unwrap_or(-1.0),
                report.live_absolute.unwrap_or(-1.0)
            )
        }
        2 => {
            // 3. GUESS with QueryPong = MFS (paper: ~17 probes, 8% unsat).
            let cfg = Config::default().with_query_pong(SelectionPolicy::Mfs);
            let r = GuessSim::new(cfg).unwrap().run();
            format!(
                "GUESS QueryPong=MFS: probes/query {:.1}, unsat {:.3}",
                r.probes_per_query(),
                r.unsatisfaction()
            )
        }
        _ => {
            // 4. MFS/MFS/LFS combo (paper fig 10/11: ~4 probes at 0% bad).
            let cfg = Config::default().with_uniform_policy(SelectionPolicy::Mfs);
            let r = GuessSim::new(cfg).unwrap().run();
            format!(
                "GUESS MFS/MFS/LFS: probes/query {:.1}, unsat {:.3}",
                r.probes_per_query(),
                r.unsatisfaction()
            )
        }
    });
    for part in parts {
        println!("{part}");
    }
}
