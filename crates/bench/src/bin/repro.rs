//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all [--quick] [--jobs N] [--threads N] [--shard i/m] [--metrics-threshold N] [--out <dir>] [--json]
//! repro <experiment> [<experiment> ...] [--quick] [--jobs N] [--threads N] [--shard i/m] [--metrics-threshold N] [--out <dir>] [--json]
//! repro scenario <name>|all [--quick] [--jobs N] [--threads N] [--metrics-threshold N] [--out <dir>] [--json]
//! repro bench [--quick] [--iters N] [--only <workload>]... [--threads N[,N...]] [--out <dir>]
//! repro --trace <path> [--engine guess|gossip] [--quick]
//! repro --list
//! ```
//!
//! Experiments: `table3`, `fig3` … `fig21`, `response`, plus the
//! extension studies `selfish`, `adaptive`, `defense`, `fragmentation`,
//! `payments`, `forwarding`, and `gossip`.
//! With `--out <dir>`, each report is additionally written to
//! `<dir>/<name>.txt`; adding `--json` also writes `<dir>/<name>.json`
//! (structured blocks, see [`guess_bench::report::Report::render_json`]).
//!
//! `--jobs N` bounds how many simulations run at once — across
//! experiments and across the sweep points inside each one. Every sweep
//! point carries its own RNG seed, so the reports are byte-identical at
//! any `--jobs` level; only wall-clock time changes.
//!
//! `--threads N` sets the worker-thread budget for the engines'
//! lane-partitioned parallel kernel (carried on [`Ctx`] like
//! `--metrics-threshold`). Lane-mode output is a pure function of
//! `(seed, lanes)`, so any `N` yields the same bytes for the same
//! config; `repro bench --threads` takes a comma-separated list and
//! emits one `<workload>@t<N>` row per `N > 1` — the thread-scaling
//! curve.
//!
//! `--shard i/m` keeps only every `m`-th selected experiment starting
//! at index `i` — the grid split into `m` independently runnable work
//! units (separate machines, separate invocations). Seed-addressed
//! determinism makes the merge trivial: the union of the shards'
//! `--out` files is byte-identical to the unsharded run's output.
//!
//! `--trace <path>` runs one base-configuration simulation with the
//! structured trace layer on, streaming every record to `<path>` as
//! JSON Lines (schema in EXPERIMENTS.md), then reconciles the trace
//! totals against the run's own report before exiting. `--engine`
//! selects which simulator is traced: `guess` (default) or `gossip`.

use std::path::Path;
use std::sync::mpsc;
use std::time::Instant;

use guess_bench::experiments::{self, Experiment};
use guess_bench::report::Report;
use guess_bench::runner::Ctx;
use guess_bench::scale::Scale;
use simkit::sim::Runnable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        println!("experiments (repro <name>):");
        for e in experiments::all() {
            println!("  {:<14} {}", e.name, e.description);
        }
        println!("\nscenarios (repro scenario <name>):");
        for s in guess_bench::scenarios::all() {
            println!("  {:<14} [{}] {}", s.name, s.engine, s.description);
        }
        println!("\nbench workloads (repro bench --only <name>):");
        for w in guess_bench::bench::workload_names(false) {
            println!("  {w}");
        }
        println!(
            "\nbench --threads N[,N...] repeats guess/gossip workloads on the\n\
             lane-partitioned parallel kernel ({} lanes) as <workload>@t<N> rows;\n\
             gnutella has no lane decomposition and keeps its serial row only",
            guess_bench::bench::BENCH_LANES
        );
        return;
    }
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    if args.first().map(String::as_str) == Some("bench") {
        run_bench(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("scenario") {
        run_scenarios(&args[1..], scale);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("--trace needs a file path");
            std::process::exit(2);
        };
        let engine = match args.iter().position(|a| a == "--engine") {
            Some(j) => match args.get(j + 1).map(String::as_str) {
                Some(name @ ("guess" | "gossip")) => name,
                Some(other) => {
                    eprintln!("unknown --engine '{other}' (expected guess or gossip)");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--engine needs a value (guess or gossip)");
                    std::process::exit(2);
                }
            },
            None => "guess",
        };
        match engine {
            "gossip" => run_traced_gossip(Path::new(path), scale),
            _ => run_traced(Path::new(path), scale),
        }
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    let out_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if json && out_dir.is_none() {
        eprintln!("--json needs --out <dir> to know where to write the files");
        std::process::exit(2);
    }
    let jobs: usize = match args.iter().position(|a| a == "--jobs") {
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            }
        },
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    };
    let metrics_threshold = match parse_metrics_threshold(&args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let threads = match parse_threads(&args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let shard: Option<(usize, usize)> = match args.iter().position(|a| a == "--shard") {
        Some(i) => match args.get(i + 1).map(|v| parse_shard(v)) {
            Some(Some(spec)) => Some(spec),
            _ => {
                eprintln!("--shard needs i/m with 0 <= i < m (e.g. --shard 0/4)");
                std::process::exit(2);
            }
        },
        None => None,
    };
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    // Strip flag values so `--out DIR`'s DIR is not taken for a name.
    let mut names: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--out"
            || a == "--jobs"
            || a == "--trace"
            || a == "--engine"
            || a == "--shard"
            || a == "--metrics-threshold"
            || a == "--threads"
        {
            skip_next = true;
        } else if !a.starts_with("--") {
            names.push(a);
        }
    }

    let selected: Vec<experiments::Experiment> = if names.iter().any(|n| n.as_str() == "all") {
        experiments::all()
    } else {
        let mut picked = Vec::new();
        for name in &names {
            match experiments::find(name) {
                Some(e) => picked.push(e),
                None => {
                    eprintln!("unknown experiment '{name}' (try --list)");
                    std::process::exit(2);
                }
            }
        }
        if picked.is_empty() {
            print_usage();
            std::process::exit(2);
        }
        picked
    };
    // Shard by position in the selection: experiment `k` belongs to
    // shard `k % m`. Every experiment seeds its own RNG streams, so each
    // work unit is addressed by its own seeds and renders the same
    // report inside any shard — the union of per-shard `--out` files is
    // byte-identical to the unsharded run's.
    let selected: Vec<experiments::Experiment> = match shard {
        Some((i, m)) => selected
            .into_iter()
            .enumerate()
            .filter(|(k, _)| k % m == i)
            .map(|(_, e)| e)
            .collect(),
        None => selected,
    };
    if let Some((i, m)) = shard {
        println!(
            "shard {i}/{m}: {} experiment(s) [{}]",
            selected.len(),
            selected
                .iter()
                .map(|e| e.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        if selected.is_empty() {
            return;
        }
    }

    let ctx = Ctx::new(scale, jobs)
        .with_metrics_threshold(metrics_threshold)
        .with_threads(threads);
    let overall = Instant::now();
    if ctx.jobs() == 1 {
        // Serial: run and print each experiment in turn, as the original
        // driver did, so per-experiment timings stay meaningful.
        for e in &selected {
            let started = Instant::now();
            let report = (e.run)(&ctx);
            emit(
                e,
                &report,
                started.elapsed().as_secs_f64(),
                out_dir.as_deref(),
                json,
                scale,
            );
        }
    } else {
        // Parallel: one thread per experiment; each simulation inside
        // acquires a permit from the shared `--jobs` budget. Results are
        // printed in selection order as they become ready.
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|s| {
            for (i, e) in selected.iter().enumerate() {
                let tx = tx.clone();
                let ctx = &ctx;
                s.spawn(move || {
                    let started = Instant::now();
                    let report = (e.run)(ctx);
                    // The receiver outlives the scope; send cannot fail.
                    tx.send((i, report, started.elapsed().as_secs_f64()))
                        .expect("main receiver");
                });
            }
            drop(tx);
            let mut ready: Vec<Option<(Report, f64)>> = selected.iter().map(|_| None).collect();
            let mut next = 0;
            for (i, report, secs) in rx {
                ready[i] = Some((report, secs));
                while next < ready.len() {
                    let Some((report, secs)) = ready[next].take() else {
                        break;
                    };
                    emit(
                        &selected[next],
                        &report,
                        secs,
                        out_dir.as_deref(),
                        json,
                        scale,
                    );
                    next += 1;
                }
            }
        });
    }
    println!(
        "ran {} experiment(s) at {:?} scale in {:.1}s",
        selected.len(),
        scale,
        overall.elapsed().as_secs_f64()
    );
}

/// `repro bench [--quick] [--iters N] [--only WORKLOAD]... [--out DIR]`
/// — the wall-clock benchmark harness. Runs fixed-seed engine
/// workloads, prints min/median wall time and events/sec, and appends
/// the next `BENCH_<n>.json` to the perf trajectory in DIR. The default
/// DIR is the repo root — the canonical home of the trajectory, where
/// the committed baselines already live — so an unqualified
/// `repro bench` continues the sequence they start (the `BENCH_*.json`
/// gitignore pattern keeps ad-hoc runs untracked; baselines are
/// force-added). `--only` is repeatable and restricts the run to the
/// named workloads, so a single engine can be gated on its own.
fn run_bench(args: &[String]) {
    let mut only: Vec<String> = Vec::new();
    let mut threads: Vec<usize> = vec![1];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => i += 1,
            flag @ ("--iters" | "--out" | "--only" | "--threads") => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                };
                if flag == "--only" {
                    only.push(value.clone());
                }
                if flag == "--threads" {
                    match parse_threads_list(value) {
                        Some(list) => threads = list,
                        None => {
                            eprintln!(
                                "--threads needs a comma-separated list of positive \
                                 integers (e.g. --threads 1,2,4,8)"
                            );
                            std::process::exit(2);
                        }
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown bench argument: {other}");
                eprintln!(
                    "usage: repro bench [--quick] [--iters N] [--only WORKLOAD]... \
                     [--threads N[,N...]] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let iters: usize = match args.iter().position(|a| a == "--iters") {
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) if n > 0 => n,
            _ => {
                eprintln!("--iters needs a positive integer");
                std::process::exit(2);
            }
        },
        None => 5,
    };
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| std::path::PathBuf::from("."), std::path::PathBuf::from);
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create output directory {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let matrix = if quick {
        "quick workloads"
    } else {
        "quick+full workloads"
    };
    if only.is_empty() {
        println!("bench: {matrix}, {iters} iteration(s) each");
    } else {
        println!(
            "bench: {matrix} filtered to [{}], {iters} iteration(s) each",
            only.join(", ")
        );
    }
    let started = Instant::now();
    let results = match guess_bench::bench::run_workloads(quick, iters, &only, &threads) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let report = guess_bench::bench::build_report(&results);
    print!("\n{}", report.render_text());
    let n = guess_bench::bench::next_bench_index(&out_dir);
    let path = out_dir.join(format!("BENCH_{n}.json"));
    let doc = report.render_json(
        "bench",
        "fixed-seed engine workloads: min/median wall time and events/sec",
        if quick { "Quick" } else { "Full" },
    );
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "\nwrote {} ({} workloads in {:.1}s)",
        path.display(),
        results.len(),
        started.elapsed().as_secs_f64()
    );
}

/// `repro scenario <name>... [--quick] [--jobs N] [--out DIR] [--json]`
/// — runs named scenarios from the catalog (see `--list`), each one a
/// baseline-vs-intervened pair over the same seed.
fn run_scenarios(args: &[String], scale: Scale) {
    use guess_bench::scenarios;

    let json = args.iter().any(|a| a == "--json");
    let out_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if json && out_dir.is_none() {
        eprintln!("--json needs --out <dir> to know where to write the files");
        std::process::exit(2);
    }
    let jobs: usize = match args.iter().position(|a| a == "--jobs") {
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!("--jobs needs a positive integer");
                std::process::exit(2);
            }
        },
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    };
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let metrics_threshold = match parse_metrics_threshold(args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let threads = match parse_threads(args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut names: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--out" || a == "--jobs" || a == "--metrics-threshold" || a == "--threads" {
            skip_next = true;
        } else if !a.starts_with("--") {
            names.push(a);
        }
    }
    let selected: Vec<scenarios::ScenarioExperiment> = if names.iter().any(|n| n.as_str() == "all")
    {
        scenarios::all()
    } else {
        let mut picked = Vec::new();
        for name in &names {
            match scenarios::find(name) {
                Some(s) => picked.push(s),
                None => {
                    eprintln!("unknown scenario '{name}' (try --list)");
                    std::process::exit(2);
                }
            }
        }
        if picked.is_empty() {
            eprintln!("usage: repro scenario <name>|all [--quick] [--jobs N] [--out DIR] [--json]");
            std::process::exit(2);
        }
        picked
    };
    let ctx = Ctx::new(scale, jobs)
        .with_metrics_threshold(metrics_threshold)
        .with_threads(threads);
    let overall = Instant::now();
    for s in &selected {
        let started = Instant::now();
        let report = (s.run)(&ctx);
        emit_named(
            s.name,
            s.description,
            &report,
            started.elapsed().as_secs_f64(),
            out_dir.as_deref(),
            json,
            scale,
        );
    }
    println!(
        "ran {} scenario(s) at {:?} scale in {:.1}s",
        selected.len(),
        scale,
        overall.elapsed().as_secs_f64()
    );
}

/// Prints one finished experiment in the standard frame and writes its
/// `--out` artifacts.
fn emit(
    e: &Experiment,
    report: &Report,
    secs: f64,
    out_dir: Option<&Path>,
    json: bool,
    scale: Scale,
) {
    emit_named(e.name, e.description, report, secs, out_dir, json, scale);
}

/// The shared emit frame behind experiments and scenarios.
fn emit_named(
    name: &str,
    description: &str,
    report: &Report,
    secs: f64,
    out_dir: Option<&Path>,
    json: bool,
    scale: Scale,
) {
    println!("==============================================================");
    println!("== {name} — {description}");
    println!("==============================================================");
    let text = report.render_text();
    println!("{text}");
    println!("[{name} completed in {secs:.1}s]\n");
    if let Some(dir) = out_dir {
        let path = dir.join(format!("{name}.txt"));
        if let Err(err) = std::fs::write(&path, &text) {
            eprintln!("failed to write {}: {err}", path.display());
        }
        if json {
            let path = dir.join(format!("{name}.json"));
            let doc = report.render_json(name, description, &format!("{scale:?}"));
            if let Err(err) = std::fs::write(&path, doc) {
                eprintln!("failed to write {}: {err}", path.display());
            }
        }
    }
}

/// Runs one base-configuration GUESS simulation with tracing on, writes
/// the JSONL stream to `path`, and reconciles the trace totals against
/// the run's report. Exits non-zero on I/O failure or mismatch.
fn run_traced(path: &Path, scale: Scale) {
    use guess::engine::GuessSim;
    use guess_bench::scale::base_config;
    use guess_bench::tracefile::JsonlSink;

    let mut cfg = base_config(scale, 0x7Ace);
    // Zero warm-up: the report then covers every query in the trace, so
    // the reconciliation below must match exactly.
    cfg.run.warmup = simkit::time::SimDuration::from_secs(0.0);
    let sim = match GuessSim::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid trace config: {e}");
            std::process::exit(1);
        }
    };
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let started = Instant::now();
    let sink = JsonlSink::new(std::io::BufWriter::new(file));
    let (report, sink) = sim.run_traced(sink);
    let (_, counts, io_error) = sink.finish();
    if let Some(e) = io_error {
        eprintln!("trace write to {} failed: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "traced GUESS run ({scale:?} scale) -> {} in {:.1}s",
        path.display(),
        started.elapsed().as_secs_f64()
    );
    println!("  records: {}", counts.total());

    // Reconcile the trace against the run's own aggregates. The report's
    // probe total comes back through a Welford running mean, so round —
    // `sum()` is `mean * count`, exact only up to f64 rounding.
    let probes_in_report = report.total_probes.sum().round() as u64;
    let unsatisfied_in_trace = counts.query_ends - counts.satisfied;
    let checks = [
        (
            "queries == query_end records",
            report.queries,
            counts.query_ends,
        ),
        (
            "queries == query_start records",
            report.queries,
            counts.query_starts,
        ),
        (
            "unsatisfied queries",
            report.unsatisfied,
            unsatisfied_in_trace,
        ),
        (
            "total probes == probe records",
            probes_in_report,
            counts.query_probes,
        ),
        (
            "total probes == query_end sums",
            probes_in_report,
            counts.query_end_probes,
        ),
        (
            "births == join records",
            report.counters.get("births"),
            counts.joins,
        ),
        (
            "deaths == death records",
            report.counters.get("deaths"),
            counts.deaths,
        ),
        (
            "pings == ping probe records",
            report.counters.get("pings_sent"),
            counts.ping_probes,
        ),
    ];
    let mut ok = true;
    for (what, in_report, in_trace) in checks {
        let mark = if in_report == in_trace { "ok " } else { "FAIL" };
        println!("  [{mark}] {what}: report={in_report} trace={in_trace}");
        ok &= in_report == in_trace;
    }
    if !ok {
        eprintln!("trace does not reconcile with the run report");
        std::process::exit(1);
    }
}

/// Runs one traced gossip simulation, writes the JSONL stream to
/// `path`, and reconciles the trace totals against the run's report.
/// Exits non-zero on I/O failure or mismatch.
fn run_traced_gossip(path: &Path, scale: Scale) {
    use gossip::GossipSim;
    use guess_bench::experiments::gossip_tradeoff;
    use guess_bench::tracefile::JsonlSink;

    // Zero warm-up (set inside `traced_config`): the report then covers
    // every query in the trace, so the reconciliation below must match
    // exactly.
    let cfg = gossip_tradeoff::traced_config(scale, 0x7Ace);
    let sim = match GossipSim::new(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid trace config: {e}");
            std::process::exit(1);
        }
    };
    let file = match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let started = Instant::now();
    let sink = JsonlSink::new(std::io::BufWriter::new(file));
    let (report, sink) = sim.run_traced(sink);
    let (_, counts, io_error) = sink.finish();
    if let Some(e) = io_error {
        eprintln!("trace write to {} failed: {e}", path.display());
        std::process::exit(1);
    }
    println!(
        "traced gossip run ({scale:?} scale) -> {} in {:.1}s",
        path.display(),
        started.elapsed().as_secs_f64()
    );
    println!("  records: {}", counts.total());

    // The report's message total comes back through a Welford running
    // mean, so round — `sum()` is `mean * count`, exact only up to f64
    // rounding.
    let messages_in_report = report.messages.sum().round() as u64;
    let unsatisfied_in_trace = counts.query_ends - counts.satisfied;
    let checks = [
        (
            "queries == query_end records",
            report.queries,
            counts.query_ends,
        ),
        (
            "queries == query_start records",
            report.queries,
            counts.query_starts,
        ),
        (
            "unsatisfied queries",
            report.unsatisfied,
            unsatisfied_in_trace,
        ),
        (
            "total messages == push+pull probe records",
            messages_in_report,
            counts.push_probes + counts.pull_probes,
        ),
        (
            "total messages == query_end sums",
            messages_in_report,
            counts.query_end_probes,
        ),
        (
            "births == join records",
            report.counters.get("births"),
            counts.joins,
        ),
        (
            "deaths == death records",
            report.counters.get("deaths"),
            counts.deaths,
        ),
    ];
    let mut ok = true;
    for (what, in_report, in_trace) in checks {
        let mark = if in_report == in_trace { "ok " } else { "FAIL" };
        println!("  [{mark}] {what}: report={in_report} trace={in_trace}");
        ok &= in_report == in_trace;
    }
    if !ok {
        eprintln!("trace does not reconcile with the run report");
        std::process::exit(1);
    }
}

/// Parses `--metrics-threshold N` if present. The value overrides
/// `metrics_sample_threshold` in the configs of experiments that honor
/// it (see [`Ctx::metrics_threshold`]): populations above `N` sample
/// their periodic metric sweeps instead of walking every slot.
fn parse_metrics_threshold(args: &[String]) -> Result<Option<usize>, String> {
    match args.iter().position(|a| a == "--metrics-threshold") {
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) => Ok(Some(n)),
            _ => Err("--metrics-threshold needs a non-negative integer".to_string()),
        },
        None => Ok(None),
    }
}

/// Parses `--threads N` if present (default 1): the worker-thread
/// budget for the engines' lane-partitioned parallel kernel, carried on
/// [`Ctx::threads`]. Lane-mode output is a pure function of
/// `(seed, lanes)`, so the flag changes wall-clock only, never bytes.
fn parse_threads(args: &[String]) -> Result<usize, String> {
    match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1).map(|v| v.parse()) {
            Some(Ok(n)) if n >= 1 => Ok(n),
            _ => Err("--threads needs a positive integer".to_string()),
        },
        None => Ok(1),
    }
}

/// Parses the bench form of `--threads`: a comma-separated list of
/// positive thread counts, e.g. `1,2,4,8`.
fn parse_threads_list(spec: &str) -> Option<Vec<usize>> {
    let mut out = Vec::new();
    for part in spec.split(',') {
        let n: usize = part.trim().parse().ok()?;
        if n == 0 {
            return None;
        }
        out.push(n);
    }
    (!out.is_empty()).then_some(out)
}

/// Parses a `--shard` spec of the form `i/m` with `0 <= i < m`.
fn parse_shard(spec: &str) -> Option<(usize, usize)> {
    let (i, m) = spec.split_once('/')?;
    let (i, m) = (i.parse().ok()?, m.parse().ok()?);
    (m >= 1 && i < m).then_some((i, m))
}

fn print_usage() {
    println!(
        "repro — regenerate every table and figure of the ICDCS'04 GUESS paper\n\n\
         usage:\n  repro all [--quick] [--jobs N] [--threads N] [--shard i/m] [--out <dir>] [--json]\n  \
         repro <experiment>... [--quick] [--jobs N] [--threads N] [--shard i/m] [--out <dir>] [--json]\n  \
         repro scenario <name>|all [--quick] [--jobs N] [--threads N] [--out <dir>] [--json]\n  \
         repro bench [--quick] [--iters N] [--only <workload>]... [--threads N[,N...]] [--out <dir>]\n  \
         repro --trace <path> [--engine guess|gossip] [--quick]\n  repro --list\n\n\
         --quick   shrunk grids/durations (shape check, ~1-2 min)\n\
         --jobs N  at most N simulations in flight (default: all cores);\n          \
         reports are byte-identical at any N\n\
         --threads N  worker threads for the lane-partitioned parallel\n          \
         kernel; lane-mode output depends only on (seed, lanes), so any\n          \
         N yields the same bytes. bench takes a list (--threads 1,2,4,8)\n          \
         and adds one <workload>@t<N> row per N > 1\n\
         --shard i/m  run every m-th selected experiment starting at i;\n          \
         per-shard outputs merge byte-identically to the unsharded run\n\
         --metrics-threshold N  populations above N stride-sample their\n          \
         periodic metric sweeps instead of walking every slot\n\
         --out DIR also write each report to DIR/<name>.txt\n\
         --json    with --out, also write structured DIR/<name>.json\n\
         --trace F run one traced simulation, write JSONL to F,\n          \
         and reconcile the trace against the run report\n\
         --engine  which simulator --trace runs: guess (default) or gossip\n\
         default   full paper grids (several minutes)"
    );
}
