//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all [--quick] [--out <dir>]
//! repro <experiment> [<experiment> ...] [--quick] [--out <dir>]
//! repro --list
//! ```
//!
//! Experiments: `table3`, `fig3` … `fig21`, `response`, plus the
//! extension studies `selfish`, `adaptive`, `defense`, `fragmentation`.
//! With `--out <dir>`, each report is additionally written to
//! `<dir>/<name>.txt`.

use std::time::Instant;

use guess_bench::experiments;
use guess_bench::scale::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for e in experiments::all() {
            println!("{:<10} {}", e.name, e.description);
        }
        return;
    }
    let scale = if args.iter().any(|a| a == "--quick") { Scale::Quick } else { Scale::Full };
    let out_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &out_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create output directory {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    // Strip flag values so `--out DIR`'s DIR is not taken for a name.
    let mut names: Vec<&String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--out" {
            skip_next = true;
        } else if !a.starts_with("--") {
            names.push(a);
        }
    }

    let selected: Vec<experiments::Experiment> = if names.iter().any(|n| n.as_str() == "all") {
        experiments::all()
    } else {
        let mut picked = Vec::new();
        for name in &names {
            match experiments::find(name) {
                Some(e) => picked.push(e),
                None => {
                    eprintln!("unknown experiment '{name}' (try --list)");
                    std::process::exit(2);
                }
            }
        }
        if picked.is_empty() {
            print_usage();
            std::process::exit(2);
        }
        picked
    };

    let overall = Instant::now();
    for e in &selected {
        let started = Instant::now();
        println!("==============================================================");
        println!("== {} — {}", e.name, e.description);
        println!("==============================================================");
        let report = (e.run)(scale);
        println!("{report}");
        println!("[{} completed in {:.1}s]\n", e.name, started.elapsed().as_secs_f64());
        if let Some(dir) = &out_dir {
            let path = dir.join(format!("{}.txt", e.name));
            if let Err(err) = std::fs::write(&path, &report) {
                eprintln!("failed to write {}: {err}", path.display());
            }
        }
    }
    println!(
        "ran {} experiment(s) at {:?} scale in {:.1}s",
        selected.len(),
        scale,
        overall.elapsed().as_secs_f64()
    );
}

fn print_usage() {
    println!(
        "repro — regenerate every table and figure of the ICDCS'04 GUESS paper\n\n\
         usage:\n  repro all [--quick]\n  repro <experiment>... [--quick]\n  repro --list\n\n\
         --quick  shrunk grids/durations (shape check, ~1-2 min)\n\
         default  full paper grids (several minutes)"
    );
}
