//! Structured experiment results.
//!
//! Experiments used to return pre-formatted `String`s; they now return a
//! [`Report`]: an ordered list of [`Block`]s, where a block is either a
//! verbatim prose paragraph or a named table of typed [`Cell`]s. The text
//! renderer ([`Report::render_text`]) reproduces the legacy output
//! byte-for-byte (tables go through the same alignment rules as
//! [`crate::table::Table`]); the JSON emitter ([`Report::render_json`])
//! is hand-rolled — the build environment is offline, so no serde.

use crate::table::{fnum, Table};

/// One typed table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A string cell (policy names, config labels, …).
    Text(String),
    /// An unsigned integer (counts, sizes, ranks).
    Uint(u64),
    /// A signed integer.
    Int(i64),
    /// A float rendered with a fixed number of decimals, exactly like
    /// [`fnum`] did in the string-based reports.
    Float {
        /// The value.
        value: f64,
        /// Decimals shown in the text rendering.
        prec: usize,
    },
}

impl Cell {
    /// A text cell.
    #[must_use]
    pub fn text(s: impl Into<String>) -> Self {
        Cell::Text(s.into())
    }

    /// An unsigned-integer cell.
    #[must_use]
    pub fn uint(v: impl Into<u64>) -> Self {
        Cell::Uint(v.into())
    }

    /// An unsigned-integer cell from a `usize`.
    #[must_use]
    pub fn size(v: usize) -> Self {
        Cell::Uint(v as u64)
    }

    /// A fixed-precision float cell.
    #[must_use]
    pub fn float(value: f64, prec: usize) -> Self {
        Cell::Float { value, prec }
    }

    /// Renders the cell as it appears in the text table.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Uint(v) => v.to_string(),
            Cell::Int(v) => v.to_string(),
            Cell::Float { value, prec } => fnum(*value, *prec),
        }
    }

    /// Renders the cell as a JSON value.
    fn render_json(&self, out: &mut String) {
        match self {
            Cell::Text(s) => json_string(s, out),
            Cell::Uint(v) => out.push_str(&v.to_string()),
            Cell::Int(v) => out.push_str(&v.to_string()),
            Cell::Float { value, prec } => {
                if value.is_finite() {
                    out.push_str(&fnum(*value, *prec));
                } else {
                    // NaN/Inf are not JSON numbers.
                    out.push_str("null");
                }
            }
        }
    }
}

/// A named table: columns plus typed rows.
#[derive(Debug, Clone, PartialEq)]
pub struct TableBlock {
    /// Machine-readable series/table name (used in the JSON output).
    pub name: String,
    /// Column headers, including any paper-reference columns.
    pub columns: Vec<String>,
    /// Data rows; each row is as wide as `columns`.
    pub rows: Vec<Vec<Cell>>,
}

impl TableBlock {
    /// Creates an empty table with the given name and column headers.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    #[must_use]
    pub fn new(name: impl Into<String>, columns: Vec<&str>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        TableBlock {
            name: name.into(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// As [`TableBlock::new`] but with owned headers (for computed ones).
    #[must_use]
    pub fn with_columns(name: impl Into<String>, columns: Vec<String>) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        TableBlock {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Renders the table exactly as [`crate::table::Table`] does.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = Table::new(self.columns.iter().map(String::as_str).collect());
        for row in &self.rows {
            t.row(row.iter().map(Cell::render).collect());
        }
        t.render()
    }
}

/// One report block.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// A verbatim prose fragment (headers, expected-shape notes,
    /// derived one-liners). Rendered exactly as stored.
    Text(String),
    /// A table of typed cells.
    Table(TableBlock),
}

/// A structured experiment result: an ordered sequence of blocks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// The blocks, in presentation order.
    pub blocks: Vec<Block>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends a verbatim text block (builder style).
    #[must_use]
    pub fn text(mut self, s: impl Into<String>) -> Self {
        self.push_text(s);
        self
    }

    /// Appends a table block (builder style).
    #[must_use]
    pub fn table(mut self, t: TableBlock) -> Self {
        self.push_table(t);
        self
    }

    /// Appends a verbatim text block.
    pub fn push_text(&mut self, s: impl Into<String>) {
        self.blocks.push(Block::Text(s.into()));
    }

    /// Appends a table block.
    pub fn push_table(&mut self, t: TableBlock) {
        self.blocks.push(Block::Table(t));
    }

    /// Renders the report as plain text — byte-for-byte what the legacy
    /// string-returning experiments produced: text blocks verbatim,
    /// tables through the shared alignment rules.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            match b {
                Block::Text(s) => out.push_str(s),
                Block::Table(t) => out.push_str(&t.render()),
            }
        }
        out
    }

    /// Renders the report as a JSON document.
    ///
    /// Schema:
    ///
    /// ```json
    /// {
    ///   "name": "fig9",
    ///   "description": "…",
    ///   "scale": "Quick",
    ///   "blocks": [
    ///     {"type": "text", "text": "…"},
    ///     {"type": "table", "name": "…", "columns": ["…"],
    ///      "rows": [["Ran", 12, 3.4], …]}
    ///   ]
    /// }
    /// ```
    ///
    /// Strings are escaped per RFC 8259; non-finite floats become
    /// `null`. Emitted by hand — the offline build environment rules
    /// out serde.
    #[must_use]
    pub fn render_json(&self, name: &str, description: &str, scale: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"name\": ");
        json_string(name, &mut out);
        out.push_str(",\n  \"description\": ");
        json_string(description, &mut out);
        out.push_str(",\n  \"scale\": ");
        json_string(scale, &mut out);
        out.push_str(",\n  \"blocks\": [");
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            match b {
                Block::Text(s) => {
                    out.push_str("{\"type\": \"text\", \"text\": ");
                    json_string(s, &mut out);
                    out.push('}');
                }
                Block::Table(t) => {
                    out.push_str("{\"type\": \"table\", \"name\": ");
                    json_string(&t.name, &mut out);
                    out.push_str(", \"columns\": [");
                    for (c, col) in t.columns.iter().enumerate() {
                        if c > 0 {
                            out.push_str(", ");
                        }
                        json_string(col, &mut out);
                    }
                    out.push_str("], \"rows\": [");
                    for (r, row) in t.rows.iter().enumerate() {
                        if r > 0 {
                            out.push(',');
                        }
                        out.push_str("\n      [");
                        for (c, cell) in row.iter().enumerate() {
                            if c > 0 {
                                out.push_str(", ");
                            }
                            cell.render_json(&mut out);
                        }
                        out.push(']');
                    }
                    if !t.rows.is_empty() {
                        out.push_str("\n    ");
                    }
                    out.push_str("]}");
                }
            }
        }
        if !self.blocks.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Appends `s` to `out` as a JSON string literal (RFC 8259 escaping).
/// Shared with the JSONL trace sink ([`crate::tracefile`]).
pub(crate) fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut t = TableBlock::new("probes", vec!["policy", "count", "mean"]);
        t.row(vec![
            Cell::text("Ran"),
            Cell::uint(12u64),
            Cell::float(3.456, 1),
        ]);
        t.row(vec![
            Cell::text("MFS"),
            Cell::uint(3u64),
            Cell::float(f64::NAN, 1),
        ]);
        Report::new().text("Header line\n\n").table(t)
    }

    #[test]
    fn text_render_matches_legacy_table() {
        let mut legacy = Table::new(vec!["policy", "count", "mean"]);
        legacy.row(vec!["Ran".into(), "12".into(), fnum(3.456, 1)]);
        legacy.row(vec!["MFS".into(), "3".into(), fnum(f64::NAN, 1)]);
        let expected = format!("Header line\n\n{}", legacy.render());
        assert_eq!(sample().render_text(), expected);
    }

    #[test]
    fn float_cells_render_like_fnum() {
        assert_eq!(Cell::float(1.23456, 2).render(), "1.23");
        assert_eq!(Cell::float(10.0, 0).render(), "10");
        assert_eq!(Cell::float(f64::NAN, 3).render(), "NaN");
    }

    #[test]
    fn json_is_escaped_and_typed() {
        let json = sample().render_json("demo", "has \"quotes\"\nand lines", "Quick");
        assert!(json.contains("\"name\": \"demo\""));
        assert!(json.contains("has \\\"quotes\\\"\\nand lines"));
        assert!(json.contains("\"scale\": \"Quick\""));
        // Uint cells are bare numbers; floats keep their precision.
        assert!(json.contains("[\"Ran\", 12, 3.5]"));
        // NaN must not leak into JSON.
        assert!(json.contains("[\"MFS\", 3, null]"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn json_of_empty_report_is_wellformed() {
        let json = Report::new().render_json("empty", "", "Full");
        assert!(json.contains("\"blocks\": []"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TableBlock::new("t", vec!["a", "b"]);
        t.row(vec![Cell::uint(1u64)]);
    }

    #[test]
    fn control_chars_are_u_escaped() {
        let mut out = String::new();
        json_string("a\u{1}b", &mut out);
        assert_eq!(out, "\"a\\u0001b\"");
    }
}
