//! Deterministic parallel execution of experiment work.
//!
//! A [`Ctx`] is handed to every experiment. It carries the run's
//! [`Scale`] and a process-wide concurrency budget (`--jobs`): a
//! counting semaphore that individual simulation runs acquire a permit
//! from, so parallelism composes across experiments *and* across the
//! independent sweep points inside one experiment without
//! oversubscribing the machine.
//!
//! Determinism: every sweep point seeds its own RNG (a hardcoded
//! per-point constant or [`simkit::rng::derive_seed`]), and
//! [`Ctx::map`] writes results by item index — so the output is
//! byte-identical at any `--jobs` level; only wall-clock changes.
//!
//! [`Ctx::shared`] replaces the old per-module `static SWEEP` memo
//! globals: experiments that read the same sweep (fig3/4/5, fig9–12,
//! fig14/15, fig16–21) compute it once per `Ctx`, with no process-wide
//! state.

use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::scale::Scale;

/// A minimal counting semaphore (std has none; the build is offline).
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

/// RAII permit; releases on drop.
struct Permit<'a>(&'a Semaphore);

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> Permit<'_> {
        let mut n = self.permits.lock().expect("semaphore");
        while *n == 0 {
            n = self.cv.wait(n).expect("semaphore");
        }
        *n -= 1;
        Permit(self)
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut n = self.0.permits.lock().expect("semaphore");
        *n += 1;
        self.0.cv.notify_one();
    }
}

type SharedSlot = Arc<OnceLock<Arc<dyn Any + Send + Sync>>>;

/// The execution context handed to every experiment.
pub struct Ctx {
    scale: Scale,
    jobs: usize,
    metrics_threshold: Option<usize>,
    threads: usize,
    sem: Semaphore,
    shared: Mutex<simkit::hash::FxHashMap<String, SharedSlot>>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("scale", &self.scale)
            .field("jobs", &self.jobs)
            .finish()
    }
}

impl Ctx {
    /// Creates a context running at `scale` with at most `jobs`
    /// simulations in flight at once (`jobs` is clamped to ≥ 1).
    #[must_use]
    pub fn new(scale: Scale, jobs: usize) -> Self {
        let jobs = jobs.max(1);
        Ctx {
            scale,
            jobs,
            metrics_threshold: None,
            threads: 1,
            sem: Semaphore::new(jobs),
            // Pre-sized for the experiment catalog: at most one memo
            // slot per figure module ever lands here.
            shared: Mutex::new(simkit::hash::map_with_capacity(32)),
        }
    }

    /// The run's scale.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The concurrency budget.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Overrides the population size above which the engines' periodic
    /// metric sweeps switch from exhaustive to stride sampling
    /// (`--metrics-threshold`). `None` leaves every config's own
    /// threshold in place, which is what keeps default runs golden.
    #[must_use]
    pub fn with_metrics_threshold(mut self, threshold: Option<usize>) -> Self {
        self.metrics_threshold = threshold;
        self
    }

    /// The metrics-sampling threshold override, if the CLI set one.
    #[must_use]
    pub fn metrics_threshold(&self) -> Option<usize> {
        self.metrics_threshold
    }

    /// Sets the worker-thread budget for the lane-partitioned parallel
    /// kernel (`--threads`). Clamped to ≥ 1; `1` — the default — keeps
    /// every run on the serial path. Lane-mode output is a pure
    /// function of `(seed, lanes)`, so this knob changes wall-clock
    /// only, never bytes.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The intra-run worker-thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one unit of simulation work under a concurrency permit.
    ///
    /// Use this for work that must stay sequential internally (e.g. a
    /// chain of runs sharing one RNG stream) so it still counts against
    /// `--jobs` when experiments run in parallel.
    pub fn compute<U>(&self, f: impl FnOnce() -> U) -> U {
        let _permit = self.sem.acquire();
        f()
    }

    /// Maps `f` over `items` in parallel, returning results in item
    /// order regardless of scheduling.
    ///
    /// Each item is processed under its own permit, so concurrent
    /// `map`s from different experiments interleave fairly within the
    /// global `--jobs` budget. `f` must derive any randomness from the
    /// item itself (per-point seed) — never from shared mutable state —
    /// which is what makes the result independent of `jobs`.
    pub fn map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.into_iter().map(|it| self.compute(|| f(it))).collect();
        }
        let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
        let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= work.len() {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work item")
                        .take()
                        .expect("taken once");
                    let _permit = self.sem.acquire();
                    let result = f(item);
                    drop(_permit);
                    *slots[i].lock().expect("result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot")
                    .expect("worker filled slot")
            })
            .collect()
    }

    /// Computes a value once per context and shares it between
    /// experiments — the replacement for the old `static SWEEP` memos.
    ///
    /// The first caller of `key` runs `init` (which may itself use
    /// [`Ctx::map`] to parallelize); concurrent callers block until the
    /// value is ready, then all receive the same `Arc`. No permits are
    /// held while waiting, so this cannot deadlock the `--jobs` budget.
    ///
    /// # Panics
    ///
    /// Panics if `key` is reused with a different type `T`.
    pub fn shared<T, F>(&self, key: &str, init: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce(&Self) -> T,
    {
        let slot: SharedSlot = {
            let mut map = self.shared.lock().expect("shared map");
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        let value = slot.get_or_init(|| Arc::new(init(self)) as Arc<dyn Any + Send + Sync>);
        Arc::clone(value)
            .downcast::<T>()
            .expect("shared key reused with a different type")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn map_preserves_item_order() {
        for jobs in [1, 2, 8] {
            let ctx = Ctx::new(Scale::Quick, jobs);
            let out = ctx.map((0u64..40).collect(), |i| i * i);
            assert_eq!(
                out,
                (0u64..40).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn map_of_empty_and_single() {
        let ctx = Ctx::new(Scale::Quick, 4);
        assert_eq!(ctx.map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(ctx.map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_is_clamped_to_one() {
        let ctx = Ctx::new(Scale::Quick, 0);
        assert_eq!(ctx.jobs(), 1);
        assert_eq!(ctx.map(vec![1, 2], |x| x), vec![1, 2]);
    }

    #[test]
    fn concurrency_never_exceeds_jobs() {
        let jobs = 3;
        let ctx = Ctx::new(Scale::Quick, jobs);
        let in_flight = AtomicU32::new(0);
        let peak = AtomicU32::new(0);
        ctx.map((0..50).collect::<Vec<u32>>(), |_| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(1));
            in_flight.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) <= jobs as u32);
    }

    #[test]
    fn shared_computes_once() {
        let ctx = Ctx::new(Scale::Quick, 4);
        let calls = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v = ctx.shared("the-sweep", |_| {
                        calls.fetch_add(1, Ordering::SeqCst);
                        vec![1u64, 2, 3]
                    });
                    assert_eq!(*v, vec![1, 2, 3]);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shared_keys_are_independent() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let a = ctx.shared("a", |_| 1u32);
        let b = ctx.shared("b", |_| 2u32);
        assert_eq!((*a, *b), (1, 2));
    }

    #[test]
    fn map_results_match_serial_at_any_jobs_level() {
        let serial: Vec<u64> = (0..20)
            .map(|i| simkit::rng::derive_seed(0xabc, "runner-test", i))
            .collect();
        for jobs in [2, 5] {
            let ctx = Ctx::new(Scale::Quick, jobs);
            let par = ctx.map((0..20).collect(), |i| {
                simkit::rng::derive_seed(0xabc, "runner-test", i)
            });
            assert_eq!(par, serial);
        }
    }
}
