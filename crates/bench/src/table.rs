//! Minimal column-aligned ASCII table rendering for experiment reports.

/// A simple table builder: header row plus data rows, rendered with
/// column-aligned padding.
///
/// # Examples
///
/// ```
/// use guess_bench::table::Table;
///
/// let mut t = Table::new(vec!["x", "y"]);
/// t.row(vec!["1".into(), "2.5".into()]);
/// let s = t.render();
/// assert!(s.contains("x"));
/// assert!(s.contains("2.5"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    #[must_use]
    pub fn new(header: Vec<&str>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns true if no data rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with the given precision — shorthand for table cells.
#[must_use]
pub fn fnum(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.50".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(10.0, 0), "10");
    }

    #[test]
    fn emptiness() {
        let t = Table::new(vec!["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
