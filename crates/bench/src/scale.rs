//! Experiment scale control.
//!
//! Every experiment can run at `Full` scale (the paper's parameter grids)
//! or `Quick` scale (shrunk grids and durations for CI and criterion).

use simkit::time::SimDuration;

use guess::config::{Config, ProtocolParams, RunParams, SystemParams};
use workload::content::CatalogParams;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// The paper's full parameter grids. Minutes of wall clock.
    #[default]
    Full,
    /// Shrunk grids/durations; preserves shapes, not precision.
    Quick,
}

impl Scale {
    /// Simulated duration for steady-state query experiments.
    #[must_use]
    pub fn duration(self) -> SimDuration {
        match self {
            Scale::Full => SimDuration::from_secs(2400.0),
            Scale::Quick => SimDuration::from_secs(700.0),
        }
    }

    /// Warm-up excluded from metrics.
    #[must_use]
    pub fn warmup(self) -> SimDuration {
        match self {
            Scale::Full => SimDuration::from_secs(600.0),
            Scale::Quick => SimDuration::from_secs(200.0),
        }
    }

    /// Network sizes for the scaling sweeps (Figs 3, 4, 7, 14, 15).
    #[must_use]
    pub fn network_sizes(self) -> Vec<usize> {
        match self {
            Scale::Full => vec![200, 500, 1000, 2000, 5000],
            Scale::Quick => vec![200, 500],
        }
    }

    /// Number of evaluation queries for the static fixed-extent curve.
    #[must_use]
    pub fn curve_queries(self) -> usize {
        match self {
            Scale::Full => 4000,
            Scale::Quick => 800,
        }
    }

    /// Filters a cache-size grid down at quick scale.
    #[must_use]
    pub fn cache_sizes(self, full: &[usize]) -> Vec<usize> {
        match self {
            Scale::Full => full.to_vec(),
            Scale::Quick => full.iter().copied().step_by(2).collect(),
        }
    }
}

/// The default experiment configuration at this scale: the paper's Table 1
/// and Table 2 defaults, with run controls set by `scale`.
#[must_use]
pub fn base_config(scale: Scale, seed: u64) -> Config {
    Config {
        system: SystemParams::default(),
        protocol: ProtocolParams::default(),
        run: RunParams {
            duration: scale.duration(),
            warmup: scale.warmup(),
            sample_interval: SimDuration::from_secs(60.0),
            cache_seed_size: 10,
            seed,
            simulate_queries: true,
            ..RunParams::default()
        },
        catalog: CatalogParams::default(),
    }
}

/// The "strained" configuration of the cache-maintenance experiments
/// (§6.1): `LifespanMultiplier = 0.2`, given network and cache sizes.
#[must_use]
pub fn strained_config(scale: Scale, network: usize, cache: usize, seed: u64) -> Config {
    let mut cfg = base_config(scale, seed);
    cfg.system.network_size = network;
    cfg.system.lifespan_multiplier = 0.2;
    cfg.protocol.cache_size = cache;
    cfg.run.cache_seed_size = (network / 100).clamp(2, cache.min(network - 1));
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_configs_validate() {
        assert!(base_config(Scale::Full, 1).validate().is_ok());
        assert!(base_config(Scale::Quick, 1).validate().is_ok());
    }

    #[test]
    fn strained_configs_validate_across_grid() {
        for &n in &[200usize, 500, 1000, 2000, 5000] {
            for &c in &[5usize, 10, 100, 500] {
                let cfg = strained_config(Scale::Full, n, c.min(n), 3);
                assert!(cfg.validate().is_ok(), "n={n} c={c}: {:?}", cfg.validate());
            }
        }
    }

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(Scale::Quick.duration() < Scale::Full.duration());
        assert!(Scale::Quick.network_sizes().len() < Scale::Full.network_sizes().len());
        assert!(Scale::Quick.curve_queries() < Scale::Full.curve_queries());
    }

    #[test]
    fn cache_size_filter() {
        let full = [5, 10, 20, 50, 100];
        assert_eq!(Scale::Full.cache_sizes(&full), vec![5, 10, 20, 50, 100]);
        assert_eq!(Scale::Quick.cache_sizes(&full), vec![5, 20, 100]);
    }

    #[test]
    fn strained_sets_multiplier() {
        let cfg = strained_config(Scale::Full, 1000, 50, 9);
        assert!((cfg.system.lifespan_multiplier - 0.2).abs() < 1e-12);
        assert_eq!(cfg.protocol.cache_size, 50);
    }
}
