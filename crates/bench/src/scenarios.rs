//! The named-scenario catalog: runtime-intervention timelines over all
//! three engines, exposed as `repro scenario <name>`.
//!
//! Each scenario builds a [`Scenario`] timeline (interventions placed at
//! fractions of the post-warm-up window, so the same shape runs at both
//! scales), then runs the engine twice — once plain, once under the
//! timeline — and reports the two runs side by side. Both runs share one
//! seed; the baseline column is therefore the exact counterfactual of
//! the intervened run, not a different draw.
//!
//! Determinism: each scenario's two runs are independent work units
//! under [`Ctx::map`], so reports are byte-identical at any `--jobs`
//! level. `tests/scenario_goldens.rs` pins each rendered report with an
//! FNV-1a hash, exactly like the experiment goldens.

use gnutella::dynamic::{GnutellaConfig, GnutellaReport};
use gossip::{Config as GossipConfig, GossipReport, GossipSim};
use guess::engine::GuessSim;
use guess::RunReport;
use simkit::scenario::{Param, Scenario};
use simkit::sim::Runnable;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};

/// A named, runnable scenario (the catalog counterpart of
/// [`crate::experiments::Experiment`]).
#[derive(Clone, Copy)]
pub struct ScenarioExperiment {
    /// CLI name (`repro scenario <name>`).
    pub name: &'static str,
    /// Which engine the timeline drives.
    pub engine: &'static str,
    /// What the scenario demonstrates.
    pub description: &'static str,
    /// Runs baseline + scenario and returns the comparison report.
    pub run: fn(&Ctx) -> Report,
}

impl std::fmt::Debug for ScenarioExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioExperiment")
            .field("name", &self.name)
            .finish()
    }
}

/// Every scenario, catalog order.
#[must_use]
pub fn all() -> Vec<ScenarioExperiment> {
    vec![
        ScenarioExperiment {
            name: "flash-crowd",
            engine: "guess",
            description: "a burst of simultaneous queries hits a steady GUESS network",
            run: run_flash_crowd,
        },
        ScenarioExperiment {
            name: "mass-exodus",
            engine: "guess",
            description: "half the peers die at once; caches cold-start and recover",
            run: run_mass_exodus,
        },
        ScenarioExperiment {
            name: "attack-onset",
            engine: "guess",
            description: "bad-peer fraction flips 0 -> 0.4 -> 0 under churn",
            run: run_attack_onset,
        },
        ScenarioExperiment {
            name: "partition-heal",
            engine: "gnutella",
            description: "the overlay splits into two halves, then heals",
            run: run_partition_heal,
        },
        ScenarioExperiment {
            name: "join-wave",
            engine: "gnutella",
            description: "the overlay grows by half its size in one instant",
            run: run_join_wave,
        },
        ScenarioExperiment {
            name: "param-flip",
            engine: "gossip",
            description: "gossip fanout flips 3 -> 1 -> 3 mid-run",
            run: run_param_flip,
        },
        ScenarioExperiment {
            name: "push-storm",
            engine: "guess",
            description: "mass death under push maintenance fires an invalidation storm",
            run: run_push_storm,
        },
    ]
}

/// Looks a scenario up by CLI name.
#[must_use]
pub fn find(name: &str) -> Option<ScenarioExperiment> {
    all().into_iter().find(|s| s.name == name)
}

/// Network size shared by every scenario at this scale (matches the
/// extension studies).
fn network_for(scale: Scale) -> usize {
    match scale {
        Scale::Full => 1000,
        Scale::Quick => 300,
    }
}

/// A timeline instant at `frac` of the post-warm-up window, in seconds.
/// Warm-up-relative placement keeps Quick and Full timelines congruent.
fn at(scale: Scale, frac: f64) -> f64 {
    let warmup = scale.warmup().as_secs();
    warmup + frac * (scale.duration().as_secs() - warmup)
}

// ---- comparison tables -------------------------------------------------

fn guess_table(base: &RunReport, scen: &RunReport) -> TableBlock {
    let mut t = TableBlock::new("comparison", vec!["metric", "baseline", "scenario"]);
    t.row(vec![
        Cell::text("queries"),
        Cell::uint(base.queries),
        Cell::uint(scen.queries),
    ]);
    t.row(vec![
        Cell::text("probes/query"),
        Cell::float(base.probes_per_query(), 1),
        Cell::float(scen.probes_per_query(), 1),
    ]);
    t.row(vec![
        Cell::text("unsatisfaction"),
        Cell::float(base.unsatisfaction(), 3),
        Cell::float(scen.unsatisfaction(), 3),
    ]);
    t.row(vec![
        Cell::text("births"),
        Cell::uint(base.counters.get("births")),
        Cell::uint(scen.counters.get("births")),
    ]);
    t.row(vec![
        Cell::text("deaths"),
        Cell::uint(base.counters.get("deaths")),
        Cell::uint(scen.counters.get("deaths")),
    ]);
    t.row(vec![
        Cell::text("interventions"),
        Cell::uint(base.counters.get("interventions")),
        Cell::uint(scen.counters.get("interventions")),
    ]);
    t
}

fn gnutella_table(base: &GnutellaReport, scen: &GnutellaReport) -> TableBlock {
    let mut t = TableBlock::new("comparison", vec!["metric", "baseline", "scenario"]);
    t.row(vec![
        Cell::text("queries"),
        Cell::uint(base.queries),
        Cell::uint(scen.queries),
    ]);
    t.row(vec![
        Cell::text("msgs/query"),
        Cell::float(base.messages_per_query(), 1),
        Cell::float(scen.messages_per_query(), 1),
    ]);
    t.row(vec![
        Cell::text("peers reached"),
        Cell::float(base.peers_reached.mean(), 1),
        Cell::float(scen.peers_reached.mean(), 1),
    ]);
    t.row(vec![
        Cell::text("unsatisfaction"),
        Cell::float(base.unsatisfaction(), 3),
        Cell::float(scen.unsatisfaction(), 3),
    ]);
    t.row(vec![
        Cell::text("repairs"),
        Cell::uint(base.counters.get("repairs")),
        Cell::uint(scen.counters.get("repairs")),
    ]);
    t.row(vec![
        Cell::text("interventions"),
        Cell::uint(base.counters.get("interventions")),
        Cell::uint(scen.counters.get("interventions")),
    ]);
    t
}

fn gossip_table(base: &GossipReport, scen: &GossipReport) -> TableBlock {
    let mut t = TableBlock::new("comparison", vec!["metric", "baseline", "scenario"]);
    t.row(vec![
        Cell::text("queries"),
        Cell::uint(base.queries),
        Cell::uint(scen.queries),
    ]);
    t.row(vec![
        Cell::text("msgs/query"),
        Cell::float(base.messages_per_query(), 1),
        Cell::float(scen.messages_per_query(), 1),
    ]);
    t.row(vec![
        Cell::text("peers reached"),
        Cell::float(base.peers_reached.mean(), 1),
        Cell::float(scen.peers_reached.mean(), 1),
    ]);
    t.row(vec![
        Cell::text("unsatisfaction"),
        Cell::float(base.unsatisfaction(), 3),
        Cell::float(scen.unsatisfaction(), 3),
    ]);
    t.row(vec![
        Cell::text("pushes"),
        Cell::uint(base.counters.get("pushes")),
        Cell::uint(scen.counters.get("pushes")),
    ]);
    t.row(vec![
        Cell::text("interventions"),
        Cell::uint(base.counters.get("interventions")),
        Cell::uint(scen.counters.get("interventions")),
    ]);
    t
}

// ---- the scenarios -----------------------------------------------------

fn run_guess_pair(
    ctx: &Ctx,
    cfg: guess::config::Config,
    scenario: &Scenario,
) -> (RunReport, RunReport) {
    let mut reports = ctx.map(vec![false, true], |intervened| {
        let sim = GuessSim::new(cfg.clone()).expect("valid config");
        if intervened {
            sim.run_scenario(scenario).expect("supported timeline")
        } else {
            sim.run()
        }
    });
    let scen = reports.pop().expect("two runs");
    let base = reports.pop().expect("two runs");
    (base, scen)
}

fn run_flash_crowd(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let queries = match scale {
        Scale::Full => 2000,
        Scale::Quick => 400,
    };
    let t = at(scale, 0.3);
    let scenario = Scenario::new().at(t).flash_crowd(queries);
    let cfg = base_config(scale, 0x5c01).with_network_size(n);
    let (base, scen) = run_guess_pair(ctx, cfg, &scenario);
    Report::new()
        .text(format!(
            "Scenario flash-crowd (guess, N={n}): {queries} simultaneous queries at t={t:.0}s.\n\
             The burst lands on warm caches, so probes/query should barely move while\n\
             the query count jumps by the injected volume.\n\n"
        ))
        .table(guess_table(&base, &scen))
}

fn run_mass_exodus(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let t = at(scale, 0.25);
    let scenario = Scenario::new().at(t).mass_leave(n / 2);
    let cfg = base_config(scale, 0x5c02).with_network_size(n);
    let (base, scen) = run_guess_pair(ctx, cfg, &scenario);
    Report::new()
        .text(format!(
            "Scenario mass-exodus (guess, N={n}): {} peers die at t={t:.0}s and are\n\
             replaced by cold-cache newborns (constant population). Dead cache entries\n\
             spike, then pings recover the network — watch unsatisfaction vs baseline.\n\n",
            n / 2
        ))
        .table(guess_table(&base, &scen))
}

fn run_attack_onset(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let (t1, t2) = (at(scale, 0.25), at(scale, 0.6));
    let scenario = Scenario::new()
        .at(t1)
        .param_flip(Param::BadPeerFraction(0.4))
        .at(t2)
        .param_flip(Param::BadPeerFraction(0.0));
    let mut cfg = base_config(scale, 0x5c03).with_network_size(n);
    // Strained churn so the flipped birth mix turns the population over
    // while the attack window is open.
    cfg.system.lifespan_multiplier = 0.2;
    let (base, scen) = run_guess_pair(ctx, cfg, &scenario);
    Report::new()
        .text(format!(
            "Scenario attack-onset (guess, N={n}, strained churn): newborn peers turn\n\
             malicious with probability 0.4 from t={t1:.0}s, back to honest at t={t2:.0}s.\n\
             Cache poisoning rises through the window and washes out after recovery.\n\n"
        ))
        .table(guess_table(&base, &scen))
}

fn run_partition_heal(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let (t1, t2) = (at(scale, 0.25), at(scale, 0.6));
    let mut reports = ctx.map(vec![false, true], |intervened| {
        let cfg = GnutellaConfig::default()
            .with_network_size(n)
            .with_duration(scale.duration())
            .with_warmup(scale.warmup())
            .with_seed(0x5c04);
        let sim = cfg.build().expect("valid config");
        if intervened {
            sim.run_scenario(&Scenario::new().at(t1).partition(2).at(t2).heal())
                .expect("supported timeline")
        } else {
            sim.run()
        }
    });
    let scen = reports.pop().expect("two runs");
    let base = reports.pop().expect("two runs");
    Report::new()
        .text(format!(
            "Scenario partition-heal (gnutella, N={n}): cross-group edges go dark at\n\
             t={t1:.0}s (two halves by slot parity), links restored at t={t2:.0}s. Floods\n\
             reach only their own half while split; repairs re-wire within halves.\n\n"
        ))
        .table(gnutella_table(&base, &scen))
}

fn run_join_wave(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let t = at(scale, 0.3);
    let mut reports = ctx.map(vec![false, true], |intervened| {
        let cfg = GnutellaConfig::default()
            .with_network_size(n)
            .with_duration(scale.duration())
            .with_warmup(scale.warmup())
            .with_seed(0x5c05);
        let sim = cfg.build().expect("valid config");
        if intervened {
            sim.run_scenario(&Scenario::new().at(t).mass_join(n / 2))
                .expect("supported timeline")
        } else {
            sim.run()
        }
    });
    let scen = reports.pop().expect("two runs");
    let base = reports.pop().expect("two runs");
    Report::new()
        .text(format!(
            "Scenario join-wave (gnutella, N={n}): {} newborn peers wire themselves\n\
             into the overlay at t={t:.0}s. Floods over the grown overlay reach more\n\
             peers and cost more messages per query.\n\n",
            n / 2
        ))
        .table(gnutella_table(&base, &scen))
}

fn run_param_flip(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let (t1, t2) = (at(scale, 0.25), at(scale, 0.6));
    let mut reports = ctx.map(vec![false, true], |intervened| {
        let cfg = GossipConfig::default()
            .with_network_size(n)
            .with_duration(scale.duration())
            .with_warmup(scale.warmup())
            .with_seed(0x5c06);
        let sim = GossipSim::new(cfg).expect("valid config");
        if intervened {
            sim.run_scenario(
                &Scenario::new()
                    .at(t1)
                    .param_flip(Param::Fanout(1))
                    .at(t2)
                    .param_flip(Param::Fanout(3)),
            )
            .expect("supported timeline")
        } else {
            sim.run()
        }
    });
    let scen = reports.pop().expect("two runs");
    let base = reports.pop().expect("two runs");
    Report::new()
        .text(format!(
            "Scenario param-flip (gossip, N={n}): fanout drops 3 -> 1 at t={t1:.0}s\n\
             (infect-and-die epidemics starve) and recovers to 3 at t={t2:.0}s. Both\n\
             flips re-validate through the config's own rules before taking effect.\n\n"
        ))
        .table(gossip_table(&base, &scen))
}

fn run_push_storm(ctx: &Ctx) -> Report {
    use guess::MaintenanceMode;

    let scale = ctx.scale();
    let n = network_for(scale);
    let t = at(scale, 0.3);
    let scenario = Scenario::new().at(t).mass_leave(n / 2);
    let mut cfg = base_config(scale, 0x5c07)
        .with_network_size(n)
        .with_maintenance_mode(MaintenanceMode::Push);
    // Strained churn keeps the interest registry full of entries worth
    // invalidating when the wave hits.
    cfg.system.lifespan_multiplier = 0.2;
    if let Some(threshold) = ctx.metrics_threshold() {
        let size = cfg.run.metrics_sample_size;
        cfg = cfg.with_metrics_sampling(threshold, size);
    }
    let (base, scen) = run_guess_pair(ctx, cfg, &scenario);
    let mut table = guess_table(&base, &scen);
    table.row(vec![
        Cell::text("push invalidations"),
        Cell::uint(base.counters.get("push_invalidations")),
        Cell::uint(scen.counters.get("push_invalidations")),
    ]);
    table.row(vec![
        Cell::text("push refreshes"),
        Cell::uint(base.counters.get("push_refreshes")),
        Cell::uint(scen.counters.get("push_refreshes")),
    ]);
    table.row(vec![
        Cell::text("push refused"),
        Cell::uint(base.counters.get("push_refused")),
        Cell::uint(scen.counters.get("push_refused")),
    ]);
    Report::new()
        .text(format!(
            "Scenario push-storm (guess, N={n}, strained churn, push maintenance):\n\
             {} peers die at once at t={t:.0}s. Every death drains its interest list\n\
             into an invalidation tree, so the wave lands as a burst of pushed\n\
             invalidations contending with query probes for capacity — watch the\n\
             pushed-invalidation and refused counts against the baseline.\n\n",
            n / 2
        ))
        .table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_findable() {
        let mut names: Vec<&str> = all().iter().map(|s| s.name).collect();
        assert!(names.len() >= 6, "the catalog ships at least six scenarios");
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(find("flash-crowd").is_some());
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn catalog_covers_all_three_engines() {
        let engines: Vec<&str> = all().iter().map(|s| s.engine).collect();
        for engine in ["guess", "gnutella", "gossip"] {
            assert!(engines.contains(&engine), "no scenario drives {engine}");
        }
    }

    #[test]
    fn timeline_instants_land_after_warmup() {
        for scale in [Scale::Full, Scale::Quick] {
            for frac in [0.0, 0.25, 0.6, 1.0] {
                let t = at(scale, frac);
                assert!(t >= scale.warmup().as_secs());
                assert!(t <= scale.duration().as_secs());
            }
        }
    }
}
