//! `guess-bench` — the experiment harness that regenerates every table and
//! figure of *Evaluating GUESS and Non-Forwarding Peer-to-Peer Search*
//! (ICDCS 2004).
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p guess-bench --bin repro -- all
//! ```
//!
//! or a single experiment (`table3`, `fig3` … `fig21`, `response`):
//!
//! ```text
//! cargo run --release -p guess-bench --bin repro -- fig8
//! cargo run --release -p guess-bench --bin repro -- fig16 --quick
//! ```
//!
//! Each report prints measured values next to the paper's stated numbers
//! where the paper gives any, so shape agreement is directly visible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod alloc_meter;
pub mod bench;
pub mod experiments;
pub mod report;
pub mod runner;
pub mod scale;
pub mod scenarios;
pub mod table;
pub mod tracefile;

/// Reads `--jobs N` from the process arguments, defaulting to the
/// machine's available parallelism — the shared knob of the scratch
/// binaries (`repro` parses its richer CLI itself).
#[must_use]
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(1),
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}
