//! `guess-bench` — the experiment harness that regenerates every table and
//! figure of *Evaluating GUESS and Non-Forwarding Peer-to-Peer Search*
//! (ICDCS 2004).
//!
//! Run everything:
//!
//! ```text
//! cargo run --release -p guess-bench --bin repro -- all
//! ```
//!
//! or a single experiment (`table3`, `fig3` … `fig21`, `response`):
//!
//! ```text
//! cargo run --release -p guess-bench --bin repro -- fig8
//! cargo run --release -p guess-bench --bin repro -- fig16 --quick
//! ```
//!
//! Each report prints measured values next to the paper's stated numbers
//! where the paper gives any, so shape agreement is directly visible.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod scale;
pub mod table;
