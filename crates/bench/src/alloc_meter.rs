//! Process-wide allocation metering behind the bench harness's
//! `bytes_per_peer` column.
//!
//! A [`GlobalAlloc`] wrapper around [`System`] keeps two relaxed
//! atomics: the bytes currently allocated and the high-water mark since
//! the last [`reset_peak`]. The overhead is two uncontended atomic ops
//! per allocation — far below the noise floor of the wall-clock numbers
//! the harness reports — so the meter is installed unconditionally for
//! every binary and test that links this crate.
//!
//! The counters are process-global: a measurement taken while other
//! threads allocate attributes their traffic to the measured region.
//! `repro bench` runs its workloads serially on the main thread, which
//! is the only place peak deltas are read.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// [`System`] plus current/peak byte accounting.
pub struct CountingAlloc;

fn grow(n: usize) {
    let now = CURRENT.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System` unchanged; the atomics
// only observe sizes and never affect the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            grow(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            grow(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            grow(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Bytes currently allocated process-wide.
#[must_use]
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// The high-water mark since the last [`reset_peak`].
#[must_use]
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Rebases the high-water mark to the current allocation level, so the
/// next [`peak_bytes`] reading covers only what happens after this call.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_a_large_allocation() {
        reset_peak();
        let before = peak_bytes();
        let buf = vec![0u8; 1 << 20];
        assert!(
            peak_bytes() >= before + (1 << 20),
            "1 MiB allocation must raise the peak"
        );
        drop(buf);
        let high = peak_bytes();
        reset_peak();
        assert!(
            peak_bytes() <= high,
            "reset rebases the peak to the (lower) current level"
        );
    }
}
