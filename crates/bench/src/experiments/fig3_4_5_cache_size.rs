//! Figures 3, 4, 5: query cost and satisfaction as cache size varies.
//!
//! Setup (§6.1): `LifespanMultiplier = 0.2`, Random policies, network
//! sizes 200–5000, cache sizes from 5 up to the network size. The three
//! figures read the same sweep:
//!
//! * Fig 3 — probes/query grows with cache size, at every network size;
//! * Fig 4 — unsatisfaction is minimized at a *moderate* cache size
//!   (the paper marks 20–70) and rises again for large caches;
//! * Fig 5 — (N=1000) dead probes grow with cache size while good probes
//!   peak around cache size 20.

use std::collections::HashMap;
use std::sync::Mutex;

use guess::engine::GuessSim;

use crate::scale::{strained_config, Scale};
use crate::table::{fnum, Table};

/// One sweep sample.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// NetworkSize of the run.
    pub network: usize,
    /// CacheSize of the run.
    pub cache: usize,
    /// Mean probes per query.
    pub probes: f64,
    /// Mean good probes per query.
    pub good: f64,
    /// Mean dead probes per query.
    pub dead: f64,
    /// Unsatisfied-query fraction.
    pub unsat: f64,
}

static SWEEP: Mutex<Option<HashMap<Scale, Vec<Point>>>> = Mutex::new(None);

fn cache_grid(network: usize, scale: Scale) -> Vec<usize> {
    let base = [5usize, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000];
    let mut grid: Vec<usize> = scale
        .cache_sizes(&base)
        .into_iter()
        .filter(|&c| c <= network)
        .collect();
    if !grid.contains(&network) {
        grid.push(network);
    }
    grid
}

/// The shared Figure 3/4/5 sweep (memoized per scale).
#[must_use]
pub fn sweep(scale: Scale) -> Vec<Point> {
    let store = &SWEEP;
    {
        let mut guard = store.lock().expect("sweep memo");
        let map = guard.get_or_insert_with(HashMap::new);
        if let Some(v) = map.get(&scale) {
            return v.clone();
        }
    }
    let mut points = Vec::new();
    for network in scale.network_sizes() {
        for cache in cache_grid(network, scale) {
            let cfg = strained_config(scale, network, cache, 0xf135 + (network * 31 + cache) as u64);
            let report = GuessSim::new(cfg).expect("valid config").run();
            points.push(Point {
                network,
                cache,
                probes: report.probes_per_query(),
                good: report.good_per_query(),
                dead: report.dead_per_query(),
                unsat: report.unsatisfaction(),
            });
        }
    }
    store
        .lock()
        .expect("sweep memo")
        .get_or_insert_with(HashMap::new)
        .insert(scale, points.clone());
    points
}

/// Figure 3: probes/query vs cache size.
#[must_use]
pub fn run_fig3(scale: Scale) -> String {
    let points = sweep(scale);
    let mut table = Table::new(vec!["NetworkSize", "CacheSize", "probes/query"]);
    for p in &points {
        table.row(vec![p.network.to_string(), p.cache.to_string(), fnum(p.probes, 1)]);
    }
    format!(
        "Figure 3 — probes/query vs CacheSize (LifespanMultiplier=0.2, Random policies)\n\
         Expected shape: cost rises monotonically-ish with cache size at every network size.\n\n{}",
        table.render()
    )
}

/// Figure 4: unsatisfaction vs cache size.
#[must_use]
pub fn run_fig4(scale: Scale) -> String {
    let points = sweep(scale);
    let mut table = Table::new(vec!["NetworkSize", "CacheSize", "unsatisfied"]);
    for p in &points {
        table.row(vec![p.network.to_string(), p.cache.to_string(), fnum(p.unsat, 3)]);
    }
    format!(
        "Figure 4 — unsatisfaction vs CacheSize (same sweep as Figure 3)\n\
         Expected shape: high at tiny caches, minimum at moderate caches (paper: 20-70),\n\
         rising again at very large caches.\n\n{}",
        table.render()
    )
}

/// Figure 5: good vs dead probe breakdown at N=1000.
#[must_use]
pub fn run_fig5(scale: Scale) -> String {
    let points = sweep(scale);
    let slice_network = if points.iter().any(|p| p.network == 1000) { 1000 } else { 500 };
    let mut table = Table::new(vec!["CacheSize", "good/query", "dead/query"]);
    for p in points.iter().filter(|p| p.network == slice_network) {
        table.row(vec![p.cache.to_string(), fnum(p.good, 1), fnum(p.dead, 1)]);
    }
    format!(
        "Figure 5 — probe breakdown vs CacheSize (N={slice_network})\n\
         Expected shape: dead probes rise sharply with cache size then level off;\n\
         good probes peak near CacheSize=20 (paper: ~30% above the CacheSize=200 level).\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_grid_is_bounded_by_network() {
        for &n in &[200usize, 1000, 5000] {
            for c in cache_grid(n, Scale::Full) {
                assert!(c <= n, "cache {c} exceeds network {n}");
            }
            assert!(cache_grid(n, Scale::Full).contains(&n), "full-network cache included");
        }
    }

    #[test]
    fn quick_sweep_covers_both_networks() {
        let pts = sweep(Scale::Quick);
        for n in Scale::Quick.network_sizes() {
            assert!(pts.iter().any(|p| p.network == n), "missing network {n}");
        }
        // Memoization: second call returns identical data.
        let again = sweep(Scale::Quick);
        assert_eq!(pts.len(), again.len());
    }

    #[test]
    fn reports_render() {
        // Uses the memoized sweep from the previous test when run in the
        // same process; otherwise computes it.
        let f3 = run_fig3(Scale::Quick);
        let f4 = run_fig4(Scale::Quick);
        let f5 = run_fig5(Scale::Quick);
        assert!(f3.contains("probes/query"));
        assert!(f4.contains("unsatisfied"));
        assert!(f5.contains("dead/query"));
    }
}
