//! Figures 3, 4, 5: query cost and satisfaction as cache size varies.
//!
//! Setup (§6.1): `LifespanMultiplier = 0.2`, Random policies, network
//! sizes 200–5000, cache sizes from 5 up to the network size. The three
//! figures read the same sweep, computed once per [`Ctx`] and shared
//! through it (every `(network, cache)` point has its own seed, so the
//! points run in parallel):
//!
//! * Fig 3 — probes/query grows with cache size, at every network size;
//! * Fig 4 — unsatisfaction is minimized at a *moderate* cache size
//!   (the paper marks 20–70) and rises again for large caches;
//! * Fig 5 — (N=1000) dead probes grow with cache size while good probes
//!   peak around cache size 20.

use std::sync::Arc;

use guess::engine::GuessSim;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{strained_config, Scale};
use simkit::sim::Runnable;

/// One sweep sample.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// NetworkSize of the run.
    pub network: usize,
    /// CacheSize of the run.
    pub cache: usize,
    /// Mean probes per query.
    pub probes: f64,
    /// Mean good probes per query.
    pub good: f64,
    /// Mean dead probes per query.
    pub dead: f64,
    /// Unsatisfied-query fraction.
    pub unsat: f64,
}

fn cache_grid(network: usize, scale: Scale) -> Vec<usize> {
    let base = [5usize, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000];
    let mut grid: Vec<usize> = scale
        .cache_sizes(&base)
        .into_iter()
        .filter(|&c| c <= network)
        .collect();
    if !grid.contains(&network) {
        grid.push(network);
    }
    grid
}

/// The shared Figure 3/4/5 sweep (computed once per context).
#[must_use]
pub fn sweep(ctx: &Ctx) -> Arc<Vec<Point>> {
    ctx.shared("fig3_4_5/sweep", |ctx| {
        let scale = ctx.scale();
        let mut grid = Vec::new();
        for network in scale.network_sizes() {
            for cache in cache_grid(network, scale) {
                grid.push((network, cache));
            }
        }
        ctx.map(grid, |(network, cache)| {
            let cfg = strained_config(
                scale,
                network,
                cache,
                0xf135 + (network * 31 + cache) as u64,
            );
            let report = GuessSim::new(cfg).expect("valid config").run();
            Point {
                network,
                cache,
                probes: report.probes_per_query(),
                good: report.good_per_query(),
                dead: report.dead_per_query(),
                unsat: report.unsatisfaction(),
            }
        })
    })
}

/// Figure 3: probes/query vs cache size.
#[must_use]
pub fn run_fig3(ctx: &Ctx) -> Report {
    let points = sweep(ctx);
    let mut table = TableBlock::new(
        "probes_vs_cache",
        vec!["NetworkSize", "CacheSize", "probes/query"],
    );
    for p in points.iter() {
        table.row(vec![
            Cell::size(p.network),
            Cell::size(p.cache),
            Cell::float(p.probes, 1),
        ]);
    }
    Report::new()
        .text(
            "Figure 3 — probes/query vs CacheSize (LifespanMultiplier=0.2, Random policies)\n\
             Expected shape: cost rises monotonically-ish with cache size at every network size.\n\n",
        )
        .table(table)
}

/// Figure 4: unsatisfaction vs cache size.
#[must_use]
pub fn run_fig4(ctx: &Ctx) -> Report {
    let points = sweep(ctx);
    let mut table = TableBlock::new(
        "unsat_vs_cache",
        vec!["NetworkSize", "CacheSize", "unsatisfied"],
    );
    for p in points.iter() {
        table.row(vec![
            Cell::size(p.network),
            Cell::size(p.cache),
            Cell::float(p.unsat, 3),
        ]);
    }
    Report::new()
        .text(
            "Figure 4 — unsatisfaction vs CacheSize (same sweep as Figure 3)\n\
             Expected shape: high at tiny caches, minimum at moderate caches (paper: 20-70),\n\
             rising again at very large caches.\n\n",
        )
        .table(table)
}

/// Figure 5: good vs dead probe breakdown at N=1000.
#[must_use]
pub fn run_fig5(ctx: &Ctx) -> Report {
    let points = sweep(ctx);
    let slice_network = if points.iter().any(|p| p.network == 1000) {
        1000
    } else {
        500
    };
    let mut table = TableBlock::new(
        "probe_breakdown",
        vec!["CacheSize", "good/query", "dead/query"],
    );
    for p in points.iter().filter(|p| p.network == slice_network) {
        table.row(vec![
            Cell::size(p.cache),
            Cell::float(p.good, 1),
            Cell::float(p.dead, 1),
        ]);
    }
    Report::new()
        .text(format!(
            "Figure 5 — probe breakdown vs CacheSize (N={slice_network})\n\
             Expected shape: dead probes rise sharply with cache size then level off;\n\
             good probes peak near CacheSize=20 (paper: ~30% above the CacheSize=200 level).\n\n"
        ))
        .table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_grid_is_bounded_by_network() {
        for &n in &[200usize, 1000, 5000] {
            for c in cache_grid(n, Scale::Full) {
                assert!(c <= n, "cache {c} exceeds network {n}");
            }
            assert!(
                cache_grid(n, Scale::Full).contains(&n),
                "full-network cache included"
            );
        }
    }

    #[test]
    fn quick_sweep_covers_both_networks() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let pts = sweep(&ctx);
        for n in Scale::Quick.network_sizes() {
            assert!(pts.iter().any(|p| p.network == n), "missing network {n}");
        }
        // Sharing: a second call returns the same computed data.
        let again = sweep(&ctx);
        assert_eq!(pts.len(), again.len());
        assert!(
            Arc::ptr_eq(&pts, &again),
            "second call shares the first sweep"
        );
    }

    #[test]
    fn reports_render() {
        // One context: the three figures share a single sweep.
        let ctx = Ctx::new(Scale::Quick, 2);
        let f3 = run_fig3(&ctx).render_text();
        let f4 = run_fig4(&ctx).render_text();
        let f5 = run_fig5(&ctx).render_text();
        assert!(f3.contains("probes/query"));
        assert!(f4.contains("unsatisfied"));
        assert!(f5.contains("dead/query"));
    }
}
