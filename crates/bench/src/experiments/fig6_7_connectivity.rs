//! Figures 6 and 7: overlay connectivity vs ping interval.
//!
//! Setup (§6.1): queries are **off** to isolate ping-driven maintenance;
//! `LifespanMultiplier = 0.2` keeps churn pressure on. The metric is the
//! mean size of the largest connected component (LCC) of the live
//! conceptual overlay.
//!
//! * Fig 6 — N=1000, one curve per cache size: small caches fragment
//!   first as the ping interval grows.
//! * Fig 7 — CacheSize=20, one curve per network size: *relative*
//!   connectivity (LCC/N) is largely independent of N.

use guess::engine::GuessSim;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{strained_config, Scale};
use simkit::sim::Runnable;

/// Ping intervals swept, in seconds (the paper's x-axis spans 0–600).
#[must_use]
pub fn ping_intervals(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Full => vec![15.0, 30.0, 60.0, 120.0, 240.0, 480.0, 600.0],
        Scale::Quick => vec![15.0, 120.0, 600.0],
    }
}

fn lcc_for(scale: Scale, network: usize, cache: usize, interval: f64, seed: u64) -> f64 {
    let mut cfg = strained_config(scale, network, cache, seed);
    cfg.run.simulate_queries = false;
    cfg.protocol.ping_interval = simkit::time::SimDuration::from_secs(interval);
    let report = GuessSim::new(cfg).expect("valid config").run();
    report.largest_component.unwrap_or(f64::NAN)
}

/// Figure 6: LCC vs ping interval, per cache size, N=1000.
#[must_use]
pub fn run_fig6(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let caches: Vec<usize> = match scale {
        Scale::Full => vec![10, 20, 50, 100, 200, 500],
        Scale::Quick => vec![10, 50, 200],
    };
    let network = match scale {
        Scale::Full => 1000,
        Scale::Quick => 300,
    };
    let mut grid = Vec::new();
    for &cache in &caches {
        for &interval in &ping_intervals(scale) {
            grid.push((cache, interval));
        }
    }
    let rows = ctx.map(grid, |(cache, interval)| {
        let lcc = lcc_for(scale, network, cache, interval, 0xf16 + cache as u64);
        vec![
            Cell::size(cache),
            Cell::float(interval, 0),
            Cell::float(lcc, 0),
        ]
    });
    let mut table = TableBlock::new("lcc_vs_interval", vec!["CacheSize", "PingInterval", "LCC"]);
    for row in rows {
        table.row(row);
    }
    Report::new()
        .text(format!(
            "Figure 6 — largest connected component vs PingInterval (N={network}, queries off)\n\
             Expected shape: connectivity decays as PingInterval grows; the smallest caches\n\
             fragment first (they hold the fewest absolute live entries).\n\n"
        ))
        .table(table)
}

/// Figure 7: relative LCC vs ping interval, per network size, CacheSize=20.
#[must_use]
pub fn run_fig7(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let networks: Vec<usize> = match scale {
        Scale::Full => vec![200, 500, 1000, 2000],
        Scale::Quick => vec![200, 500],
    };
    let mut grid = Vec::new();
    for &network in &networks {
        for &interval in &ping_intervals(scale) {
            grid.push((network, interval));
        }
    }
    let rows = ctx.map(grid, |(network, interval)| {
        let lcc = lcc_for(scale, network, 20, interval, 0xf17 + network as u64);
        vec![
            Cell::size(network),
            Cell::float(interval, 0),
            Cell::float(lcc / network as f64, 3),
        ]
    });
    let mut table = TableBlock::new("relative_lcc", vec!["NetworkSize", "PingInterval", "LCC/N"]);
    for row in rows {
        table.row(row);
    }
    Report::new()
        .text(
            "Figure 7 — relative connectivity vs PingInterval (CacheSize=20)\n\
             Expected shape: at a given PingInterval, LCC/N is roughly the same across\n\
             network sizes — ping-interval selection is independent of N.\n\n",
        )
        .table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_are_increasing() {
        for scale in [Scale::Full, Scale::Quick] {
            let v = ping_intervals(scale);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn tight_pinging_keeps_network_connected() {
        let lcc = lcc_for(Scale::Quick, 200, 20, 10.0, 1);
        assert!(
            lcc > 160.0,
            "10s pings should keep a 200-peer overlay connected, got {lcc}"
        );
    }

    #[test]
    fn connectivity_decays_with_interval() {
        // Tiny caches + glacial pings must fragment relative to fast pings.
        let fast = lcc_for(Scale::Quick, 200, 5, 10.0, 2);
        let slow = lcc_for(Scale::Quick, 200, 5, 600.0, 2);
        assert!(
            slow < fast,
            "LCC should shrink as PingInterval grows: fast={fast} slow={slow}"
        );
    }
}
