//! Figures 16–21: robustness of policies to cache poisoning.
//!
//! Setup (§6.4): N=1000 defaults; `PercentBadPeers` ∈ {0, 5, 10, 15, 20};
//! four policy configurations applied uniformly to QueryProbe / QueryPong /
//! CacheReplacement — Random, MR, MR\* (MR + `ResetNumResults`), MFS.
//! Each collusion mode's sweep is computed once per [`Ctx`] and shared by
//! its three figures.
//!
//! * No collusion (`BadPongBehavior = Dead`, Figs 16–18): malicious pongs
//!   carry fabricated dead addresses. MFS collapses (it trusts claimed
//!   NumFiles, so attackers and their dead IPs stick in caches); Random,
//!   MR and MR\* stay robust.
//! * Collusion (`BadPongBehavior = Bad`, Figs 19–21): malicious pongs
//!   carry other attackers' addresses. Now MR collapses too — attackers
//!   re-enter caches faster than NumRes=0 evicts them; only Random and
//!   MR\* survive, with MR\* cheaper than Random.

use std::sync::Arc;

use guess::config::BadPongBehavior;
use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};
use simkit::sim::Runnable;

/// Bad-peer fractions swept (the paper's 0–20 %).
pub const FRACTIONS: [f64; 5] = [0.0, 0.05, 0.10, 0.15, 0.20];

/// One sweep sample.
#[derive(Debug, Clone)]
pub struct Point {
    /// Display name of the policy configuration.
    pub policy: String,
    /// Fraction of bad peers.
    pub bad: f64,
    /// Mean probes per query.
    pub probes: f64,
    /// Unsatisfied fraction.
    pub unsat: f64,
    /// Mean "unpoisoned" (live good) entries in good peers' caches.
    pub good_entries: f64,
}

/// The four policy configurations of the figures.
#[must_use]
pub fn policies() -> Vec<(&'static str, SelectionPolicy, bool)> {
    // (name, uniform policy, reset_num_results)
    vec![
        ("Random", SelectionPolicy::Random, false),
        ("MR", SelectionPolicy::Mr, false),
        ("MR*", SelectionPolicy::Mr, true),
        ("MFS", SelectionPolicy::Mfs, false),
    ]
}

/// The malicious-peer sweep (computed once per context per mode);
/// `collusion` selects `BadPongBehavior::Bad` vs `Dead`.
#[must_use]
pub fn sweep(ctx: &Ctx, collusion: bool) -> Arc<Vec<Point>> {
    let key = if collusion {
        "fig16_21/collusion"
    } else {
        "fig16_21/no_collusion"
    };
    ctx.shared(key, |ctx| {
        let scale = ctx.scale();
        let fractions: Vec<f64> = match scale {
            Scale::Full => FRACTIONS.to_vec(),
            Scale::Quick => vec![0.0, 0.10, 0.20],
        };
        let mut grid = Vec::new();
        for (pi, (name, policy, reset)) in policies().into_iter().enumerate() {
            for (fi, &bad) in fractions.iter().enumerate() {
                grid.push((pi, fi, name, policy, reset, bad));
            }
        }
        ctx.map(grid, |(pi, fi, name, policy, reset, bad)| {
            let behavior = if collusion {
                BadPongBehavior::Bad
            } else {
                BadPongBehavior::Dead
            };
            let mut cfg = base_config(scale, 0xf16 + (pi * 16 + fi) as u64)
                .with_bad_peers(bad, behavior)
                .with_uniform_policy(policy)
                .with_reset_num_results(reset);
            if scale == Scale::Quick {
                cfg = cfg.with_network_size(300);
            }
            let report = GuessSim::new(cfg).expect("valid config").run();
            Point {
                policy: name.to_string(),
                bad,
                probes: report.probes_per_query(),
                unsat: report.unsatisfaction(),
                good_entries: report.good_entries.unwrap_or(f64::NAN),
            }
        })
    })
}

fn render(
    name: &str,
    points: &[Point],
    metric: fn(&Point) -> f64,
    col: &str,
    prec: usize,
) -> TableBlock {
    let mut table = TableBlock::new(name, vec!["policy", "% bad", col]);
    for p in points {
        table.row(vec![
            Cell::text(p.policy.clone()),
            Cell::float(p.bad * 100.0, 0),
            Cell::float(metric(p), prec),
        ]);
    }
    table
}

/// Figure 16: probes/query, no collusion.
#[must_use]
pub fn run_fig16(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, false);
    Report::new()
        .text(
            "Figure 16 — probes/query vs %bad (BadPong=Dead, no collusion)\n\
             Expected shape: MFS cost blows up with %bad; Random/MR/MR* stay flat-ish.\n\n",
        )
        .table(render(
            "probes_no_collusion",
            &pts,
            |p| p.probes,
            "probes/query",
            1,
        ))
}

/// Figure 17: unsatisfaction, no collusion.
#[must_use]
pub fn run_fig17(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, false);
    Report::new()
        .text(
            "Figure 17 — unsatisfaction vs %bad (BadPong=Dead)\n\
             Expected shape: MFS degrades toward total failure by 20% bad;\n\
             MR keeps the best cost/robustness tradeoff; MR* and Random robust.\n\n",
        )
        .table(render(
            "unsat_no_collusion",
            &pts,
            |p| p.unsat,
            "unsatisfied",
            3,
        ))
}

/// Figure 18: good cache entries, no collusion.
#[must_use]
pub fn run_fig18(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, false);
    Report::new()
        .text(
            "Figure 18 — unpoisoned link-cache entries vs %bad (BadPong=Dead)\n\
             Expected shape: good entries collapse for MFS only.\n\n",
        )
        .table(render(
            "good_entries_no_collusion",
            &pts,
            |p| p.good_entries,
            "good entries",
            1,
        ))
}

/// Figure 19: probes/query, collusion.
#[must_use]
pub fn run_fig19(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, true);
    Report::new()
        .text(
            "Figure 19 — probes/query vs %bad (BadPong=Bad, collusion)\n\
             Expected shape: both MFS and MR degrade; Random and MR* stay usable,\n\
             with MR* cheaper than Random.\n\n",
        )
        .table(render(
            "probes_collusion",
            &pts,
            |p| p.probes,
            "probes/query",
            1,
        ))
}

/// Figure 20: unsatisfaction, collusion.
#[must_use]
pub fn run_fig20(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, true);
    Report::new()
        .text(
            "Figure 20 — unsatisfaction vs %bad (BadPong=Bad, collusion)\n\
             Expected shape: MFS and MR head toward 100% unsatisfied at 20% bad;\n\
             MR* and Random stay robust.\n\n",
        )
        .table(render(
            "unsat_collusion",
            &pts,
            |p| p.unsat,
            "unsatisfied",
            3,
        ))
}

/// Figure 21: good cache entries, collusion.
#[must_use]
pub fn run_fig21(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, true);
    Report::new()
        .text(
            "Figure 21 — unpoisoned link-cache entries vs %bad (BadPong=Bad)\n\
             Expected shape: caches poison heavily for both MR and MFS;\n\
             Random and MR* retain good entries.\n\n",
        )
        .table(render(
            "good_entries_collusion",
            &pts,
            |p| p.good_entries,
            "good entries",
            1,
        ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_policies_and_fractions() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let pts = sweep(&ctx, false);
        assert_eq!(pts.len(), 4 * 3);
        for (name, _, _) in policies() {
            assert!(pts.iter().any(|p| p.policy == name));
        }
    }

    #[test]
    fn mfs_degrades_under_poisoning() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let pts = sweep(&ctx, false);
        let mfs_clean = pts
            .iter()
            .find(|p| p.policy == "MFS" && p.bad == 0.0)
            .unwrap();
        let mfs_poisoned = pts
            .iter()
            .find(|p| p.policy == "MFS" && p.bad == 0.20)
            .unwrap();
        assert!(
            mfs_poisoned.unsat > mfs_clean.unsat,
            "MFS unsat should rise under poisoning: {} -> {}",
            mfs_clean.unsat,
            mfs_poisoned.unsat
        );
        assert!(
            mfs_poisoned.good_entries < mfs_clean.good_entries,
            "MFS caches should poison"
        );
    }

    #[test]
    fn reports_render() {
        let ctx = Ctx::new(Scale::Quick, 2);
        for f in [
            run_fig16, run_fig17, run_fig18, run_fig19, run_fig20, run_fig21,
        ] {
            let out = f(&ctx).render_text();
            assert!(out.contains("MR*"));
        }
    }
}
