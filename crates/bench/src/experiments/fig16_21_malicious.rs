//! Figures 16–21: robustness of policies to cache poisoning.
//!
//! Setup (§6.4): N=1000 defaults; `PercentBadPeers` ∈ {0, 5, 10, 15, 20};
//! four policy configurations applied uniformly to QueryProbe / QueryPong /
//! CacheReplacement — Random, MR, MR\* (MR + `ResetNumResults`), MFS.
//!
//! * No collusion (`BadPongBehavior = Dead`, Figs 16–18): malicious pongs
//!   carry fabricated dead addresses. MFS collapses (it trusts claimed
//!   NumFiles, so attackers and their dead IPs stick in caches); Random,
//!   MR and MR\* stay robust.
//! * Collusion (`BadPongBehavior = Bad`, Figs 19–21): malicious pongs
//!   carry other attackers' addresses. Now MR collapses too — attackers
//!   re-enter caches faster than NumRes=0 evicts them; only Random and
//!   MR\* survive, with MR\* cheaper than Random.

use std::collections::HashMap;
use std::sync::Mutex;

use guess::config::BadPongBehavior;
use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;

use crate::scale::{base_config, Scale};
use crate::table::{fnum, Table};

/// Bad-peer fractions swept (the paper's 0–20 %).
pub const FRACTIONS: [f64; 5] = [0.0, 0.05, 0.10, 0.15, 0.20];

/// One sweep sample.
#[derive(Debug, Clone)]
pub struct Point {
    /// Display name of the policy configuration.
    pub policy: String,
    /// Fraction of bad peers.
    pub bad: f64,
    /// Mean probes per query.
    pub probes: f64,
    /// Unsatisfied fraction.
    pub unsat: f64,
    /// Mean "unpoisoned" (live good) entries in good peers' caches.
    pub good_entries: f64,
}

static SWEEP: Mutex<Option<HashMap<(Scale, bool), Vec<Point>>>> = Mutex::new(None);

/// The four policy configurations of the figures.
#[must_use]
pub fn policies() -> Vec<(&'static str, SelectionPolicy, bool)> {
    // (name, uniform policy, reset_num_results)
    vec![
        ("Random", SelectionPolicy::Random, false),
        ("MR", SelectionPolicy::Mr, false),
        ("MR*", SelectionPolicy::Mr, true),
        ("MFS", SelectionPolicy::Mfs, false),
    ]
}

/// The (memoized) malicious-peer sweep; `collusion` selects
/// `BadPongBehavior::Bad` vs `Dead`.
#[must_use]
pub fn sweep(scale: Scale, collusion: bool) -> Vec<Point> {
    {
        let mut guard = SWEEP.lock().expect("memo");
        if let Some(v) = guard.get_or_insert_with(HashMap::new).get(&(scale, collusion)) {
            return v.clone();
        }
    }
    let fractions: Vec<f64> = match scale {
        Scale::Full => FRACTIONS.to_vec(),
        Scale::Quick => vec![0.0, 0.10, 0.20],
    };
    let mut points = Vec::new();
    for (pi, (name, policy, reset)) in policies().into_iter().enumerate() {
        for (fi, &bad) in fractions.iter().enumerate() {
            let mut cfg = base_config(scale, 0xf16 + (pi * 16 + fi) as u64);
            if scale == Scale::Quick {
                cfg.system.network_size = 300;
            }
            cfg.system.bad_peer_fraction = bad;
            cfg.system.bad_pong_behavior =
                if collusion { BadPongBehavior::Bad } else { BadPongBehavior::Dead };
            cfg.protocol = cfg.protocol.with_uniform_policy(policy);
            cfg.protocol.reset_num_results = reset;
            let report = GuessSim::new(cfg).expect("valid config").run();
            points.push(Point {
                policy: name.to_string(),
                bad,
                probes: report.probes_per_query(),
                unsat: report.unsatisfaction(),
                good_entries: report.good_entries.unwrap_or(f64::NAN),
            });
        }
    }
    SWEEP
        .lock()
        .expect("memo")
        .get_or_insert_with(HashMap::new)
        .insert((scale, collusion), points.clone());
    points
}

fn render(points: &[Point], metric: fn(&Point) -> f64, col: &str, prec: usize) -> String {
    let mut table = Table::new(vec!["policy", "% bad", col]);
    for p in points {
        table.row(vec![p.policy.clone(), fnum(p.bad * 100.0, 0), fnum(metric(p), prec)]);
    }
    table.render()
}

/// Figure 16: probes/query, no collusion.
#[must_use]
pub fn run_fig16(scale: Scale) -> String {
    let pts = sweep(scale, false);
    format!(
        "Figure 16 — probes/query vs %bad (BadPong=Dead, no collusion)\n\
         Expected shape: MFS cost blows up with %bad; Random/MR/MR* stay flat-ish.\n\n{}",
        render(&pts, |p| p.probes, "probes/query", 1)
    )
}

/// Figure 17: unsatisfaction, no collusion.
#[must_use]
pub fn run_fig17(scale: Scale) -> String {
    let pts = sweep(scale, false);
    format!(
        "Figure 17 — unsatisfaction vs %bad (BadPong=Dead)\n\
         Expected shape: MFS degrades toward total failure by 20% bad;\n\
         MR keeps the best cost/robustness tradeoff; MR* and Random robust.\n\n{}",
        render(&pts, |p| p.unsat, "unsatisfied", 3)
    )
}

/// Figure 18: good cache entries, no collusion.
#[must_use]
pub fn run_fig18(scale: Scale) -> String {
    let pts = sweep(scale, false);
    format!(
        "Figure 18 — unpoisoned link-cache entries vs %bad (BadPong=Dead)\n\
         Expected shape: good entries collapse for MFS only.\n\n{}",
        render(&pts, |p| p.good_entries, "good entries", 1)
    )
}

/// Figure 19: probes/query, collusion.
#[must_use]
pub fn run_fig19(scale: Scale) -> String {
    let pts = sweep(scale, true);
    format!(
        "Figure 19 — probes/query vs %bad (BadPong=Bad, collusion)\n\
         Expected shape: both MFS and MR degrade; Random and MR* stay usable,\n\
         with MR* cheaper than Random.\n\n{}",
        render(&pts, |p| p.probes, "probes/query", 1)
    )
}

/// Figure 20: unsatisfaction, collusion.
#[must_use]
pub fn run_fig20(scale: Scale) -> String {
    let pts = sweep(scale, true);
    format!(
        "Figure 20 — unsatisfaction vs %bad (BadPong=Bad, collusion)\n\
         Expected shape: MFS and MR head toward 100% unsatisfied at 20% bad;\n\
         MR* and Random stay robust.\n\n{}",
        render(&pts, |p| p.unsat, "unsatisfied", 3)
    )
}

/// Figure 21: good cache entries, collusion.
#[must_use]
pub fn run_fig21(scale: Scale) -> String {
    let pts = sweep(scale, true);
    format!(
        "Figure 21 — unpoisoned link-cache entries vs %bad (BadPong=Bad)\n\
         Expected shape: caches poison heavily for both MR and MFS;\n\
         Random and MR* retain good entries.\n\n{}",
        render(&pts, |p| p.good_entries, "good entries", 1)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_policies_and_fractions() {
        let pts = sweep(Scale::Quick, false);
        assert_eq!(pts.len(), 4 * 3);
        for (name, _, _) in policies() {
            assert!(pts.iter().any(|p| p.policy == name));
        }
    }

    #[test]
    fn mfs_degrades_under_poisoning() {
        let pts = sweep(Scale::Quick, false);
        let mfs_clean = pts.iter().find(|p| p.policy == "MFS" && p.bad == 0.0).unwrap();
        let mfs_poisoned = pts.iter().find(|p| p.policy == "MFS" && p.bad == 0.20).unwrap();
        assert!(
            mfs_poisoned.unsat > mfs_clean.unsat,
            "MFS unsat should rise under poisoning: {} -> {}",
            mfs_clean.unsat,
            mfs_poisoned.unsat
        );
        assert!(
            mfs_poisoned.good_entries < mfs_clean.good_entries,
            "MFS caches should poison"
        );
    }

    #[test]
    fn reports_render() {
        for f in [run_fig16, run_fig17, run_fig18, run_fig19, run_fig20, run_fig21] {
            let out = f(Scale::Quick);
            assert!(out.contains("MR*"));
        }
    }
}
