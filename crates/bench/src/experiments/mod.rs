//! One module per paper table/figure; each regenerates its rows/series.
//!
//! Every experiment exposes `run(&Ctx) -> Report`: a structured result
//! (named tables of typed cells plus prose blocks) including, where the
//! paper states numbers, a paper-reference column so that shape
//! agreement can be eyeballed directly. The [`crate::runner::Ctx`]
//! carries the scale and the `--jobs` concurrency budget; independent
//! sweep points run in parallel through it with per-point seeds, so the
//! rendered report is identical at any jobs level.

pub mod extensions;
pub mod fig13_load;
pub mod fig14_15_capacity;
pub mod fig16_21_malicious;
pub mod fig3_4_5_cache_size;
pub mod fig6_7_connectivity;
pub mod fig8_tradeoff;
pub mod fig9_12_policies;
pub mod gossip_tradeoff;
pub mod maintenance;
pub mod response_time;
pub mod table3_live_entries;

use crate::report::Report;
use crate::runner::Ctx;

/// A named, runnable experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// CLI name (`repro <name>`).
    pub name: &'static str,
    /// What the experiment reproduces.
    pub description: &'static str,
    /// Runs the experiment and returns its structured report.
    pub run: fn(&Ctx) -> Report,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .finish()
    }
}

/// Every experiment, in paper order.
#[must_use]
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "table3",
            description: "Table 3: live link-cache entries vs cache size",
            run: table3_live_entries::run,
        },
        Experiment {
            name: "fig3",
            description: "Figure 3: probes/query vs cache size, across network sizes",
            run: fig3_4_5_cache_size::run_fig3,
        },
        Experiment {
            name: "fig4",
            description: "Figure 4: unsatisfaction vs cache size (minimum at moderate sizes)",
            run: fig3_4_5_cache_size::run_fig4,
        },
        Experiment {
            name: "fig5",
            description: "Figure 5: good vs dead probes per query, N=1000",
            run: fig3_4_5_cache_size::run_fig5,
        },
        Experiment {
            name: "fig6",
            description: "Figure 6: largest connected component vs ping interval, per cache size",
            run: fig6_7_connectivity::run_fig6,
        },
        Experiment {
            name: "fig7",
            description: "Figure 7: relative connectivity vs ping interval, per network size",
            run: fig6_7_connectivity::run_fig7,
        },
        Experiment {
            name: "fig8",
            description:
                "Figure 8: cost/quality tradeoff — fixed extent vs iterative deepening vs GUESS",
            run: fig8_tradeoff::run,
        },
        Experiment {
            name: "fig9",
            description: "Figure 9: probes/query per QueryProbe policy",
            run: fig9_12_policies::run_fig9,
        },
        Experiment {
            name: "fig10",
            description: "Figure 10: probes/query per QueryPong policy",
            run: fig9_12_policies::run_fig10,
        },
        Experiment {
            name: "fig11",
            description: "Figure 11: probes/query per CacheReplacement policy",
            run: fig9_12_policies::run_fig11,
        },
        Experiment {
            name: "fig12",
            description: "Figure 12: unsatisfied queries per QueryPong policy",
            run: fig9_12_policies::run_fig12,
        },
        Experiment {
            name: "fig13",
            description: "Figure 13: ranked load distribution per policy combination",
            run: fig13_load::run,
        },
        Experiment {
            name: "fig14",
            description: "Figure 14: probe breakdown under capacity limits, per network size",
            run: fig14_15_capacity::run_fig14,
        },
        Experiment {
            name: "fig15",
            description: "Figure 15: unsatisfaction vs MaxProbesPerSecond, per network size",
            run: fig14_15_capacity::run_fig15,
        },
        Experiment {
            name: "fig16",
            description: "Figure 16: probes/query vs % bad peers (no collusion)",
            run: fig16_21_malicious::run_fig16,
        },
        Experiment {
            name: "fig17",
            description: "Figure 17: unsatisfaction vs % bad peers (no collusion)",
            run: fig16_21_malicious::run_fig17,
        },
        Experiment {
            name: "fig18",
            description: "Figure 18: good cache entries vs % bad peers (no collusion)",
            run: fig16_21_malicious::run_fig18,
        },
        Experiment {
            name: "fig19",
            description: "Figure 19: probes/query vs % bad peers (collusion)",
            run: fig16_21_malicious::run_fig19,
        },
        Experiment {
            name: "fig20",
            description: "Figure 20: unsatisfaction vs % bad peers (collusion)",
            run: fig16_21_malicious::run_fig20,
        },
        Experiment {
            name: "fig21",
            description: "Figure 21: good cache entries vs % bad peers (collusion)",
            run: fig16_21_malicious::run_fig21,
        },
        Experiment {
            name: "response",
            description: "§6.2 response time: k-parallel probe walks",
            run: response_time::run,
        },
        Experiment {
            name: "selfish",
            description: "EXTENSION §3.3: selfish peers firing huge probe volleys",
            run: extensions::run_selfish,
        },
        Experiment {
            name: "adaptive",
            description: "EXTENSION §6.1/§6.2: adaptive ping interval and walk widening",
            run: extensions::run_adaptive,
        },
        Experiment {
            name: "defense",
            description: "EXTENSION [9]: pong-source reputation filter vs cache poisoning",
            run: extensions::run_defense,
        },
        Experiment {
            name: "fragmentation",
            description: "EXTENSION §3.3: targeted fragmentation of power-law overlays",
            run: extensions::run_fragmentation,
        },
        Experiment {
            name: "payments",
            description: "EXTENSION §3.3: probe payments vs selfish volleys",
            run: extensions::run_payments,
        },
        Experiment {
            name: "forwarding",
            description:
                "EXTENSION §3.2/§3.3: GUESS vs churn-aware Gnutella (cost, state, amplification)",
            run: extensions::run_forwarding,
        },
        Experiment {
            name: "gossip",
            description:
                "EXTENSION fig8 family: three-way tradeoff — gossip fanout x TTL vs flooding vs GUESS",
            run: gossip_tradeoff::run,
        },
        Experiment {
            name: "forwarding3",
            description:
                "EXTENSION §3.2/§3.3: three-way amplification/maintenance — GUESS vs Gnutella vs gossip",
            run: extensions::run_forwarding3,
        },
        Experiment {
            name: "maintenance",
            description:
                "EXTENSION (CUP): pull vs push vs hybrid cache maintenance — staleness x bandwidth",
            run: maintenance::run,
        },
    ]
}

/// Looks an experiment up by CLI name.
#[must_use]
pub fn find(name: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_every_table_and_figure() {
        let names: Vec<&str> = all().iter().map(|e| e.name).collect();
        for expected in [
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "fig17",
            "fig18",
            "fig19",
            "fig20",
            "fig21",
            "response",
            "selfish",
            "adaptive",
            "defense",
            "fragmentation",
            "payments",
            "forwarding",
            "gossip",
            "forwarding3",
            "maintenance",
        ] {
            assert!(names.contains(&expected), "missing experiment {expected}");
        }
    }

    #[test]
    fn find_by_name() {
        assert!(find("fig8").is_some());
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all().iter().map(|e| e.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
