//! §6.2 response time: parallel probe walks.
//!
//! GUESS probes are serial, so response time is linear in the probe count.
//! Sending `k` probes in parallel costs at most `k − 1` extra probes but
//! divides response time by ~`k`. Paper worked example: with
//! `QueryPong = MFS` (≈17 probes) and `k = 5` at one probe round per 0.2 s,
//! the probe count grows to ≤21 while mean response time drops below 1 s.

use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};
use simkit::sim::Runnable;

/// Parallelism levels swept.
pub const WALKS: [usize; 4] = [1, 2, 5, 10];

/// Runs the response-time study.
#[must_use]
pub fn run(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let items: Vec<(usize, usize)> = WALKS.iter().copied().enumerate().collect();
    let rows = ctx.map(items, |(i, k)| {
        let mut cfg = base_config(scale, 0xae5 + i as u64)
            .with_query_pong(SelectionPolicy::Mfs)
            .with_parallel_probes(k);
        if scale == Scale::Quick {
            cfg = cfg.with_network_size(300);
        }
        let report = GuessSim::new(cfg).expect("valid config").run();
        vec![
            Cell::size(k),
            Cell::float(report.probes_per_query(), 1),
            Cell::float(report.mean_response_secs(), 2),
            Cell::float(report.unsatisfaction(), 3),
        ]
    });
    let mut table = TableBlock::new(
        "parallel_walks",
        vec![
            "k (parallel probes)",
            "probes/query",
            "response (s)",
            "unsatisfied",
        ],
    );
    for row in rows {
        table.row(row);
    }
    Report::new()
        .text(
            "Response time — k-parallel probe walks (QueryPong=MFS, 0.2s per round)\n\
             Expected shape: probes/query grows by at most ~k-1 while response time\n\
             drops ~k-fold; paper example: k=5 keeps mean response under 1 second.\n\n",
        )
        .table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_walk_counts() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run(&ctx).render_text();
        for k in WALKS {
            assert!(out
                .lines()
                .any(|l| l.trim_start().starts_with(&k.to_string())));
        }
    }
}
