//! §6.2 response time: parallel probe walks.
//!
//! GUESS probes are serial, so response time is linear in the probe count.
//! Sending `k` probes in parallel costs at most `k − 1` extra probes but
//! divides response time by ~`k`. Paper worked example: with
//! `QueryPong = MFS` (≈17 probes) and `k = 5` at one probe round per 0.2 s,
//! the probe count grows to ≤21 while mean response time drops below 1 s.

use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;

use crate::scale::{base_config, Scale};
use crate::table::{fnum, Table};

/// Parallelism levels swept.
pub const WALKS: [usize; 4] = [1, 2, 5, 10];

/// Runs the response-time study.
#[must_use]
pub fn run(scale: Scale) -> String {
    let mut table = Table::new(vec![
        "k (parallel probes)",
        "probes/query",
        "response (s)",
        "unsatisfied",
    ]);
    for (i, &k) in WALKS.iter().enumerate() {
        let mut cfg = base_config(scale, 0xae5 + i as u64);
        if scale == Scale::Quick {
            cfg.system.network_size = 300;
        }
        cfg.protocol.query_pong = SelectionPolicy::Mfs;
        cfg.protocol.parallel_probes = k;
        let report = GuessSim::new(cfg).expect("valid config").run();
        table.row(vec![
            k.to_string(),
            fnum(report.probes_per_query(), 1),
            fnum(report.mean_response_secs(), 2),
            fnum(report.unsatisfaction(), 3),
        ]);
    }
    format!(
        "Response time — k-parallel probe walks (QueryPong=MFS, 0.2s per round)\n\
         Expected shape: probes/query grows by at most ~k-1 while response time\n\
         drops ~k-fold; paper example: k=5 keeps mean response under 1 second.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_walk_counts() {
        let out = run(Scale::Quick);
        for k in WALKS {
            assert!(out.lines().any(|l| l.trim_start().starts_with(&k.to_string())));
        }
    }
}
