//! EXTENSION (CUP [Roussopoulos & Baker]): pull vs push vs hybrid cache
//! maintenance — staleness against maintenance bandwidth under churn.
//!
//! GUESS as specified is pull-only: periodic pings re-date cache entries
//! and discover dead ones. The push plane ([`guess::push`]) inverts the
//! discipline — watchers register interest when a pong hands them an
//! entry, and the subject pushes invalidations on death and fan-out
//! limited refreshes on its (stretched) maintenance cycle.
//!
//! For each churn regime the three [`MaintenanceMode`]s run on the
//! **same seed**, so rows differ only by maintenance discipline. The
//! charted tradeoff: mean cache-entry staleness (seconds the cached
//! information has been *wrong* — zero while the subject lives, time
//! since its death after) against total maintenance messages
//! (pings + pushed invalidations + pushed refreshes), with query success
//! alongside to show search quality is not sacrificed.

use guess::config::Config;
use guess::engine::GuessSim;
use guess::{MaintenanceMode, RunReport};
use simkit::sim::Runnable;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};

/// Churn regimes charted: label and `LifespanMultiplier`. The strained
/// regime is §6.1's cache-maintenance setting; frantic pushes beyond it.
pub const REGIMES: [(&str, f64); 3] = [("calm", 1.0), ("strained", 0.2), ("frantic", 0.05)];

/// The three maintenance disciplines, compared on shared seeds.
pub const MODES: [(&str, MaintenanceMode); 3] = [
    ("pull", MaintenanceMode::Pull),
    ("hybrid", MaintenanceMode::Hybrid),
    ("push", MaintenanceMode::Push),
];

/// Network size for the comparison (matches the extension studies).
fn network_for(scale: Scale) -> usize {
    match scale {
        Scale::Full => 1000,
        Scale::Quick => 300,
    }
}

/// One regime's configuration before the mode is applied. The seed is
/// shared by all three modes of the regime — the mode column is the only
/// thing that differs within a regime block.
fn regime_config(ctx: &Ctx, multiplier: f64, seed: u64) -> Config {
    let mut cfg = base_config(ctx.scale(), seed).with_network_size(network_for(ctx.scale()));
    cfg.system.lifespan_multiplier = multiplier;
    if let Some(threshold) = ctx.metrics_threshold() {
        let size = cfg.run.metrics_sample_size;
        cfg = cfg.with_metrics_sampling(threshold, size);
    }
    cfg
}

/// Total maintenance messages a run spent keeping caches fresh.
fn maintenance_msgs(report: &RunReport) -> u64 {
    report.counters.get("pings_sent")
        + report.counters.get("push_invalidations")
        + report.counters.get("push_refreshes")
}

/// Runs the maintenance-mode comparison.
#[must_use]
pub fn run(ctx: &Ctx) -> Report {
    let n = network_for(ctx.scale());
    let points: Vec<(usize, usize)> = (0..REGIMES.len())
        .flat_map(|r| (0..MODES.len()).map(move |m| (r, m)))
        .collect();
    let rows = ctx.map(points, |(r, m)| {
        let (regime, multiplier) = REGIMES[r];
        let (mode_name, mode) = MODES[m];
        let cfg = regime_config(ctx, multiplier, 0x9a1e + r as u64).with_maintenance_mode(mode);
        let report = GuessSim::new(cfg).expect("valid config").run();
        vec![
            Cell::text(regime),
            Cell::text(mode_name),
            Cell::float(report.mean_staleness.unwrap_or(f64::NAN), 1),
            Cell::float(report.live_fraction.unwrap_or(f64::NAN), 3),
            Cell::uint(report.counters.get("pings_sent")),
            Cell::uint(
                report.counters.get("push_invalidations") + report.counters.get("push_refreshes"),
            ),
            Cell::uint(maintenance_msgs(&report)),
            Cell::float(report.unsatisfaction(), 3),
            Cell::float(report.probes_per_query(), 1),
        ]
    });
    let mut table = TableBlock::new(
        "maintenance",
        vec![
            "churn",
            "mode",
            "staleness (s)",
            "frac live",
            "pings",
            "push msgs",
            "maint msgs",
            "unsatisfied",
            "probes/query",
        ],
    );
    for row in rows {
        table.row(row);
    }
    Report::new()
        .text(format!(
            "EXTENSION (CUP) — maintenance mode vs staleness and bandwidth (N={n})\n\
             Three churn regimes; within each, pull/hybrid/push share one seed.\n\
             push stretches the ping interval x2, audits stalest-first with the pings\n\
             that remain, and spends the savings on interest-edge invalidations and\n\
             fan-out-limited refreshes; hybrid keeps full-rate pings and adds\n\
             invalidations only. Staleness counts seconds cached entries keep pointing\n\
             at departed peers. Expected shape: push reaches lower mean staleness than\n\
             pull on fewer total maintenance messages, without hurting unsatisfaction.\n\n"
        ))
        .table(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn quick_run_reproduces_the_shape() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run(&ctx).render_text();
        assert!(out.contains("staleness (s)"));
        // One row per regime x mode pair.
        for (regime, _) in REGIMES {
            assert!(out.contains(regime), "missing regime row {regime}");
        }
        let data_lines = out
            .lines()
            .filter(|l| {
                let t = l.trim_start();
                t.starts_with("calm") || t.starts_with("strained") || t.starts_with("frantic")
            })
            .count();
        assert_eq!(data_lines, REGIMES.len() * MODES.len());
    }
}
