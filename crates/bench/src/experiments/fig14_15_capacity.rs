//! Figures 14 and 15: behaviour under per-peer capacity limits.
//!
//! Setup (§6.3): MR policies (the less-fair, hotspot-prone choice),
//! network sizes 500–5000, `MaxProbesPerSecond` ∈ {50, 10, 5, 1}.
//!
//! * Fig 14 — refused probes per query grow with network size (hot peers
//!   sit in many caches), while good and dead probes stay roughly steady;
//! * Fig 15 — query satisfaction is barely affected: enough other peers
//!   can serve the content.

use std::collections::HashMap;
use std::sync::Mutex;

use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;

use crate::scale::{base_config, Scale};
use crate::table::{fnum, Table};

/// Capacity limits swept (probes/second).
pub const CAPS: [u32; 4] = [50, 10, 5, 1];

/// One sweep sample.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// NetworkSize.
    pub network: usize,
    /// MaxProbesPerSecond.
    pub cap: u32,
    /// Mean good probes per query.
    pub good: f64,
    /// Mean refused probes per query.
    pub refused: f64,
    /// Mean dead probes per query.
    pub dead: f64,
    /// Unsatisfied fraction.
    pub unsat: f64,
}

static SWEEP: Mutex<Option<HashMap<Scale, Vec<Point>>>> = Mutex::new(None);

fn networks(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![500, 1000, 2000, 5000],
        Scale::Quick => vec![200, 500],
    }
}

/// The (memoized) capacity sweep.
#[must_use]
pub fn sweep(scale: Scale) -> Vec<Point> {
    {
        let mut guard = SWEEP.lock().expect("memo");
        if let Some(v) = guard.get_or_insert_with(HashMap::new).get(&scale) {
            return v.clone();
        }
    }
    let mut points = Vec::new();
    for network in networks(scale) {
        for cap in CAPS {
            let mut cfg = base_config(scale, 0xf14 + (network as u64) * 7 + u64::from(cap));
            cfg.system.network_size = network;
            cfg.system.max_probes_per_second = Some(cap);
            cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mr);
            let report = GuessSim::new(cfg).expect("valid config").run();
            points.push(Point {
                network,
                cap,
                good: report.good_per_query(),
                refused: report.refused_per_query(),
                dead: report.dead_per_query(),
                unsat: report.unsatisfaction(),
            });
        }
    }
    SWEEP.lock().expect("memo").get_or_insert_with(HashMap::new).insert(scale, points.clone());
    points
}

/// Figure 14: probe breakdown per (network, capacity).
#[must_use]
pub fn run_fig14(scale: Scale) -> String {
    let pts = sweep(scale);
    let mut table =
        Table::new(vec!["NetworkSize", "MaxProbes/s", "good/query", "refused/query", "dead/query"]);
    for p in &pts {
        table.row(vec![
            p.network.to_string(),
            p.cap.to_string(),
            fnum(p.good, 1),
            fnum(p.refused, 1),
            fnum(p.dead, 1),
        ]);
    }
    format!(
        "Figure 14 — probe breakdown under capacity limits (MR policies)\n\
         Expected shape: refused probes grow as the network grows and the cap\n\
         shrinks; good and dead probes stay roughly steady.\n\n{}",
        table.render()
    )
}

/// Figure 15: unsatisfaction vs capacity.
#[must_use]
pub fn run_fig15(scale: Scale) -> String {
    let pts = sweep(scale);
    let mut table = Table::new(vec!["NetworkSize", "MaxProbes/s", "unsatisfied"]);
    for p in &pts {
        table.row(vec![p.network.to_string(), p.cap.to_string(), fnum(p.unsat, 3)]);
    }
    format!(
        "Figure 15 — satisfaction under capacity limits (MR policies)\n\
         Expected shape: unsatisfaction barely moves even when many probes are\n\
         refused — other capable peers absorb the queries.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_grid() {
        let pts = sweep(Scale::Quick);
        assert_eq!(pts.len(), networks(Scale::Quick).len() * CAPS.len());
    }

    #[test]
    fn tighter_caps_refuse_more() {
        let pts = sweep(Scale::Quick);
        let n = networks(Scale::Quick)[1];
        let at = |cap: u32| pts.iter().find(|p| p.network == n && p.cap == cap).unwrap().refused;
        assert!(
            at(1) >= at(50),
            "cap=1 should refuse at least as many probes as cap=50 ({} vs {})",
            at(1),
            at(50)
        );
    }

    #[test]
    fn reports_render() {
        assert!(run_fig14(Scale::Quick).contains("refused/query"));
        assert!(run_fig15(Scale::Quick).contains("unsatisfied"));
    }
}
