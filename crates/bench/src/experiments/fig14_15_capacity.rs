//! Figures 14 and 15: behaviour under per-peer capacity limits.
//!
//! Setup (§6.3): MR policies (the less-fair, hotspot-prone choice),
//! network sizes 500–5000, `MaxProbesPerSecond` ∈ {50, 10, 5, 1}. The
//! sweep is computed once per [`Ctx`] and shared by both figures.
//!
//! * Fig 14 — refused probes per query grow with network size (hot peers
//!   sit in many caches), while good and dead probes stay roughly steady;
//! * Fig 15 — query satisfaction is barely affected: enough other peers
//!   can serve the content.

use std::sync::Arc;

use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};
use simkit::sim::Runnable;

/// Capacity limits swept (probes/second).
pub const CAPS: [u32; 4] = [50, 10, 5, 1];

/// One sweep sample.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// NetworkSize.
    pub network: usize,
    /// MaxProbesPerSecond.
    pub cap: u32,
    /// Mean good probes per query.
    pub good: f64,
    /// Mean refused probes per query.
    pub refused: f64,
    /// Mean dead probes per query.
    pub dead: f64,
    /// Unsatisfied fraction.
    pub unsat: f64,
}

fn networks(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![500, 1000, 2000, 5000],
        Scale::Quick => vec![200, 500],
    }
}

/// The capacity sweep (computed once per context).
#[must_use]
pub fn sweep(ctx: &Ctx) -> Arc<Vec<Point>> {
    ctx.shared("fig14_15/sweep", |ctx| {
        let scale = ctx.scale();
        let mut grid = Vec::new();
        for network in networks(scale) {
            for cap in CAPS {
                grid.push((network, cap));
            }
        }
        ctx.map(grid, |(network, cap)| {
            let cfg = base_config(scale, 0xf14 + (network as u64) * 7 + u64::from(cap))
                .with_network_size(network)
                .with_max_probes_per_second(Some(cap))
                .with_uniform_policy(SelectionPolicy::Mr);
            let report = GuessSim::new(cfg).expect("valid config").run();
            Point {
                network,
                cap,
                good: report.good_per_query(),
                refused: report.refused_per_query(),
                dead: report.dead_per_query(),
                unsat: report.unsatisfaction(),
            }
        })
    })
}

/// Figure 14: probe breakdown per (network, capacity).
#[must_use]
pub fn run_fig14(ctx: &Ctx) -> Report {
    let pts = sweep(ctx);
    let mut table = TableBlock::new(
        "probe_breakdown",
        vec![
            "NetworkSize",
            "MaxProbes/s",
            "good/query",
            "refused/query",
            "dead/query",
        ],
    );
    for p in pts.iter() {
        table.row(vec![
            Cell::size(p.network),
            Cell::uint(p.cap),
            Cell::float(p.good, 1),
            Cell::float(p.refused, 1),
            Cell::float(p.dead, 1),
        ]);
    }
    Report::new()
        .text(
            "Figure 14 — probe breakdown under capacity limits (MR policies)\n\
             Expected shape: refused probes grow as the network grows and the cap\n\
             shrinks; good and dead probes stay roughly steady.\n\n",
        )
        .table(table)
}

/// Figure 15: unsatisfaction vs capacity.
#[must_use]
pub fn run_fig15(ctx: &Ctx) -> Report {
    let pts = sweep(ctx);
    let mut table = TableBlock::new(
        "unsat_vs_cap",
        vec!["NetworkSize", "MaxProbes/s", "unsatisfied"],
    );
    for p in pts.iter() {
        table.row(vec![
            Cell::size(p.network),
            Cell::uint(p.cap),
            Cell::float(p.unsat, 3),
        ]);
    }
    Report::new()
        .text(
            "Figure 15 — satisfaction under capacity limits (MR policies)\n\
             Expected shape: unsatisfaction barely moves even when many probes are\n\
             refused — other capable peers absorb the queries.\n\n",
        )
        .table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_grid() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let pts = sweep(&ctx);
        assert_eq!(pts.len(), networks(Scale::Quick).len() * CAPS.len());
    }

    #[test]
    fn tighter_caps_refuse_more() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let pts = sweep(&ctx);
        let n = networks(Scale::Quick)[1];
        let at = |cap: u32| {
            pts.iter()
                .find(|p| p.network == n && p.cap == cap)
                .unwrap()
                .refused
        };
        assert!(
            at(1) >= at(50),
            "cap=1 should refuse at least as many probes as cap=50 ({} vs {})",
            at(1),
            at(50)
        );
    }

    #[test]
    fn reports_render() {
        let ctx = Ctx::new(Scale::Quick, 2);
        assert!(run_fig14(&ctx).render_text().contains("refused/query"));
        assert!(run_fig15(&ctx).render_text().contains("unsatisfied"));
    }
}
