//! Table 3: breakdown of live link-cache entries for varying cache sizes.
//!
//! Setup (§6.1): `NetworkSize = 1000`, `LifespanMultiplier = 0.2`, default
//! (Random) policies. For each `CacheSize` the table reports the mean
//! fraction of cache entries that point at live peers and the mean
//! absolute number of live entries.

use guess::engine::GuessSim;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::strained_config;
use simkit::sim::Runnable;

/// Paper values: (cache size, fraction live, absolute live).
pub const PAPER: [(usize, f64, f64); 6] = [
    (10, 0.822, 8.0),
    (20, 0.759, 14.8),
    (50, 0.605, 28.5),
    (100, 0.418, 36.2),
    (200, 0.330, 41.9),
    (500, 0.309, 41.9),
];

/// Runs the Table 3 reproduction.
#[must_use]
pub fn run(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let rows = ctx.map(PAPER.to_vec(), |(cache, p_frac, p_abs)| {
        let cfg = strained_config(scale, 1000, cache, 0x7ab1e3 + cache as u64);
        let report = GuessSim::new(cfg).expect("valid config").run();
        vec![
            Cell::size(cache),
            Cell::float(report.live_fraction.unwrap_or(f64::NAN), 3),
            Cell::float(report.live_absolute.unwrap_or(f64::NAN), 1),
            Cell::float(p_frac, 3),
            Cell::float(p_abs, 1),
        ]
    });
    let mut table = TableBlock::new(
        "live_entries",
        vec![
            "CacheSize",
            "frac live",
            "abs live",
            "paper frac",
            "paper abs",
        ],
    );
    for row in rows {
        table.row(row);
    }
    Report::new()
        .text(
            "Table 3 — live link-cache entries (N=1000, LifespanMultiplier=0.2)\n\
             Expected shape: fraction live falls as the cache grows; absolute live rises then plateaus.\n\n",
        )
        .table(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn quick_run_reproduces_the_shape() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run(&ctx).render_text();
        assert!(out.contains("CacheSize"));
        // Six data rows, one per paper cache size.
        let data_lines = out
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
            .count();
        assert_eq!(data_lines, 6);
    }
}
