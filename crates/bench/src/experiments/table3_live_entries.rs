//! Table 3: breakdown of live link-cache entries for varying cache sizes.
//!
//! Setup (§6.1): `NetworkSize = 1000`, `LifespanMultiplier = 0.2`, default
//! (Random) policies. For each `CacheSize` the table reports the mean
//! fraction of cache entries that point at live peers and the mean
//! absolute number of live entries.

use guess::engine::GuessSim;

use crate::scale::{strained_config, Scale};
use crate::table::{fnum, Table};

/// Paper values: (cache size, fraction live, absolute live).
pub const PAPER: [(usize, f64, f64); 6] = [
    (10, 0.822, 8.0),
    (20, 0.759, 14.8),
    (50, 0.605, 28.5),
    (100, 0.418, 36.2),
    (200, 0.330, 41.9),
    (500, 0.309, 41.9),
];

/// Runs the Table 3 reproduction.
#[must_use]
pub fn run(scale: Scale) -> String {
    let mut table = Table::new(vec![
        "CacheSize",
        "frac live",
        "abs live",
        "paper frac",
        "paper abs",
    ]);
    for &(cache, p_frac, p_abs) in &PAPER {
        let cfg = strained_config(scale, 1000, cache, 0x7ab1e3 + cache as u64);
        let report = GuessSim::new(cfg).expect("valid config").run();
        table.row(vec![
            cache.to_string(),
            fnum(report.live_fraction.unwrap_or(f64::NAN), 3),
            fnum(report.live_absolute.unwrap_or(f64::NAN), 1),
            fnum(p_frac, 3),
            fnum(p_abs, 1),
        ]);
    }
    format!(
        "Table 3 — live link-cache entries (N=1000, LifespanMultiplier=0.2)\n\
         Expected shape: fraction live falls as the cache grows; absolute live rises then plateaus.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_the_shape() {
        let out = run(Scale::Quick);
        assert!(out.contains("CacheSize"));
        // Six data rows, one per paper cache size.
        let data_lines = out.lines().filter(|l| l.trim_start().starts_with(char::is_numeric)).count();
        assert_eq!(data_lines, 6);
    }
}
