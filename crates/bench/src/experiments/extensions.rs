//! Extension experiments — beyond the paper's figures, exercising the
//! directions its discussion sections sketch:
//!
//! * `selfish` — §3.3's selfish peers, who fire huge probe volleys;
//! * `adaptive` — §6.1's runtime ping-interval adjustment and §6.2's
//!   adaptive parallel walks (explicitly left to future work);
//! * `defense` — the pong-source reputation filter against cache
//!   poisoning (the direction of Daswani & Garcia-Molina \[9\]);
//! * `fragmentation` — §3.3's fragmentation attack on power-law vs
//!   degree-limited overlays.

use guess::config::{AdaptiveParallelism, AdaptivePing, BadPongBehavior};
use guess::engine::GuessSim;
use guess::payments::PaymentParams;
use guess::policy::SelectionPolicy;
use gnutella::dynamic::{GnutellaConfig, GnutellaSim};
use gnutella::fragmentation::{attack, AttackStrategy};
use gnutella::Topology;
use simkit::rng::RngStream;
use simkit::time::SimDuration;

use crate::scale::{base_config, Scale};
use crate::table::{fnum, Table};

fn network_for(scale: Scale) -> usize {
    match scale {
        Scale::Full => 1000,
        Scale::Quick => 300,
    }
}

/// Selfish-peer study: response time for the selfish, load for everyone.
#[must_use]
pub fn run_selfish(scale: Scale) -> String {
    let mut table = Table::new(vec![
        "% selfish",
        "refused/query",
        "unsatisfied",
        "mean response (s)",
        "top-peer load",
    ]);
    for (i, &frac) in [0.0f64, 0.1, 0.3, 0.5].iter().enumerate() {
        let mut cfg = base_config(scale, 0x5e1f + i as u64);
        cfg.system.network_size = network_for(scale);
        // MR concentrates probes on productive peers, so capacity limits
        // actually bind — the regime where selfish volleys hurt others.
        cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mr);
        cfg.system.max_probes_per_second = Some(5);
        cfg.system.selfish_fraction = frac;
        cfg.system.selfish_parallelism = 100;
        let report = GuessSim::new(cfg).expect("valid config").run();
        table.row(vec![
            fnum(frac * 100.0, 0),
            fnum(report.refused_per_query(), 2),
            fnum(report.unsatisfaction(), 3),
            fnum(report.mean_response_secs(), 2),
            report.loads.first().copied().unwrap_or(0).to_string(),
        ]);
    }
    format!(
        "EXTENSION — selfish peers (§3.3): volleys of 100 parallel probes\n\
         Expected shape: response time collapses as selfishness spreads (each selfish\n\
         peer helps itself), while refusals and hot-peer load climb — the tragedy of\n\
         the commons the paper predicts, motivating probe payments.\n\n{}",
        table.render()
    )
}

/// Adaptive maintenance & walks vs the fixed protocol.
#[must_use]
pub fn run_adaptive(scale: Scale) -> String {
    let n = network_for(scale);
    let mut out = String::new();
    out.push_str(
        "EXTENSION — adaptive mechanisms the paper defers to future work\n\n",
    );

    // Part 1: ping-interval adaptation under churn (queries off).
    let mut table = Table::new(vec!["ping mode", "pings sent", "frac live", "LCC"]);
    for (name, adaptive, fixed_secs) in [
        ("fixed 30s", None, 30.0),
        ("fixed 120s", None, 120.0),
        ("adaptive [5s,300s]", Some(AdaptivePing::default()), 120.0),
    ] {
        let mut cfg = base_config(scale, 0xada);
        cfg.system.network_size = n;
        cfg.system.lifespan_multiplier = 0.2;
        cfg.run.simulate_queries = false;
        cfg.protocol.ping_interval = SimDuration::from_secs(fixed_secs);
        cfg.protocol.adaptive_ping = adaptive;
        let report = GuessSim::new(cfg).expect("valid config").run();
        table.row(vec![
            name.to_string(),
            report.counters.get("pings_sent").to_string(),
            fnum(report.live_fraction.unwrap_or(f64::NAN), 3),
            fnum(report.largest_component.unwrap_or(f64::NAN), 0),
        ]);
    }
    out.push_str("Ping-interval adaptation (heavy churn, queries off):\n");
    out.push_str(&table.render());
    out.push('\n');

    // Part 2: adaptive walk widening vs fixed k.
    let mut table = Table::new(vec!["walk mode", "probes/query", "response mean (s)", "response p95 (s)"]);
    for (name, k, adaptive) in [
        ("serial k=1", 1usize, None),
        ("fixed k=5", 5, None),
        ("adaptive (x2 after 10 dry)", 1, Some(AdaptiveParallelism::default())),
    ] {
        let mut cfg = base_config(scale, 0xadb);
        cfg.system.network_size = n;
        cfg.protocol.query_pong = SelectionPolicy::Mfs;
        cfg.protocol.parallel_probes = k;
        cfg.protocol.adaptive_parallelism = adaptive;
        let report = GuessSim::new(cfg).expect("valid config").run();
        table.row(vec![
            name.to_string(),
            fnum(report.probes_per_query(), 1),
            fnum(report.mean_response_secs(), 2),
            fnum(report.response_p95.unwrap_or(f64::NAN), 2),
        ]);
    }
    out.push_str("Walk widening (QueryPong=MFS):\n");
    out.push_str(&table.render());
    out.push_str(
        "\nAdaptive widening keeps the average cost near serial probing while\n\
         cutting the tail response time that makes rare-item searches painful.\n",
    );
    out
}

/// Pong-source reputation vs cache poisoning.
#[must_use]
pub fn run_defense(scale: Scale) -> String {
    let n = network_for(scale);
    let mut table = Table::new(vec![
        "policy",
        "pong filter",
        "probes/query",
        "unsatisfied",
        "good entries",
        "blacklisted",
    ]);
    for (pi, (pname, policy)) in
        [("MFS", SelectionPolicy::Mfs), ("MR", SelectionPolicy::Mr)].into_iter().enumerate()
    {
        for (fi, filter) in [false, true].into_iter().enumerate() {
            let mut cfg = base_config(scale, 0xdef + (pi * 2 + fi) as u64);
            cfg.system.network_size = n;
            cfg.system.bad_peer_fraction = 0.20;
            cfg.system.bad_pong_behavior = BadPongBehavior::Dead;
            cfg.protocol = cfg.protocol.with_uniform_policy(policy);
            cfg.protocol.distrust_pongs = filter;
            let report = GuessSim::new(cfg).expect("valid config").run();
            table.row(vec![
                pname.to_string(),
                if filter { "on" } else { "off" }.to_string(),
                fnum(report.probes_per_query(), 1),
                fnum(report.unsatisfaction(), 3),
                fnum(report.good_entries.unwrap_or(f64::NAN), 1),
                report.counters.get("sources_blacklisted").to_string(),
            ]);
        }
    }
    format!(
        "EXTENSION — pong-source reputation filter vs 20% poisoners (BadPong=Dead)\n\
         Expected shape: the filter blacklists attackers after a handful of dead\n\
         shares, restoring much of MFS's clean-network efficiency.\n\n{}",
        table.render()
    )
}

/// Fragmentation attack on overlay topologies.
#[must_use]
pub fn run_fragmentation(scale: Scale) -> String {
    let n = match scale {
        Scale::Full => 5000,
        Scale::Quick => 1000,
    };
    let mut rng = RngStream::from_seed(0xf4a6, "fragmentation");
    let power_law = Topology::preferential_attachment(n, 2, &mut rng);
    let limited = Topology::random_regular(n, 2, &mut rng);
    let victims: Vec<usize> = [0.0f64, 0.01, 0.02, 0.05, 0.10]
        .iter()
        .map(|f| (f * n as f64) as usize)
        .collect();
    let mut table = Table::new(vec!["topology", "strategy", "% removed", "cohesion"]);
    for (tname, topo) in [("power-law", &power_law), ("degree-limited", &limited)] {
        for strategy in [AttackStrategy::HighestDegree, AttackStrategy::Random] {
            for &v in &victims {
                let out = attack(topo, strategy, v, &mut rng);
                let sname = match strategy {
                    AttackStrategy::HighestDegree => "targeted",
                    AttackStrategy::Random => "random",
                };
                table.row(vec![
                    tname.to_string(),
                    sname.to_string(),
                    fnum(v as f64 / n as f64 * 100.0, 0),
                    fnum(out.cohesion(), 3),
                ]);
            }
        }
    }
    format!(
        "EXTENSION — fragmentation attacks (§3.3), N={n}\n\
         Expected shape: targeted hub removal shatters the power-law overlay while\n\
         the degree-limited overlay degrades gracefully; random failures barely\n\
         dent either — the paper's argument for simple connection limits.\n\n{}",
        table.render()
    )
}

/// Probe payments vs selfish volleys.
#[must_use]
pub fn run_payments(scale: Scale) -> String {
    let n = network_for(scale);
    let mut table = Table::new(vec![
        "economy",
        "% selfish",
        "probes/query",
        "response (s)",
        "unsatisfied",
        "budget-outs",
    ]);
    for (i, &selfish) in [0.0f64, 0.4].iter().enumerate() {
        for (j, payments) in [None, Some(PaymentParams::default())].into_iter().enumerate() {
            let mut cfg = base_config(scale, 0x9a9 + (i * 2 + j) as u64);
            cfg.system.network_size = n;
            cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mr);
            cfg.system.max_probes_per_second = Some(5);
            cfg.system.selfish_fraction = selfish;
            cfg.system.selfish_parallelism = 100;
            cfg.protocol.probe_payments = payments;
            let report = GuessSim::new(cfg).expect("valid config").run();
            table.row(vec![
                if payments.is_some() { "paid" } else { "free" }.to_string(),
                fnum(selfish * 100.0, 0),
                fnum(report.probes_per_query(), 1),
                fnum(report.mean_response_secs(), 2),
                fnum(report.unsatisfaction(), 3),
                report.counters.get("probe_budget_exhausted").to_string(),
            ]);
        }
    }
    format!(
        "EXTENSION — probe payments (§3.3, after PPay [23])\n\
         Expected shape: probing now has a price — volley senders exhaust their\n\
         credit (budget-outs > 0), which removes the selfish response-time freebie;\n\
         honest traffic is funded comfortably by the allowance.\n\n{}",
        table.render()
    )
}

/// GUESS vs a churn-aware Gnutella overlay on identical workloads.
#[must_use]
pub fn run_forwarding(scale: Scale) -> String {
    let n = network_for(scale);
    let mut out = String::new();
    out.push_str(
        "EXTENSION — §3.2/§3.3 quantified: GUESS vs dynamic Gnutella on one workload\n\n",
    );

    // GUESS side.
    let mut gcfg = base_config(scale, 0xf0d);
    gcfg.system.network_size = n;
    gcfg.protocol.query_pong = SelectionPolicy::Mfs;
    let guess_report = GuessSim::new(gcfg).expect("valid config").run();
    let guess_maintenance =
        guess_report.counters.get("pings_sent") * 2; // ping + pong

    // Gnutella side (same content model, same churn model, same rate).
    let dyn_cfg = GnutellaConfig {
        network_size: n,
        duration: scale.duration(),
        warmup: scale.warmup(),
        ..GnutellaConfig::default()
    };
    let gnutella_report = GnutellaSim::new(dyn_cfg).expect("valid config").run();
    let gnutella_maintenance = gnutella_report.counters.get("connect_messages");

    let mut table = Table::new(vec![
        "mechanism",
        "query cost (msgs)",
        "unsatisfied",
        "maintenance msgs",
    ]);
    table.row(vec![
        "GUESS (QueryPong=MFS)".into(),
        fnum(guess_report.probes_per_query(), 1),
        fnum(guess_report.unsatisfaction(), 3),
        guess_maintenance.to_string(),
    ]);
    table.row(vec![
        "Gnutella flood ttl=7".into(),
        fnum(gnutella_report.messages_per_query(), 1),
        fnum(gnutella_report.unsatisfaction(), 3),
        gnutella_maintenance.to_string(),
    ]);
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nGnutella reaches {:.0} peers/query; a single malicious query thus costs\n\
         the network {:.0} messages for ~{} sent by the attacker — the amplification\n\
         of §3.3. GUESS probes cost the attacker one message each (amplification 1),\n\
         but Gnutella's maintenance traffic is far lower ({} vs {} messages):\n\
         the paper's efficiency-vs-state tradeoff, quantified.\n",
        gnutella_report.peers_reached.mean(),
        gnutella_report.messages_per_query(),
        GnutellaConfig::default().target_degree,
        gnutella_maintenance,
        guess_maintenance,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payments_report_renders() {
        let out = run_payments(Scale::Quick);
        assert!(out.contains("budget-outs"));
        assert!(out.contains("paid"));
        assert!(out.contains("free"));
    }

    #[test]
    fn forwarding_report_compares_mechanisms() {
        let out = run_forwarding(Scale::Quick);
        assert!(out.contains("GUESS"));
        assert!(out.contains("Gnutella flood"));
        assert!(out.contains("maintenance"));
    }

    #[test]
    fn selfish_report_renders() {
        let out = run_selfish(Scale::Quick);
        assert!(out.contains("% selfish"));
        assert!(out.lines().filter(|l| l.contains('.')).count() >= 4);
    }

    #[test]
    fn adaptive_report_covers_both_parts() {
        let out = run_adaptive(Scale::Quick);
        assert!(out.contains("Ping-interval adaptation"));
        assert!(out.contains("Walk widening"));
        assert!(out.contains("adaptive"));
    }

    #[test]
    fn defense_report_shows_filter_column() {
        let out = run_defense(Scale::Quick);
        assert!(out.contains("pong filter"));
        assert!(out.contains("blacklisted"));
    }

    #[test]
    fn fragmentation_report_compares_topologies() {
        let out = run_fragmentation(Scale::Quick);
        assert!(out.contains("power-law"));
        assert!(out.contains("degree-limited"));
        assert!(out.contains("targeted"));
    }
}
