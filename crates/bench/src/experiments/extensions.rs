//! Extension experiments — beyond the paper's figures, exercising the
//! directions its discussion sections sketch:
//!
//! * `selfish` — §3.3's selfish peers, who fire huge probe volleys;
//! * `adaptive` — §6.1's runtime ping-interval adjustment and §6.2's
//!   adaptive parallel walks (explicitly left to future work);
//! * `defense` — the pong-source reputation filter against cache
//!   poisoning (the direction of Daswani & Garcia-Molina \[9\]);
//! * `fragmentation` — §3.3's fragmentation attack on power-law vs
//!   degree-limited overlays (a single sequential work unit: the attack
//!   grid draws from one shared RNG stream in a fixed order).

use gnutella::dynamic::{GnutellaConfig, GnutellaReport};
use gnutella::fragmentation::{attack, AttackStrategy};
use gnutella::Topology;
use gossip::{Config as GossipConfig, GossipReport, GossipSim};
use guess::config::{AdaptiveParallelism, AdaptivePing, BadPongBehavior};
use guess::engine::GuessSim;
use guess::payments::PaymentParams;
use guess::policy::SelectionPolicy;
use guess::RunReport;
use simkit::rng::RngStream;
use simkit::time::SimDuration;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};
use simkit::sim::Runnable;

fn network_for(scale: Scale) -> usize {
    match scale {
        Scale::Full => 1000,
        Scale::Quick => 300,
    }
}

/// Selfish-peer study: response time for the selfish, load for everyone.
#[must_use]
pub fn run_selfish(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let items: Vec<(usize, f64)> = [0.0f64, 0.1, 0.3, 0.5]
        .iter()
        .copied()
        .enumerate()
        .collect();
    let rows = ctx.map(items, |(i, frac)| {
        // MR concentrates probes on productive peers, so capacity limits
        // actually bind — the regime where selfish volleys hurt others.
        let cfg = base_config(scale, 0x5e1f + i as u64)
            .with_network_size(network_for(scale))
            .with_uniform_policy(SelectionPolicy::Mr)
            .with_max_probes_per_second(Some(5))
            .with_selfish(frac, 100);
        let report = GuessSim::new(cfg).expect("valid config").run();
        vec![
            Cell::float(frac * 100.0, 0),
            Cell::float(report.refused_per_query(), 2),
            Cell::float(report.unsatisfaction(), 3),
            Cell::float(report.mean_response_secs(), 2),
            Cell::uint(report.loads.first().copied().unwrap_or(0)),
        ]
    });
    let mut table = TableBlock::new(
        "selfish",
        vec![
            "% selfish",
            "refused/query",
            "unsatisfied",
            "mean response (s)",
            "top-peer load",
        ],
    );
    for row in rows {
        table.row(row);
    }
    Report::new()
        .text(
            "EXTENSION — selfish peers (§3.3): volleys of 100 parallel probes\n\
             Expected shape: response time collapses as selfishness spreads (each selfish\n\
             peer helps itself), while refusals and hot-peer load climb — the tragedy of\n\
             the commons the paper predicts, motivating probe payments.\n\n",
        )
        .table(table)
}

/// Adaptive maintenance & walks vs the fixed protocol.
#[must_use]
pub fn run_adaptive(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);

    // Part 1: ping-interval adaptation under churn (queries off).
    let ping_modes: Vec<(&'static str, Option<AdaptivePing>, f64)> = vec![
        ("fixed 30s", None, 30.0),
        ("fixed 120s", None, 120.0),
        ("adaptive [5s,300s]", Some(AdaptivePing::default()), 120.0),
    ];
    let ping_rows = ctx.map(ping_modes, |(name, adaptive, fixed_secs)| {
        let cfg = base_config(scale, 0xada)
            .with_network_size(n)
            .with_lifespan_multiplier(0.2)
            .with_queries(false)
            .with_ping_interval(SimDuration::from_secs(fixed_secs))
            .with_adaptive_ping(adaptive);
        let report = GuessSim::new(cfg).expect("valid config").run();
        vec![
            Cell::text(name),
            Cell::uint(report.counters.get("pings_sent")),
            Cell::float(report.live_fraction.unwrap_or(f64::NAN), 3),
            Cell::float(report.largest_component.unwrap_or(f64::NAN), 0),
        ]
    });
    let mut ping_table = TableBlock::new(
        "ping_adaptation",
        vec!["ping mode", "pings sent", "frac live", "LCC"],
    );
    for row in ping_rows {
        ping_table.row(row);
    }

    // Part 2: adaptive walk widening vs fixed k.
    let walk_modes: Vec<(&'static str, usize, Option<AdaptiveParallelism>)> = vec![
        ("serial k=1", 1usize, None),
        ("fixed k=5", 5, None),
        (
            "adaptive (x2 after 10 dry)",
            1,
            Some(AdaptiveParallelism::default()),
        ),
    ];
    let walk_rows = ctx.map(walk_modes, |(name, k, adaptive)| {
        let cfg = base_config(scale, 0xadb)
            .with_network_size(n)
            .with_query_pong(SelectionPolicy::Mfs)
            .with_parallel_probes(k)
            .with_adaptive_parallelism(adaptive);
        let report = GuessSim::new(cfg).expect("valid config").run();
        vec![
            Cell::text(name),
            Cell::float(report.probes_per_query(), 1),
            Cell::float(report.mean_response_secs(), 2),
            Cell::float(report.response_p95.unwrap_or(f64::NAN), 2),
        ]
    });
    let mut walk_table = TableBlock::new(
        "walk_widening",
        vec![
            "walk mode",
            "probes/query",
            "response mean (s)",
            "response p95 (s)",
        ],
    );
    for row in walk_rows {
        walk_table.row(row);
    }

    Report::new()
        .text("EXTENSION — adaptive mechanisms the paper defers to future work\n\n")
        .text("Ping-interval adaptation (heavy churn, queries off):\n")
        .table(ping_table)
        .text("\n")
        .text("Walk widening (QueryPong=MFS):\n")
        .table(walk_table)
        .text(
            "\nAdaptive widening keeps the average cost near serial probing while\n\
             cutting the tail response time that makes rare-item searches painful.\n",
        )
}

/// Pong-source reputation vs cache poisoning.
#[must_use]
pub fn run_defense(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let mut grid = Vec::new();
    for (pi, (pname, policy)) in [("MFS", SelectionPolicy::Mfs), ("MR", SelectionPolicy::Mr)]
        .into_iter()
        .enumerate()
    {
        for (fi, filter) in [false, true].into_iter().enumerate() {
            grid.push((pi, fi, pname, policy, filter));
        }
    }
    let rows = ctx.map(grid, |(pi, fi, pname, policy, filter)| {
        let cfg = base_config(scale, 0xdef + (pi * 2 + fi) as u64)
            .with_network_size(n)
            .with_bad_peers(0.20, BadPongBehavior::Dead)
            .with_uniform_policy(policy)
            .with_distrust_pongs(filter);
        let report = GuessSim::new(cfg).expect("valid config").run();
        vec![
            Cell::text(pname),
            Cell::text(if filter { "on" } else { "off" }),
            Cell::float(report.probes_per_query(), 1),
            Cell::float(report.unsatisfaction(), 3),
            Cell::float(report.good_entries.unwrap_or(f64::NAN), 1),
            Cell::uint(report.counters.get("sources_blacklisted")),
        ]
    });
    let mut table = TableBlock::new(
        "defense",
        vec![
            "policy",
            "pong filter",
            "probes/query",
            "unsatisfied",
            "good entries",
            "blacklisted",
        ],
    );
    for row in rows {
        table.row(row);
    }
    Report::new()
        .text(
            "EXTENSION — pong-source reputation filter vs 20% poisoners (BadPong=Dead)\n\
             Expected shape: the filter blacklists attackers after a handful of dead\n\
             shares, restoring much of MFS's clean-network efficiency.\n\n",
        )
        .table(table)
}

/// Fragmentation attack on overlay topologies.
#[must_use]
pub fn run_fragmentation(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = match scale {
        Scale::Full => 5000,
        Scale::Quick => 1000,
    };
    // The whole grid draws from one RNG stream in a fixed order, so it
    // runs as a single sequential unit under one permit.
    let table = ctx.compute(|| {
        let mut rng = RngStream::from_seed(0xf4a6, "fragmentation");
        let power_law = Topology::preferential_attachment(n, 2, &mut rng);
        let limited = Topology::random_regular(n, 2, &mut rng);
        let victims: Vec<usize> = [0.0f64, 0.01, 0.02, 0.05, 0.10]
            .iter()
            .map(|f| (f * n as f64) as usize)
            .collect();
        let mut table = TableBlock::new(
            "fragmentation",
            vec!["topology", "strategy", "% removed", "cohesion"],
        );
        for (tname, topo) in [("power-law", &power_law), ("degree-limited", &limited)] {
            for strategy in [AttackStrategy::HighestDegree, AttackStrategy::Random] {
                for &v in &victims {
                    let out = attack(topo, strategy, v, &mut rng);
                    let sname = match strategy {
                        AttackStrategy::HighestDegree => "targeted",
                        AttackStrategy::Random => "random",
                    };
                    table.row(vec![
                        Cell::text(tname),
                        Cell::text(sname),
                        Cell::float(v as f64 / n as f64 * 100.0, 0),
                        Cell::float(out.cohesion(), 3),
                    ]);
                }
            }
        }
        table
    });
    Report::new()
        .text(format!(
            "EXTENSION — fragmentation attacks (§3.3), N={n}\n\
             Expected shape: targeted hub removal shatters the power-law overlay while\n\
             the degree-limited overlay degrades gracefully; random failures barely\n\
             dent either — the paper's argument for simple connection limits.\n\n"
        ))
        .table(table)
}

/// Probe payments vs selfish volleys.
#[must_use]
pub fn run_payments(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let mut grid = Vec::new();
    for (i, &selfish) in [0.0f64, 0.4].iter().enumerate() {
        for (j, payments) in [None, Some(PaymentParams::default())]
            .into_iter()
            .enumerate()
        {
            grid.push((i, j, selfish, payments));
        }
    }
    let rows = ctx.map(grid, |(i, j, selfish, payments)| {
        let cfg = base_config(scale, 0x9a9 + (i * 2 + j) as u64)
            .with_network_size(n)
            .with_uniform_policy(SelectionPolicy::Mr)
            .with_max_probes_per_second(Some(5))
            .with_selfish(selfish, 100)
            .with_probe_payments(payments);
        let report = GuessSim::new(cfg).expect("valid config").run();
        vec![
            Cell::text(if payments.is_some() { "paid" } else { "free" }),
            Cell::float(selfish * 100.0, 0),
            Cell::float(report.probes_per_query(), 1),
            Cell::float(report.mean_response_secs(), 2),
            Cell::float(report.unsatisfaction(), 3),
            Cell::uint(report.counters.get("probe_budget_exhausted")),
        ]
    });
    let mut table = TableBlock::new(
        "payments",
        vec![
            "economy",
            "% selfish",
            "probes/query",
            "response (s)",
            "unsatisfied",
            "budget-outs",
        ],
    );
    for row in rows {
        table.row(row);
    }
    Report::new()
        .text(
            "EXTENSION — probe payments (§3.3, after PPay [23])\n\
             Expected shape: probing now has a price — volley senders exhaust their\n\
             credit (budget-outs > 0), which removes the selfish response-time freebie;\n\
             honest traffic is funded comfortably by the allowance.\n\n",
        )
        .table(table)
}

enum Side {
    Guess(Box<RunReport>),
    Gnutella(Box<GnutellaReport>),
    Gossip(Box<GossipReport>),
}

/// GUESS vs a churn-aware Gnutella overlay on identical workloads.
#[must_use]
pub fn run_forwarding(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let mut sides = ctx.map(vec![0usize, 1], |i| {
        if i == 0 {
            // GUESS side.
            let gcfg = base_config(scale, 0xf0d)
                .with_network_size(n)
                .with_query_pong(SelectionPolicy::Mfs);
            Side::Guess(Box::new(GuessSim::new(gcfg).expect("valid config").run()))
        } else {
            // Gnutella side (same content model, same churn model, same rate).
            let dyn_cfg = GnutellaConfig::default()
                .with_network_size(n)
                .with_duration(scale.duration())
                .with_warmup(scale.warmup());
            Side::Gnutella(Box::new(dyn_cfg.build().expect("valid config").run()))
        }
    });
    let (Side::Guess(guess_report), Side::Gnutella(gnutella_report)) =
        (sides.remove(0), sides.remove(0))
    else {
        unreachable!("map preserves item order");
    };
    let guess_maintenance = guess_report.counters.get("pings_sent") * 2; // ping + pong
    let gnutella_maintenance = gnutella_report.counters.get("connect_messages");

    let mut table = TableBlock::new(
        "forwarding",
        vec![
            "mechanism",
            "query cost (msgs)",
            "unsatisfied",
            "maintenance msgs",
        ],
    );
    table.row(vec![
        Cell::text("GUESS (QueryPong=MFS)"),
        Cell::float(guess_report.probes_per_query(), 1),
        Cell::float(guess_report.unsatisfaction(), 3),
        Cell::uint(guess_maintenance),
    ]);
    table.row(vec![
        Cell::text("Gnutella flood ttl=7"),
        Cell::float(gnutella_report.messages_per_query(), 1),
        Cell::float(gnutella_report.unsatisfaction(), 3),
        Cell::uint(gnutella_maintenance),
    ]);
    Report::new()
        .text("EXTENSION — §3.2/§3.3 quantified: GUESS vs dynamic Gnutella on one workload\n\n")
        .table(table)
        .text(format!(
            "\nGnutella reaches {:.0} peers/query; a single malicious query thus costs\n\
             the network {:.0} messages for ~{} sent by the attacker — the amplification\n\
             of §3.3. GUESS probes cost the attacker one message each (amplification 1),\n\
             but Gnutella's maintenance traffic is far lower ({} vs {} messages):\n\
             the paper's efficiency-vs-state tradeoff, quantified.\n",
            gnutella_report.peers_reached.mean(),
            gnutella_report.messages_per_query(),
            GnutellaConfig::default().target_degree,
            gnutella_maintenance,
            guess_maintenance,
        ))
}

/// Three-way amplification/maintenance comparison: GUESS probing vs
/// Gnutella flooding vs epidemic gossip on identical workloads. Extends
/// `forwarding` with the third mechanism class; a fresh experiment (own
/// seeds) so the two-way report stays byte-identical.
#[must_use]
pub fn run_forwarding3(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = network_for(scale);
    let mut sides = ctx.map(vec![0usize, 1, 2], |i| match i {
        0 => {
            let gcfg = base_config(scale, 0xf0d3)
                .with_network_size(n)
                .with_query_pong(SelectionPolicy::Mfs);
            Side::Guess(Box::new(GuessSim::new(gcfg).expect("valid config").run()))
        }
        1 => {
            let dyn_cfg = GnutellaConfig::default()
                .with_network_size(n)
                .with_duration(scale.duration())
                .with_warmup(scale.warmup())
                .with_seed(0xf0d3);
            Side::Gnutella(Box::new(dyn_cfg.build().expect("valid config").run()))
        }
        _ => {
            let gcfg = GossipConfig::default()
                .with_network_size(n)
                .with_duration(scale.duration())
                .with_warmup(scale.warmup())
                .with_seed(0xf0d3);
            Side::Gossip(Box::new(GossipSim::new(gcfg).expect("valid config").run()))
        }
    });
    let (Side::Guess(guess_report), Side::Gnutella(gnutella_report), Side::Gossip(gossip_report)) =
        (sides.remove(0), sides.remove(0), sides.remove(0))
    else {
        unreachable!("map preserves item order");
    };
    let guess_maintenance = guess_report.counters.get("pings_sent") * 2; // ping + pong
    let gnutella_maintenance = gnutella_report.counters.get("connect_messages");

    // Per-query messages the *originator* itself sends: every GUESS
    // probe, one flood message per neighbor, one push per gossip fanout.
    // Query cost over that is the attack amplification of §3.3.
    let guess_sent = guess_report.probes_per_query();
    let gnutella_sent = GnutellaConfig::default().target_degree as f64;
    let gossip_sent = GossipConfig::default().fanout as f64;

    let mut table = TableBlock::new(
        "forwarding3",
        vec![
            "mechanism",
            "query cost (msgs)",
            "unsatisfied",
            "maintenance msgs",
            "amplification",
        ],
    );
    table.row(vec![
        Cell::text("GUESS (QueryPong=MFS)"),
        Cell::float(guess_report.probes_per_query(), 1),
        Cell::float(guess_report.unsatisfaction(), 3),
        Cell::uint(guess_maintenance),
        Cell::float(1.0, 1),
    ]);
    table.row(vec![
        Cell::text("Gnutella flood ttl=7"),
        Cell::float(gnutella_report.messages_per_query(), 1),
        Cell::float(gnutella_report.unsatisfaction(), 3),
        Cell::uint(gnutella_maintenance),
        Cell::float(gnutella_report.messages_per_query() / gnutella_sent, 1),
    ]);
    table.row(vec![
        Cell::text("Gossip push/pull"),
        Cell::float(gossip_report.messages_per_query(), 1),
        Cell::float(gossip_report.unsatisfaction(), 3),
        Cell::uint(0u64),
        Cell::float(gossip_report.messages_per_query() / gossip_sent, 1),
    ]);
    Report::new()
        .text(
            "EXTENSION — three-way §3.2/§3.3 comparison on one workload:\n\
             cache-directed probing vs flooding vs epidemic spread\n\n",
        )
        .table(table)
        .text(format!(
            "\nAmplification is the network-wide cost of one query over the {:.1}\n\
             messages its originator sends (GUESS probes all come from the\n\
             originator, so its amplification is 1 by construction). Gossip pays\n\
             no maintenance here — rumor targets come from a membership oracle,\n\
             not per-peer overlay state — but each query recruits the whole\n\
             epidemic ({:.0} messages), sitting between GUESS ({:.1}) and the\n\
             flood ({:.1}) on per-query cost.\n",
            guess_sent,
            gossip_report.messages_per_query(),
            guess_report.probes_per_query(),
            gnutella_report.messages_per_query(),
        ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding3_report_has_all_three_rows() {
        let ctx = Ctx::new(Scale::Quick, 3);
        let out = run_forwarding3(&ctx).render_text();
        assert!(out.contains("GUESS"));
        assert!(out.contains("Gnutella flood"));
        assert!(out.contains("Gossip push/pull"));
        assert!(out.contains("amplification"));
    }

    #[test]
    fn payments_report_renders() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run_payments(&ctx).render_text();
        assert!(out.contains("budget-outs"));
        assert!(out.contains("paid"));
        assert!(out.contains("free"));
    }

    #[test]
    fn forwarding_report_compares_mechanisms() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run_forwarding(&ctx).render_text();
        assert!(out.contains("GUESS"));
        assert!(out.contains("Gnutella flood"));
        assert!(out.contains("maintenance"));
    }

    #[test]
    fn selfish_report_renders() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run_selfish(&ctx).render_text();
        assert!(out.contains("% selfish"));
        assert!(out.lines().filter(|l| l.contains('.')).count() >= 4);
    }

    #[test]
    fn adaptive_report_covers_both_parts() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run_adaptive(&ctx).render_text();
        assert!(out.contains("Ping-interval adaptation"));
        assert!(out.contains("Walk widening"));
        assert!(out.contains("adaptive"));
    }

    #[test]
    fn defense_report_shows_filter_column() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run_defense(&ctx).render_text();
        assert!(out.contains("pong filter"));
        assert!(out.contains("blacklisted"));
    }

    #[test]
    fn fragmentation_report_compares_topologies() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run_fragmentation(&ctx).render_text();
        assert!(out.contains("power-law"));
        assert!(out.contains("degree-limited"));
        assert!(out.contains("targeted"));
    }
}
