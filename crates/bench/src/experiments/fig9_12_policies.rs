//! Figures 9–12: the impact of each policy type in the default scenario.
//!
//! Setup (§6.2): N=1000, Table 1/2 defaults. One policy type is varied at
//! a time, all others stay Random. The per-knob sweep is computed once
//! per [`Ctx`] and shared between figures (Figs 10 and 12 read the same
//! QueryPong sweep). Paper headlines:
//!
//! * Fig 9 — `QueryProbe` matters least (≤ ~25 % cost change);
//! * Fig 10 — `QueryPong = MFS` cuts cost ~4×;
//! * Fig 11 — `CacheReplacement = LFS` cuts cost >5×, while MRU
//!   (evict-freshest) is pathological — dead probes dominate;
//! * Fig 12 — unsatisfaction stays within ~6–14 % for QueryPong variants.

use std::sync::Arc;

use guess::engine::GuessSim;
use guess::policy::{ReplacementPolicy, SelectionPolicy};
use guess::Config;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};
use simkit::sim::Runnable;

/// Which policy knob a sweep turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Vary `QueryProbe`.
    QueryProbe,
    /// Vary `QueryPong`.
    QueryPong,
    /// Vary `CacheReplacement`.
    CacheReplacement,
}

impl Knob {
    fn key(self) -> &'static str {
        match self {
            Knob::QueryProbe => "fig9_12/QueryProbe",
            Knob::QueryPong => "fig9_12/QueryPong",
            Knob::CacheReplacement => "fig9_12/CacheReplacement",
        }
    }
}

/// One sweep sample.
#[derive(Debug, Clone)]
pub struct Point {
    /// Display name of the policy setting.
    pub policy: String,
    /// Mean good probes per query.
    pub good: f64,
    /// Mean dead probes per query.
    pub dead: f64,
    /// Unsatisfied fraction.
    pub unsat: f64,
}

const SELECTIONS: [SelectionPolicy; 5] = [
    SelectionPolicy::Random,
    SelectionPolicy::Mru,
    SelectionPolicy::Lru,
    SelectionPolicy::Mfs,
    SelectionPolicy::Mr,
];

const REPLACEMENTS: [ReplacementPolicy; 5] = [
    ReplacementPolicy::Random,
    ReplacementPolicy::Lru,
    ReplacementPolicy::Mru,
    ReplacementPolicy::Lfs,
    ReplacementPolicy::Lr,
];

fn point_config(scale: Scale, seed: u64) -> Config {
    let cfg = base_config(scale, seed);
    if scale == Scale::Quick {
        cfg.with_network_size(300)
    } else {
        cfg
    }
}

/// The sweep for one knob (computed once per context, shared between
/// the figures that read it).
#[must_use]
pub fn sweep(ctx: &Ctx, knob: Knob) -> Arc<Vec<Point>> {
    ctx.shared(knob.key(), |ctx| {
        let scale = ctx.scale();
        let run_one = |cfg, name: String| {
            let report = GuessSim::new(cfg).expect("valid config").run();
            Point {
                policy: name,
                good: report.good_per_query(),
                dead: report.dead_per_query(),
                unsat: report.unsatisfaction(),
            }
        };
        match knob {
            Knob::QueryProbe | Knob::QueryPong => {
                let items: Vec<(usize, SelectionPolicy)> =
                    SELECTIONS.iter().copied().enumerate().collect();
                ctx.map(items, |(i, p)| {
                    let cfg = point_config(scale, 0xf9 + i as u64);
                    let cfg = match knob {
                        Knob::QueryProbe => cfg.with_query_probe(p),
                        Knob::QueryPong => cfg.with_query_pong(p),
                        Knob::CacheReplacement => unreachable!(),
                    };
                    run_one(cfg, p.to_string())
                })
            }
            Knob::CacheReplacement => {
                let items: Vec<(usize, ReplacementPolicy)> =
                    REPLACEMENTS.iter().copied().enumerate().collect();
                ctx.map(items, |(i, p)| {
                    let cfg = point_config(scale, 0xf11 + i as u64).with_cache_replacement(p);
                    run_one(cfg, p.to_string())
                })
            }
        }
    })
}

fn probes_table(points: &[Point]) -> TableBlock {
    let mut table = TableBlock::new(
        "probes_by_policy",
        vec!["policy", "good/query", "deadIPs/query", "total"],
    );
    for p in points {
        table.row(vec![
            Cell::text(p.policy.clone()),
            Cell::float(p.good, 1),
            Cell::float(p.dead, 1),
            Cell::float(p.good + p.dead, 1),
        ]);
    }
    table
}

/// Figure 9: probes/query per `QueryProbe` policy.
#[must_use]
pub fn run_fig9(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, Knob::QueryProbe);
    Report::new()
        .text(
            "Figure 9 — probes/query per QueryProbe policy (others Random)\n\
             Expected shape: modest spread (paper: at most ~25% change).\n\n",
        )
        .table(probes_table(&pts))
}

/// Figure 10: probes/query per `QueryPong` policy.
#[must_use]
pub fn run_fig10(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, Knob::QueryPong);
    Report::new()
        .text(
            "Figure 10 — probes/query per QueryPong policy (others Random)\n\
             Expected shape: MFS ~4x cheaper than Random; MR close behind.\n\n",
        )
        .table(probes_table(&pts))
}

/// Figure 11: probes/query per `CacheReplacement` policy.
#[must_use]
pub fn run_fig11(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, Knob::CacheReplacement);
    Report::new()
        .text(
            "Figure 11 — probes/query per CacheReplacement policy (others Random)\n\
             Expected shape: LFS >5x cheaper than Random; MRU (evict freshest)\n\
             pathological — dead probes dominate.\n\n",
        )
        .table(probes_table(&pts))
}

/// Figure 12: unsatisfaction per `QueryPong` policy.
#[must_use]
pub fn run_fig12(ctx: &Ctx) -> Report {
    let pts = sweep(ctx, Knob::QueryPong);
    let mut table = TableBlock::new("unsat_by_policy", vec!["policy", "unsatisfied"]);
    for p in pts.iter() {
        table.row(vec![Cell::text(p.policy.clone()), Cell::float(p.unsat, 3)]);
    }
    Report::new()
        .text(
            "Figure 12 — unsatisfied queries per QueryPong policy\n\
             Expected shape: all within roughly 6-14%; ~6% of queries are\n\
             unsatisfiable even probing the whole 1000-peer network.\n\n",
        )
        .table(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_cover_all_policies() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let pts = sweep(&ctx, Knob::QueryPong);
        let names: Vec<&str> = pts.iter().map(|p| p.policy.as_str()).collect();
        assert_eq!(names, vec!["Ran", "MRU", "LRU", "MFS", "MR"]);
    }

    #[test]
    fn replacement_sweep_uses_eviction_names() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let pts = sweep(&ctx, Knob::CacheReplacement);
        let names: Vec<&str> = pts.iter().map(|p| p.policy.as_str()).collect();
        assert_eq!(names, vec!["Ran", "LRU", "MRU", "LFS", "LR"]);
    }

    #[test]
    fn reports_render() {
        let ctx = Ctx::new(Scale::Quick, 2);
        assert!(run_fig9(&ctx).render_text().contains("QueryProbe"));
        assert!(run_fig10(&ctx).render_text().contains("QueryPong"));
        assert!(run_fig11(&ctx).render_text().contains("CacheReplacement"));
        assert!(run_fig12(&ctx).render_text().contains("unsatisfied"));
    }
}
