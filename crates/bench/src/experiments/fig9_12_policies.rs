//! Figures 9–12: the impact of each policy type in the default scenario.
//!
//! Setup (§6.2): N=1000, Table 1/2 defaults. One policy type is varied at
//! a time, all others stay Random. Paper headlines:
//!
//! * Fig 9 — `QueryProbe` matters least (≤ ~25 % cost change);
//! * Fig 10 — `QueryPong = MFS` cuts cost ~4×;
//! * Fig 11 — `CacheReplacement = LFS` cuts cost >5×, while MRU
//!   (evict-freshest) is pathological — dead probes dominate;
//! * Fig 12 — unsatisfaction stays within ~6–14 % for QueryPong variants.

use std::collections::HashMap;
use std::sync::Mutex;

use guess::engine::GuessSim;
use guess::policy::{ReplacementPolicy, SelectionPolicy};

use crate::scale::{base_config, Scale};
use crate::table::{fnum, Table};

/// Which policy knob a sweep turns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Vary `QueryProbe`.
    QueryProbe,
    /// Vary `QueryPong`.
    QueryPong,
    /// Vary `CacheReplacement`.
    CacheReplacement,
}

/// One sweep sample.
#[derive(Debug, Clone)]
pub struct Point {
    /// Display name of the policy setting.
    pub policy: String,
    /// Mean good probes per query.
    pub good: f64,
    /// Mean dead probes per query.
    pub dead: f64,
    /// Unsatisfied fraction.
    pub unsat: f64,
}

static SWEEP: Mutex<Option<HashMap<(Scale, Knob), Vec<Point>>>> = Mutex::new(None);

const SELECTIONS: [SelectionPolicy; 5] = [
    SelectionPolicy::Random,
    SelectionPolicy::Mru,
    SelectionPolicy::Lru,
    SelectionPolicy::Mfs,
    SelectionPolicy::Mr,
];

const REPLACEMENTS: [ReplacementPolicy; 5] = [
    ReplacementPolicy::Random,
    ReplacementPolicy::Lru,
    ReplacementPolicy::Mru,
    ReplacementPolicy::Lfs,
    ReplacementPolicy::Lr,
];

/// The (memoized) sweep for one knob.
#[must_use]
pub fn sweep(scale: Scale, knob: Knob) -> Vec<Point> {
    {
        let mut guard = SWEEP.lock().expect("memo");
        if let Some(v) = guard.get_or_insert_with(HashMap::new).get(&(scale, knob)) {
            return v.clone();
        }
    }
    let mut points = Vec::new();
    let run_one = |cfg| {
        let report = GuessSim::new(cfg).expect("valid config").run();
        (report.good_per_query(), report.dead_per_query(), report.unsatisfaction())
    };
    match knob {
        Knob::QueryProbe | Knob::QueryPong => {
            for (i, &p) in SELECTIONS.iter().enumerate() {
                let mut cfg = base_config(scale, 0xf9 + i as u64);
                if scale == Scale::Quick {
                    cfg.system.network_size = 300;
                }
                match knob {
                    Knob::QueryProbe => cfg.protocol.query_probe = p,
                    Knob::QueryPong => cfg.protocol.query_pong = p,
                    Knob::CacheReplacement => unreachable!(),
                }
                let (good, dead, unsat) = run_one(cfg);
                points.push(Point { policy: p.to_string(), good, dead, unsat });
            }
        }
        Knob::CacheReplacement => {
            for (i, &p) in REPLACEMENTS.iter().enumerate() {
                let mut cfg = base_config(scale, 0xf11 + i as u64);
                if scale == Scale::Quick {
                    cfg.system.network_size = 300;
                }
                cfg.protocol.cache_replacement = p;
                let (good, dead, unsat) = run_one(cfg);
                points.push(Point { policy: p.to_string(), good, dead, unsat });
            }
        }
    }
    SWEEP
        .lock()
        .expect("memo")
        .get_or_insert_with(HashMap::new)
        .insert((scale, knob), points.clone());
    points
}

fn probes_table(points: &[Point]) -> String {
    let mut table = Table::new(vec!["policy", "good/query", "deadIPs/query", "total"]);
    for p in points {
        table.row(vec![
            p.policy.clone(),
            fnum(p.good, 1),
            fnum(p.dead, 1),
            fnum(p.good + p.dead, 1),
        ]);
    }
    table.render()
}

/// Figure 9: probes/query per `QueryProbe` policy.
#[must_use]
pub fn run_fig9(scale: Scale) -> String {
    let pts = sweep(scale, Knob::QueryProbe);
    format!(
        "Figure 9 — probes/query per QueryProbe policy (others Random)\n\
         Expected shape: modest spread (paper: at most ~25% change).\n\n{}",
        probes_table(&pts)
    )
}

/// Figure 10: probes/query per `QueryPong` policy.
#[must_use]
pub fn run_fig10(scale: Scale) -> String {
    let pts = sweep(scale, Knob::QueryPong);
    format!(
        "Figure 10 — probes/query per QueryPong policy (others Random)\n\
         Expected shape: MFS ~4x cheaper than Random; MR close behind.\n\n{}",
        probes_table(&pts)
    )
}

/// Figure 11: probes/query per `CacheReplacement` policy.
#[must_use]
pub fn run_fig11(scale: Scale) -> String {
    let pts = sweep(scale, Knob::CacheReplacement);
    format!(
        "Figure 11 — probes/query per CacheReplacement policy (others Random)\n\
         Expected shape: LFS >5x cheaper than Random; MRU (evict freshest)\n\
         pathological — dead probes dominate.\n\n{}",
        probes_table(&pts)
    )
}

/// Figure 12: unsatisfaction per `QueryPong` policy.
#[must_use]
pub fn run_fig12(scale: Scale) -> String {
    let pts = sweep(scale, Knob::QueryPong);
    let mut table = Table::new(vec!["policy", "unsatisfied"]);
    for p in &pts {
        table.row(vec![p.policy.clone(), fnum(p.unsat, 3)]);
    }
    format!(
        "Figure 12 — unsatisfied queries per QueryPong policy\n\
         Expected shape: all within roughly 6-14%; ~6% of queries are\n\
         unsatisfiable even probing the whole 1000-peer network.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_cover_all_policies() {
        let pts = sweep(Scale::Quick, Knob::QueryPong);
        let names: Vec<&str> = pts.iter().map(|p| p.policy.as_str()).collect();
        assert_eq!(names, vec!["Ran", "MRU", "LRU", "MFS", "MR"]);
    }

    #[test]
    fn replacement_sweep_uses_eviction_names() {
        let pts = sweep(Scale::Quick, Knob::CacheReplacement);
        let names: Vec<&str> = pts.iter().map(|p| p.policy.as_str()).collect();
        assert_eq!(names, vec!["Ran", "LRU", "MRU", "LFS", "LR"]);
    }

    #[test]
    fn reports_render() {
        assert!(run_fig9(Scale::Quick).contains("QueryProbe"));
        assert!(run_fig10(Scale::Quick).contains("QueryPong"));
        assert!(run_fig11(Scale::Quick).contains("CacheReplacement"));
        assert!(run_fig12(Scale::Quick).contains("unsatisfied"));
    }
}
