//! Figure 13: ranked distribution of per-peer load.
//!
//! Setup (§6.3): N=1000 defaults; combinations of `QueryProbe` and
//! `CacheReplacement` policies. Peers are ranked by probes received over
//! their lifetimes. Paper headline: MFS/LFS and MR/LR concentrate load on
//! a few peers; Random/Random is flat but sends ~8× more probes in total.

use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};
use simkit::sim::Runnable;

/// The policy combinations of the figure (QueryProbe / CacheReplacement).
#[must_use]
pub fn combos() -> Vec<(&'static str, SelectionPolicy)> {
    vec![
        ("Random/Random", SelectionPolicy::Random),
        ("MFS/LFS", SelectionPolicy::Mfs),
        ("MR/LR", SelectionPolicy::Mr),
        ("MRU/LRU", SelectionPolicy::Mru),
    ]
}

/// Ranks (1-based) reported from the load curve — log-spaced like the
/// paper's x-axis.
pub const RANKS: [usize; 9] = [1, 2, 3, 5, 10, 32, 100, 316, 1000];

/// Runs the Figure 13 reproduction.
#[must_use]
pub fn run(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let items: Vec<(usize, (&'static str, SelectionPolicy))> =
        combos().into_iter().enumerate().collect();
    let results = ctx.map(items, |(i, (name, probe))| {
        let mut cfg = base_config(scale, 0xf13 + i as u64)
            .with_query_probe(probe)
            .with_cache_replacement(probe.mirror_replacement());
        if scale == Scale::Quick {
            cfg = cfg.with_network_size(300);
        }
        let report = GuessSim::new(cfg).expect("valid config").run();
        let total: u64 = report.loads.iter().sum();
        let ranked: Vec<u64> = RANKS
            .iter()
            .map(|&r| report.loads.get(r - 1).copied().unwrap_or(0))
            .collect();
        (name, total, ranked)
    });

    let mut table = {
        let mut header = vec!["combo".to_string(), "total probes".to_string()];
        header.extend(RANKS.iter().map(|r| format!("rank {r}")));
        TableBlock::with_columns("ranked_load", header)
    };
    let mut totals: Vec<(&str, f64)> = Vec::new();
    for (name, total, ranked) in &results {
        totals.push((name, *total as f64));
        let mut row = vec![Cell::text(*name), Cell::uint(*total)];
        row.extend(ranked.iter().map(|&v| Cell::uint(v)));
        table.row(row);
    }
    let random_total = totals
        .iter()
        .find(|(n, _)| *n == "Random/Random")
        .map_or(0.0, |t| t.1);
    let mfs_total = totals
        .iter()
        .find(|(n, _)| *n == "MFS/LFS")
        .map_or(1.0, |t| t.1);
    Report::new()
        .text(
            "Figure 13 — ranked load (probes received) per policy combination\n\
             Expected shape: MFS/LFS and MR/LR pile load onto the top-ranked peers;\n\
             Random/Random is flat but far more expensive in total (paper: ~8x MFS/LFS).\n\n",
        )
        .table(table)
        .text(format!(
            "\ntotal probes Random/Random vs MFS/LFS: {:.1}x (paper: ~8x)\n",
            random_total / mfs_total.max(1.0)
        ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_combos() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run(&ctx).render_text();
        for (name, _) in combos() {
            assert!(out.contains(name), "missing combo {name}");
        }
        assert!(out.contains("total probes"));
    }
}
