//! Figure 13: ranked distribution of per-peer load.
//!
//! Setup (§6.3): N=1000 defaults; combinations of `QueryProbe` and
//! `CacheReplacement` policies. Peers are ranked by probes received over
//! their lifetimes. Paper headline: MFS/LFS and MR/LR concentrate load on
//! a few peers; Random/Random is flat but sends ~8× more probes in total.

use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;

use crate::scale::{base_config, Scale};
use crate::table::Table;

/// The policy combinations of the figure (QueryProbe / CacheReplacement).
#[must_use]
pub fn combos() -> Vec<(&'static str, SelectionPolicy)> {
    vec![
        ("Random/Random", SelectionPolicy::Random),
        ("MFS/LFS", SelectionPolicy::Mfs),
        ("MR/LR", SelectionPolicy::Mr),
        ("MRU/LRU", SelectionPolicy::Mru),
    ]
}

/// Ranks (1-based) reported from the load curve — log-spaced like the
/// paper's x-axis.
pub const RANKS: [usize; 9] = [1, 2, 3, 5, 10, 32, 100, 316, 1000];

/// Runs the Figure 13 reproduction.
#[must_use]
pub fn run(scale: Scale) -> String {
    let mut table = {
        let mut header = vec!["combo".to_string(), "total probes".to_string()];
        header.extend(RANKS.iter().map(|r| format!("rank {r}")));
        Table::new(header.iter().map(String::as_str).collect())
    };
    let mut totals: Vec<(String, f64)> = Vec::new();
    for (i, (name, probe)) in combos().into_iter().enumerate() {
        let mut cfg = base_config(scale, 0xf13 + i as u64);
        if scale == Scale::Quick {
            cfg.system.network_size = 300;
        }
        cfg.protocol.query_probe = probe;
        cfg.protocol.cache_replacement = probe.mirror_replacement();
        let report = GuessSim::new(cfg).expect("valid config").run();
        let total: u64 = report.loads.iter().sum();
        totals.push((name.to_string(), total as f64));
        let mut row = vec![name.to_string(), total.to_string()];
        for &r in &RANKS {
            let v = report.loads.get(r - 1).copied().unwrap_or(0);
            row.push(v.to_string());
        }
        table.row(row);
    }
    let random_total = totals.iter().find(|(n, _)| n == "Random/Random").map_or(0.0, |t| t.1);
    let mfs_total = totals.iter().find(|(n, _)| n == "MFS/LFS").map_or(1.0, |t| t.1);
    format!(
        "Figure 13 — ranked load (probes received) per policy combination\n\
         Expected shape: MFS/LFS and MR/LR pile load onto the top-ranked peers;\n\
         Random/Random is flat but far more expensive in total (paper: ~8x MFS/LFS).\n\n{}\n\
         total probes Random/Random vs MFS/LFS: {:.1}x (paper: ~8x)\n",
        table.render(),
        random_total / mfs_total.max(1.0)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_combos() {
        let out = run(Scale::Quick);
        for (name, _) in combos() {
            assert!(out.contains(name), "missing combo {name}");
        }
        assert!(out.contains("total probes"));
    }
}
