//! Figure 8: the cost/quality tradeoff of flexible query extent.
//!
//! Three mechanisms are compared at N=1000 under the default workload:
//!
//! * **fixed extent** (Gnutella) — evaluated at every extent 1..1000;
//! * **iterative deepening** — coarse flexible extent (TTL schedules over
//!   an explicit overlay);
//! * **GUESS** — fine flexible extent, Random baseline and
//!   `QueryPong = MFS`.
//!
//! Paper reference points: GUESS Random ≈ (99 probes, 6 % unsat); GUESS
//! MFS ≈ (17 probes, 8 %); fixed extent needs ≈1000 probes for 6 % and
//! ≈540 for 8 % — over an order of magnitude worse.

use gnutella::iterative::{evaluate as iterative_evaluate, DeepeningPolicy};
use gnutella::population::Population;
use gnutella::{FixedExtentCurve, Topology};
use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;
use simkit::rng::RngStream;

use crate::scale::{base_config, Scale};
use crate::table::{fnum, Table};

/// Runs the Figure 8 reproduction.
#[must_use]
pub fn run(scale: Scale) -> String {
    let n = match scale {
        Scale::Full => 1000,
        Scale::Quick => 300,
    };
    let seed = 0xf18u64;
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 8 — unsatisfaction vs average query cost (N={n})\n\
         Expected shape: GUESS dominates; iterative deepening sits between GUESS and\n\
         fixed extent; fixed extent needs nearly the whole network for low unsatisfaction.\n\n"
    ));

    // --- Fixed extent (Gnutella) --------------------------------------
    let pop = Population::generate(n, workload::content::CatalogParams::default(), seed)
        .expect("valid population");
    let mut rng = RngStream::from_seed(seed, "fig8");
    let curve = FixedExtentCurve::evaluate(&pop, scale.curve_queries(), &mut rng);
    let mut fixed = Table::new(vec!["extent (probes)", "unsatisfied"]);
    let extents: Vec<usize> =
        [1, 2, 5, 10, 17, 50, 99, 200, 540, 1000].iter().copied().filter(|&e| e <= n).collect();
    for &e in &extents {
        fixed.row(vec![e.to_string(), fnum(curve.unsatisfaction_at(e), 3)]);
    }
    out.push_str("Fixed extent (Gnutella):\n");
    out.push_str(&fixed.render());
    out.push_str(&format!(
        "unsatisfiable floor (whole network): {:.3}\n",
        curve.unsatisfiable_fraction()
    ));
    let floor = curve.unsatisfiable_fraction();
    if let Some(e) = curve.extent_for_unsatisfaction(floor + 0.005) {
        out.push_str(&format!("fixed extent needed to reach floor+0.5%: {e} probes\n"));
    }
    if let Some(e) = curve.extent_for_unsatisfaction(floor + 0.02) {
        out.push_str(&format!("fixed extent needed to reach floor+2%:   {e} probes\n"));
    }
    out.push('\n');

    // --- Iterative deepening ------------------------------------------
    let mut topo_rng = RngStream::from_seed(seed, "fig8-topo");
    let topo = Topology::random_regular(n, 4, &mut topo_rng);
    let schedules: Vec<(&str, Vec<usize>)> = vec![
        ("ttl 2;4;7", vec![2, 4, 7]),
        ("ttl 1;2;3;4;5;7", vec![1, 2, 3, 4, 5, 7]),
        ("ttl 3;7", vec![3, 7]),
    ];
    let mut iter_table = Table::new(vec!["schedule", "mean cost", "unsatisfied"]);
    for (name, ttls) in schedules {
        let policy = DeepeningPolicy::new(ttls).expect("valid schedule");
        let (cost, unsat) =
            iterative_evaluate(&topo, &pop, &policy, scale.curve_queries() / 4, 1, &mut rng);
        iter_table.row(vec![name.to_string(), fnum(cost, 1), fnum(unsat, 3)]);
    }
    out.push_str("Iterative deepening (coarse flexible extent):\n");
    out.push_str(&iter_table.render());
    out.push('\n');

    // --- GUESS ----------------------------------------------------------
    let mut guess_table =
        Table::new(vec!["config", "probes/query", "unsatisfied", "paper probes", "paper unsat"]);
    let mut cfg = base_config(scale, seed);
    cfg.system.network_size = n;
    let random = GuessSim::new(cfg.clone()).expect("valid config").run();
    guess_table.row(vec![
        "GUESS Random (o)".into(),
        fnum(random.probes_per_query(), 1),
        fnum(random.unsatisfaction(), 3),
        "99".into(),
        "0.06".into(),
    ]);
    let mut mfs_cfg = cfg;
    mfs_cfg.protocol.query_pong = SelectionPolicy::Mfs;
    let mfs = GuessSim::new(mfs_cfg).expect("valid config").run();
    guess_table.row(vec![
        "GUESS QueryPong=MFS (x)".into(),
        fnum(mfs.probes_per_query(), 1),
        fnum(mfs.unsatisfaction(), 3),
        "17".into(),
        "0.08".into(),
    ]);
    out.push_str("GUESS (fine flexible extent):\n");
    out.push_str(&guess_table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_contains_all_mechanisms() {
        let out = run(Scale::Quick);
        assert!(out.contains("Fixed extent"));
        assert!(out.contains("Iterative deepening"));
        assert!(out.contains("GUESS Random"));
        assert!(out.contains("QueryPong=MFS"));
    }
}
