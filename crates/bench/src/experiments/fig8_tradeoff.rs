//! Figure 8: the cost/quality tradeoff of flexible query extent.
//!
//! Three mechanisms are compared at N=1000 under the default workload:
//!
//! * **fixed extent** (Gnutella) — evaluated at every extent 1..1000;
//! * **iterative deepening** — coarse flexible extent (TTL schedules over
//!   an explicit overlay);
//! * **GUESS** — fine flexible extent, Random baseline and
//!   `QueryPong = MFS`.
//!
//! Paper reference points: GUESS Random ≈ (99 probes, 6 % unsat); GUESS
//! MFS ≈ (17 probes, 8 %); fixed extent needs ≈1000 probes for 6 % and
//! ≈540 for 8 % — over an order of magnitude worse.
//!
//! Parallelism note: the fixed-extent curve and the deepening schedules
//! draw from one shared RNG stream in a fixed order, so they form a
//! single sequential work unit; the two GUESS runs are independent
//! units and run alongside it.

use gnutella::iterative::{evaluate as iterative_evaluate, DeepeningPolicy};
use gnutella::population::Population;
use gnutella::{FixedExtentCurve, Topology};
use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;
use guess::RunReport;
use simkit::rng::RngStream;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};
use simkit::sim::Runnable;

enum Piece {
    Gnutella {
        fixed: TableBlock,
        notes: String,
        deepening: TableBlock,
    },
    Guess(RunReport),
}

fn gnutella_piece(scale: Scale, n: usize, seed: u64) -> Piece {
    let pop = Population::generate(n, workload::content::CatalogParams::default(), seed)
        .expect("valid population");
    let mut rng = RngStream::from_seed(seed, "fig8");
    let curve = FixedExtentCurve::evaluate(&pop, scale.curve_queries(), &mut rng);
    let mut fixed = TableBlock::new("fixed_extent", vec!["extent (probes)", "unsatisfied"]);
    let extents: Vec<usize> = [1, 2, 5, 10, 17, 50, 99, 200, 540, 1000]
        .iter()
        .copied()
        .filter(|&e| e <= n)
        .collect();
    for &e in &extents {
        fixed.row(vec![
            Cell::size(e),
            Cell::float(curve.unsatisfaction_at(e), 3),
        ]);
    }
    let mut notes = format!(
        "unsatisfiable floor (whole network): {:.3}\n",
        curve.unsatisfiable_fraction()
    );
    let floor = curve.unsatisfiable_fraction();
    if let Some(e) = curve.extent_for_unsatisfaction(floor + 0.005) {
        notes.push_str(&format!(
            "fixed extent needed to reach floor+0.5%: {e} probes\n"
        ));
    }
    if let Some(e) = curve.extent_for_unsatisfaction(floor + 0.02) {
        notes.push_str(&format!(
            "fixed extent needed to reach floor+2%:   {e} probes\n"
        ));
    }
    notes.push('\n');

    let mut topo_rng = RngStream::from_seed(seed, "fig8-topo");
    let topo = Topology::random_regular(n, 4, &mut topo_rng);
    let schedules: Vec<(&str, Vec<usize>)> = vec![
        ("ttl 2;4;7", vec![2, 4, 7]),
        ("ttl 1;2;3;4;5;7", vec![1, 2, 3, 4, 5, 7]),
        ("ttl 3;7", vec![3, 7]),
    ];
    let mut deepening = TableBlock::new(
        "iterative_deepening",
        vec!["schedule", "mean cost", "unsatisfied"],
    );
    for (name, ttls) in schedules {
        let policy = DeepeningPolicy::new(ttls).expect("valid schedule");
        let (cost, unsat) =
            iterative_evaluate(&topo, &pop, &policy, scale.curve_queries() / 4, 1, &mut rng);
        deepening.row(vec![
            Cell::text(name),
            Cell::float(cost, 1),
            Cell::float(unsat, 3),
        ]);
    }
    Piece::Gnutella {
        fixed,
        notes,
        deepening,
    }
}

/// Runs the Figure 8 reproduction.
#[must_use]
pub fn run(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = match scale {
        Scale::Full => 1000,
        Scale::Quick => 300,
    };
    let seed = 0xf18u64;
    let mut pieces = ctx.map(vec![0usize, 1, 2], |i| match i {
        0 => gnutella_piece(scale, n, seed),
        1 => Piece::Guess(
            GuessSim::new(base_config(scale, seed).with_network_size(n))
                .expect("valid config")
                .run(),
        ),
        _ => Piece::Guess(
            GuessSim::new(
                base_config(scale, seed)
                    .with_network_size(n)
                    .with_query_pong(SelectionPolicy::Mfs),
            )
            .expect("valid config")
            .run(),
        ),
    });
    let (
        Piece::Gnutella {
            fixed,
            notes,
            deepening,
        },
        Piece::Guess(random),
        Piece::Guess(mfs),
    ) = (pieces.remove(0), pieces.remove(0), pieces.remove(0))
    else {
        unreachable!("map preserves item order");
    };

    let mut guess_table = TableBlock::new(
        "guess",
        vec![
            "config",
            "probes/query",
            "unsatisfied",
            "paper probes",
            "paper unsat",
        ],
    );
    guess_table.row(vec![
        Cell::text("GUESS Random (o)"),
        Cell::float(random.probes_per_query(), 1),
        Cell::float(random.unsatisfaction(), 3),
        Cell::uint(99u64),
        Cell::float(0.06, 2),
    ]);
    guess_table.row(vec![
        Cell::text("GUESS QueryPong=MFS (x)"),
        Cell::float(mfs.probes_per_query(), 1),
        Cell::float(mfs.unsatisfaction(), 3),
        Cell::uint(17u64),
        Cell::float(0.08, 2),
    ]);

    Report::new()
        .text(format!(
            "Figure 8 — unsatisfaction vs average query cost (N={n})\n\
             Expected shape: GUESS dominates; iterative deepening sits between GUESS and\n\
             fixed extent; fixed extent needs nearly the whole network for low unsatisfaction.\n\n"
        ))
        .text("Fixed extent (Gnutella):\n")
        .table(fixed)
        .text(notes)
        .text("Iterative deepening (coarse flexible extent):\n")
        .table(deepening)
        .text("\n")
        .text("GUESS (fine flexible extent):\n")
        .table(guess_table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_contains_all_mechanisms() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run(&ctx).render_text();
        assert!(out.contains("Fixed extent"));
        assert!(out.contains("Iterative deepening"));
        assert!(out.contains("GUESS Random"));
        assert!(out.contains("QueryPong=MFS"));
    }
}
