//! Three-way cost/quality tradeoff: gossip vs fixed extent vs GUESS.
//!
//! Extends the Figure 8 family with the third mechanism class the paper
//! leaves implicit: non-forwarding *epidemic* search. A gossip query has
//! no extent knob; its cost/coverage point is set by fanout × round-TTL
//! (plus the pull probability that revives saturating epidemics), so the
//! sweep walks that grid and places each point next to the same
//! fixed-extent flooding curve and GUESS probe budgets as Figure 8 —
//! identical seeds, identical workload — for an apples-to-apples read of
//! where rumor spreading sits between blind flooding and cache-directed
//! probing.
//!
//! Parallelism note: every gossip grid point carries its own derived
//! seed and runs as an independent work unit alongside the fixed-extent
//! curve and the two GUESS runs.

use gnutella::population::Population;
use gnutella::FixedExtentCurve;
use gossip::{Config as GossipConfig, GossipReport, GossipSim};
use guess::engine::GuessSim;
use guess::policy::SelectionPolicy;
use guess::RunReport;
use simkit::rng::{derive_seed, RngStream};
use simkit::time::SimDuration;

use crate::report::{Cell, Report, TableBlock};
use crate::runner::Ctx;
use crate::scale::{base_config, Scale};
use simkit::sim::Runnable;

/// The Figure-8 master seed, reused so the flooding and GUESS baselines
/// reproduce that figure's numbers exactly.
const SEED: u64 = 0xf18;

enum Work {
    Fixed,
    GuessRandom,
    GuessMfs,
    Gossip {
        idx: u64,
        fanout: usize,
        ttl: u32,
        pull: f64,
    },
}

enum Piece {
    Fixed(TableBlock),
    Guess(RunReport),
    Gossip {
        fanout: usize,
        ttl: u32,
        pull: f64,
        report: GossipReport,
    },
}

/// The gossip sweep at this scale: a fanout × round-TTL grid at the
/// default pull probability, then a pull sweep at one mid-grid point.
fn gossip_points(scale: Scale) -> Vec<(usize, u32, f64)> {
    let (fanouts, ttls): (Vec<usize>, Vec<u32>) = match scale {
        Scale::Full => (vec![2, 3, 4], vec![2, 4, 6, 8]),
        Scale::Quick => (vec![2, 3], vec![2, 4, 6]),
    };
    let mut points = Vec::new();
    for &f in &fanouts {
        for &t in &ttls {
            points.push((f, t, 0.3));
        }
    }
    for pull in [0.0, 0.6] {
        points.push((3, 6, pull));
    }
    points
}

fn fixed_piece(scale: Scale, n: usize) -> Piece {
    let pop = Population::generate(n, workload::content::CatalogParams::default(), SEED)
        .expect("valid population");
    let mut rng = RngStream::from_seed(SEED, "fig8");
    let curve = FixedExtentCurve::evaluate(&pop, scale.curve_queries(), &mut rng);
    let mut fixed = TableBlock::new("fixed_extent", vec!["extent (probes)", "unsatisfied"]);
    let extents: Vec<usize> = [1, 2, 5, 10, 17, 50, 99, 200, 540, 1000]
        .iter()
        .copied()
        .filter(|&e| e <= n)
        .collect();
    for &e in &extents {
        fixed.row(vec![
            Cell::size(e),
            Cell::float(curve.unsatisfaction_at(e), 3),
        ]);
    }
    Piece::Fixed(fixed)
}

fn gossip_piece(scale: Scale, n: usize, idx: u64, fanout: usize, ttl: u32, pull: f64) -> Piece {
    let cfg = GossipConfig::default()
        .with_network_size(n)
        .with_fanout(fanout)
        .with_round_ttl(ttl)
        .with_pull_probability(pull)
        .with_duration(scale.duration())
        .with_warmup(scale.warmup())
        .with_seed(derive_seed(SEED, "gossip-tradeoff", idx));
    let report = GossipSim::new(cfg).expect("valid gossip config").run();
    Piece::Gossip {
        fanout,
        ttl,
        pull,
        report,
    }
}

/// Runs the three-way tradeoff study.
#[must_use]
pub fn run(ctx: &Ctx) -> Report {
    let scale = ctx.scale();
    let n = match scale {
        Scale::Full => 1000,
        Scale::Quick => 300,
    };
    let mut work = vec![Work::Fixed, Work::GuessRandom, Work::GuessMfs];
    for (idx, (fanout, ttl, pull)) in gossip_points(scale).into_iter().enumerate() {
        work.push(Work::Gossip {
            idx: idx as u64,
            fanout,
            ttl,
            pull,
        });
    }
    let pieces = ctx.map(work, |w| match w {
        Work::Fixed => fixed_piece(scale, n),
        Work::GuessRandom => Piece::Guess(
            GuessSim::new(base_config(scale, SEED).with_network_size(n))
                .expect("valid config")
                .run(),
        ),
        Work::GuessMfs => Piece::Guess(
            GuessSim::new(
                base_config(scale, SEED)
                    .with_network_size(n)
                    .with_query_pong(SelectionPolicy::Mfs),
            )
            .expect("valid config")
            .run(),
        ),
        Work::Gossip {
            idx,
            fanout,
            ttl,
            pull,
        } => gossip_piece(scale, n, idx, fanout, ttl, pull),
    });

    let mut fixed_table = None;
    let mut guess_reports = Vec::new();
    let mut gossip_table = TableBlock::new(
        "gossip",
        vec![
            "fanout",
            "round ttl",
            "pull p",
            "msgs/query",
            "unsatisfied",
            "peers reached",
            "response s",
            "dedup frac",
        ],
    );
    for piece in pieces {
        match piece {
            Piece::Fixed(t) => fixed_table = Some(t),
            Piece::Guess(r) => guess_reports.push(r),
            Piece::Gossip {
                fanout,
                ttl,
                pull,
                report,
            } => {
                gossip_table.row(vec![
                    Cell::size(fanout),
                    Cell::uint(u64::from(ttl)),
                    Cell::float(pull, 1),
                    Cell::float(report.messages_per_query(), 1),
                    Cell::float(report.unsatisfaction(), 3),
                    Cell::float(report.peers_reached.mean(), 1),
                    Cell::float(report.mean_response_secs(), 2),
                    Cell::float(report.dedup_fraction(), 3),
                ]);
            }
        }
    }
    let fixed_table = fixed_table.expect("map preserves item order");
    let (random, mfs) = (&guess_reports[0], &guess_reports[1]);

    let mut guess_table = TableBlock::new("guess", vec!["config", "probes/query", "unsatisfied"]);
    guess_table.row(vec![
        Cell::text("GUESS Random"),
        Cell::float(random.probes_per_query(), 1),
        Cell::float(random.unsatisfaction(), 3),
    ]);
    guess_table.row(vec![
        Cell::text("GUESS QueryPong=MFS"),
        Cell::float(mfs.probes_per_query(), 1),
        Cell::float(mfs.unsatisfaction(), 3),
    ]);

    let round_secs = GossipConfig::default().round_interval.as_secs();
    Report::new()
        .text(format!(
            "Three-way tradeoff — unsatisfaction vs average query cost (N={n})\n\
             Gossip (epidemic push/pull) swept over fanout x round-TTL, next to the\n\
             Figure-8 fixed-extent flooding curve and GUESS probe budgets (same seeds).\n\
             Expected shape: gossip tracks the flooding curve's cost/coverage coupling\n\
             (an epidemic is a randomized flood) but buys latency with rounds\n\
             ({round_secs:.1}s each); GUESS still dominates on cost at equal satisfaction.\n\n"
        ))
        .text("Gossip (epidemic search):\n")
        .table(gossip_table)
        .text("\n")
        .text("Fixed extent (flooding baseline, identical to Figure 8):\n")
        .table(fixed_table)
        .text("\n")
        .text("GUESS (fine flexible extent, identical to Figure 8):\n")
        .table(guess_table)
}

/// The traced gossip configuration used by `repro --trace --engine
/// gossip`: zero warm-up so the report covers every query in the trace,
/// and the kernel sample tick on so the trace carries live-peer
/// snapshots.
#[must_use]
pub fn traced_config(scale: Scale, seed: u64) -> GossipConfig {
    let n = match scale {
        Scale::Full => 1000,
        Scale::Quick => 300,
    };
    GossipConfig::default()
        .with_network_size(n)
        .with_duration(scale.duration())
        .with_warmup(SimDuration::ZERO)
        .with_sample_interval(Some(SimDuration::from_secs(60.0)))
        .with_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_contains_all_three_mechanisms() {
        let ctx = Ctx::new(Scale::Quick, 2);
        let out = run(&ctx).render_text();
        assert!(out.contains("Gossip (epidemic search)"));
        assert!(out.contains("Fixed extent"));
        assert!(out.contains("GUESS Random"));
        assert!(out.contains("QueryPong=MFS"));
    }

    #[test]
    fn grid_covers_pull_sweep_and_has_unique_seeds() {
        let points = gossip_points(Scale::Full);
        assert!(points.iter().any(|&(_, _, p)| p == 0.0));
        assert!(points.iter().any(|&(_, _, p)| p == 0.6));
        let mut seeds: Vec<u64> = (0..points.len() as u64)
            .map(|i| derive_seed(SEED, "gossip-tradeoff", i))
            .collect();
        let before = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), before);
    }

    #[test]
    fn traced_configs_validate() {
        assert!(traced_config(Scale::Full, 1).validate().is_ok());
        assert!(traced_config(Scale::Quick, 1).validate().is_ok());
    }
}
