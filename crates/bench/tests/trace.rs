//! Trace-layer reconciliation: the structured trace of a run must agree
//! with the aggregates in the run's own report, and turning tracing on
//! must not change the simulation itself.

use gnutella::dynamic::{GnutellaConfig, GnutellaSim};
use gossip::{Config as GossipConfig, GossipSim};
use guess::{Config, GuessSim};
use guess_bench::tracefile::JsonlSink;
use simkit::sim::Runnable;
use simkit::time::{SimDuration, SimTime};
use simkit::trace::{CountingSink, RecordingSink, TraceRecord};

fn guess_cfg(seed: u64) -> Config {
    let mut cfg = Config::small_test(seed);
    cfg.run.duration = SimDuration::from_secs(400.0);
    cfg.run.warmup = SimDuration::from_secs(100.0);
    cfg
}

#[test]
fn tracing_does_not_change_the_guess_run() {
    let untraced = GuessSim::new(guess_cfg(5)).unwrap().run();
    let (traced, _) = GuessSim::new(guess_cfg(5))
        .unwrap()
        .run_traced(CountingSink::new());
    assert_eq!(untraced, traced, "attaching a sink changed the simulation");
}

#[test]
fn guess_trace_reconciles_with_run_report() {
    let cfg = guess_cfg(6);
    let warmup_end = SimTime::ZERO + cfg.run.warmup;
    let (report, sink) = GuessSim::new(cfg).unwrap().run_traced(RecordingSink::new());

    // The report only covers post-warm-up queries; filter the trace the
    // same way before comparing.
    let mut ends = 0u64;
    let mut unsatisfied = 0u64;
    let mut probes = 0u64;
    for (at, rec) in sink.select(|r| matches!(r, TraceRecord::QueryEnd { .. })) {
        if *at < warmup_end {
            continue;
        }
        let TraceRecord::QueryEnd {
            satisfied,
            probes: p,
            ..
        } = rec
        else {
            unreachable!()
        };
        ends += 1;
        if !satisfied {
            unsatisfied += 1;
        }
        probes += u64::from(*p);
    }
    assert!(ends > 0, "no queries ended after warm-up");
    assert_eq!(report.queries, ends);
    assert_eq!(report.unsatisfied, unsatisfied);
    assert_eq!(report.total_probes.sum().round() as u64, probes);
    assert_eq!(report.total_probes.count(), ends);

    // Whole-run totals (births, deaths, pings) are not warm-up gated.
    let joins = sink
        .select(|r| matches!(r, TraceRecord::PeerJoin { .. }))
        .count() as u64;
    let deaths = sink
        .select(|r| matches!(r, TraceRecord::PeerDeath { .. }))
        .count() as u64;
    assert_eq!(report.counters.get("births"), joins);
    assert_eq!(report.counters.get("deaths"), deaths);
}

#[test]
fn guess_query_probe_records_match_query_end_sums() {
    // Every query probe record belongs to exactly one query, so the sum
    // of the per-query `probes` fields equals the probe record count —
    // over the whole run, warm-up included.
    let (_, sink) = GuessSim::new(guess_cfg(7))
        .unwrap()
        .run_traced(CountingSink::new());
    assert!(sink.query_probes > 0);
    assert_eq!(sink.query_probes, sink.query_end_probes);
    assert_eq!(
        sink.query_starts, sink.query_ends,
        "atomic queries always end"
    );
}

#[test]
fn gnutella_trace_reconciles_with_run_report() {
    let cfg = GnutellaConfig::small_test(9);
    let warmup_end = SimTime::ZERO + cfg.warmup;
    let (report, sink) = GnutellaSim::new(cfg)
        .unwrap()
        .run_traced(RecordingSink::new());
    let mut ends = 0u64;
    let mut messages = 0u64;
    for (at, rec) in sink.select(|r| matches!(r, TraceRecord::QueryEnd { .. })) {
        if *at < warmup_end {
            continue;
        }
        let TraceRecord::QueryEnd { probes, .. } = rec else {
            unreachable!()
        };
        ends += 1;
        messages += u64::from(*probes);
    }
    assert!(ends > 0);
    assert_eq!(report.queries, ends);
    assert_eq!(report.messages.sum().round() as u64, messages);
    // Flood probe records cover every transmission, warm-up included.
    let floods = sink
        .select(|r| matches!(r, TraceRecord::Probe { .. }))
        .count() as u64;
    let all_query_probes: u64 = sink
        .select(|r| matches!(r, TraceRecord::QueryEnd { .. }))
        .map(|(_, r)| {
            let TraceRecord::QueryEnd { probes, .. } = r else {
                unreachable!()
            };
            u64::from(*probes)
        })
        .sum();
    assert_eq!(floods, all_query_probes);
}

#[test]
fn gossip_trace_reconciles_with_run_report() {
    // Zero warm-up: the report then covers every query, so the trace
    // totals must match exactly — including the horizon flush that ends
    // rumors still in flight.
    let cfg = GossipConfig::small_test(10).with_warmup(SimDuration::ZERO);
    let (report, sink) = GossipSim::new(cfg).unwrap().run_traced(CountingSink::new());
    assert!(report.queries > 0);
    assert_eq!(report.queries, sink.query_starts);
    assert_eq!(report.queries, sink.query_ends, "every rumor settles once");
    assert_eq!(report.unsatisfied, sink.query_ends - sink.satisfied);
    let messages = report.messages.sum().round() as u64;
    assert_eq!(messages, sink.push_probes + sink.pull_probes);
    assert_eq!(messages, sink.query_end_probes);
    assert_eq!(report.counters.get("births"), sink.joins);
    assert_eq!(report.counters.get("deaths"), sink.deaths);
    // Gossip emits only push/pull probes — no flood, query, or ping kinds.
    assert_eq!(sink.flood_probes + sink.query_probes + sink.ping_probes, 0);
}

#[test]
fn gossip_jsonl_trace_carries_push_and_pull_kinds() {
    let cfg = GossipConfig::small_test(11)
        .with_warmup(SimDuration::ZERO)
        .with_duration(SimDuration::from_secs(150.0));
    let sink = JsonlSink::new(Vec::new());
    let (_, sink) = GossipSim::new(cfg).unwrap().run_traced(sink);
    let (buf, counts, io_error) = sink.finish();
    assert!(io_error.is_none());
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count() as u64, counts.total());
    assert!(text.contains("\"kind\": \"push\""));
    assert!(text.contains("\"kind\": \"pull\""));
}

#[test]
fn jsonl_sink_writes_one_wellformed_line_per_record() {
    let mut cfg = guess_cfg(8);
    cfg.run.duration = SimDuration::from_secs(150.0);
    cfg.run.warmup = SimDuration::from_secs(0.0);
    let sink = JsonlSink::new(Vec::new());
    let (_, sink) = GuessSim::new(cfg).unwrap().run_traced(sink);
    let lines_written = sink.lines;
    let (buf, counts, io_error) = sink.finish();
    assert!(io_error.is_none());
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, lines_written);
    assert_eq!(lines.len() as u64, counts.total());
    assert!(!lines.is_empty());
    for l in &lines {
        assert!(
            l.starts_with("{\"t\": "),
            "line does not open a JSON object: {l}"
        );
        assert!(l.ends_with('}'), "line does not close its object: {l}");
        assert!(l.contains("\"type\": \""), "line has no type field: {l}");
        assert!(!l.contains('\n'));
    }
}
