//! Parallel-kernel identity gates.
//!
//! Two contracts protect the goldens and the thread-scaling bench:
//!
//! 1. `lanes = 1` routes every engine's `run_lanes` to the ordinary
//!    serial run — byte-identical reports, so the 30 quick goldens and
//!    7 scenario goldens are unchanged by construction.
//! 2. With `lanes > 1`, the report is a pure function of
//!    `(seed, lanes)`: any worker-thread count produces the same
//!    bytes. The quick-scale variant of this check runs in release
//!    via `scripts/verify.sh` (ignored here — debug-mode quick runs
//!    take minutes).

use guess::Runnable;
use guess_bench::scale::{base_config, Scale};

/// Seeds for the lanes=1 property check — arbitrary but fixed.
const SEEDS: [u64; 3] = [0x11, 0x22, 0x33];

#[test]
fn guess_lanes_one_is_byte_identical_to_serial() {
    for seed in SEEDS {
        let mut cfg = guess::config::Config::small_test(seed);
        cfg.run.duration = simkit::time::SimDuration::from_secs(200.0);
        cfg.run.warmup = simkit::time::SimDuration::from_secs(50.0);
        let serial = cfg.clone().build().expect("valid config").run();
        let laned = guess::run_lanes(cfg, 4).expect("valid config");
        assert_eq!(serial, laned, "guess seed {seed}");
    }
}

#[test]
fn gossip_lanes_one_is_byte_identical_to_serial() {
    for seed in SEEDS {
        let cfg = gossip::Config::small_test(seed);
        let serial = cfg.clone().build().expect("valid config").run();
        let laned = gossip::run_lanes(cfg, 4).expect("valid config");
        assert_eq!(serial, laned, "gossip seed {seed}");
    }
}

#[test]
fn gnutella_run_lanes_is_the_serial_engine() {
    for seed in SEEDS {
        let cfg = gnutella::GnutellaConfig::default()
            .with_network_size(150)
            .with_duration(simkit::time::SimDuration::from_secs(200.0))
            .with_warmup(simkit::time::SimDuration::from_secs(50.0))
            .with_seed(seed);
        let serial = cfg.clone().build().expect("valid config").run();
        let laned = gnutella::run_lanes(cfg, 4).expect("valid config");
        assert_eq!(serial, laned, "gnutella seed {seed}");
    }
}

#[test]
fn small_scale_lane_runs_are_thread_count_invariant() {
    let mut gcfg = guess::config::Config::small_test(7);
    gcfg.run.duration = simkit::time::SimDuration::from_secs(200.0);
    gcfg.run.warmup = simkit::time::SimDuration::from_secs(50.0);
    gcfg.run.lanes = 4;
    let g1 = guess::run_lanes(gcfg.clone(), 1).expect("valid config");
    let g4 = guess::run_lanes(gcfg, 4).expect("valid config");
    assert_eq!(g1, g4, "guess lane run must not depend on threads");

    let scfg = gossip::Config::small_test(7).with_lanes(4);
    let s1 = gossip::run_lanes(scfg.clone(), 1).expect("valid config");
    let s4 = gossip::run_lanes(scfg, 4).expect("valid config");
    assert_eq!(s1, s4, "gossip lane run must not depend on threads");
}

/// The quick-scale cross-thread gate over the bench configs (the same
/// configs the golden registry and BENCH rows run): `--threads 1` and
/// `--threads 4` must produce byte-identical reports at the bench lane
/// count. Release-only (run by `scripts/verify.sh`).
#[test]
#[ignore = "quick-scale; release-run by scripts/verify.sh"]
fn quick_scale_lane_runs_are_thread_count_invariant() {
    let mut gcfg = base_config(Scale::Quick, 0xBE7C);
    gcfg.run.lanes = guess_bench::bench::BENCH_LANES;
    let g1 = guess::run_lanes(gcfg.clone(), 1).expect("valid config");
    let g4 = guess::run_lanes(gcfg, 4).expect("valid config");
    assert_eq!(g1, g4, "guess quick lane run must not depend on threads");

    let scfg = gossip::Config::default()
        .with_seed(0xBE7C)
        .with_duration(Scale::Quick.duration())
        .with_warmup(Scale::Quick.warmup())
        .with_lanes(guess_bench::bench::BENCH_LANES);
    let s1 = gossip::run_lanes(scfg.clone(), 1).expect("valid config");
    let s4 = gossip::run_lanes(scfg, 4).expect("valid config");
    assert_eq!(s1, s4, "gossip quick lane run must not depend on threads");
}
