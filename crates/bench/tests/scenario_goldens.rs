//! Quick-scale golden guard for the scenario catalog: every scenario's
//! rendered quick report must stay byte-identical to the committed
//! manifest, mirroring `quick_goldens.rs` for the experiments.
//!
//! The scenario manifest is separate from the experiment manifest on
//! purpose: `quick_goldens.rs` asserts its entry count equals the
//! experiment registry's, and scenarios are a second catalog with their
//! own registry.
//!
//! The catalog takes a minute or two at quick scale, so the heavy tests
//! are `#[ignore]`d for plain `cargo test`; `scripts/verify.sh` runs
//! them explicitly. To refresh after an intentional output change:
//!
//! ```text
//! cargo test -p guess-bench --test scenario_goldens -- --ignored --nocapture
//! ```
//!
//! and copy the `name  hash` lines into
//! `tests/golden/scenarios.fnv1a.txt`.

use guess_bench::runner::Ctx;
use guess_bench::scale::Scale;
use guess_bench::scenarios;

const MANIFEST: &str = include_str!("golden/scenarios.fnv1a.txt");

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn manifest_entries() -> Vec<(&'static str, u64)> {
    MANIFEST
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let name = parts.next().expect("manifest line has a name");
            let hash = parts.next().expect("manifest line has a hash");
            let hash = u64::from_str_radix(hash.trim_start_matches("0x"), 16)
                .expect("manifest hash parses as hex");
            (name, hash)
        })
        .collect()
}

#[test]
#[ignore = "runs the quick scenario catalog (~minutes); invoked by scripts/verify.sh"]
fn quick_scenario_reports_match_committed_hashes() {
    let entries = manifest_entries();
    let registry = scenarios::all();
    assert_eq!(
        entries.len(),
        registry.len(),
        "manifest and catalog disagree on the scenario count; \
         refresh tests/golden/scenarios.fnv1a.txt"
    );
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let ctx = Ctx::new(Scale::Quick, jobs);
    let mut mismatches = Vec::new();
    for (name, expected) in entries {
        let s = scenarios::find(name).unwrap_or_else(|| {
            panic!("manifest names unknown scenario '{name}'; refresh the manifest")
        });
        let got = fnv1a(&(s.run)(&ctx).render_text());
        println!("{name}  0x{got:016x}");
        if got != expected {
            mismatches.push(format!(
                "{name}: expected 0x{expected:016x}, got 0x{got:016x}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "scenario reports drifted from the committed goldens (RNG-stream \
         perturbation, or an intentional change needing a manifest refresh):\n{}",
        mismatches.join("\n")
    );
}

#[test]
#[ignore = "runs one scenario twice (~seconds at quick scale); invoked by scripts/verify.sh"]
fn scenario_reports_are_identical_across_jobs_levels() {
    // The cheapest catalog entry, run under two different concurrency
    // budgets: both runs of the pair carry their own seeds, so the
    // rendered report must not move by a byte.
    let s = scenarios::find("param-flip").expect("catalog entry exists");
    let one = (s.run)(&Ctx::new(Scale::Quick, 1)).render_text();
    let four = (s.run)(&Ctx::new(Scale::Quick, 4)).render_text();
    assert_eq!(one, four, "scenario report drifted between --jobs levels");
}

#[test]
fn manifest_is_wellformed_and_covers_the_catalog() {
    let entries = manifest_entries();
    assert!(!entries.is_empty());
    let mut names: Vec<&str> = entries.iter().map(|(n, _)| *n).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), entries.len(), "duplicate manifest entries");
    for s in scenarios::all() {
        assert!(
            entries.iter().any(|(n, _)| *n == s.name),
            "scenario '{}' missing from tests/golden/scenarios.fnv1a.txt",
            s.name
        );
    }
}
