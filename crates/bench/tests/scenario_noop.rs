//! Property test: an *empty* scenario timeline is byte-identical to a
//! plain `run()` on every engine, and the equality holds at any `--jobs`
//! level (the paired runs execute as independent [`Ctx::map`] work
//! units, so scheduling must never leak into the reports).
//!
//! This is the golden-safety contract of `Kernel::run_scenario`: with no
//! control events scheduled, the scenario loop pops the exact same event
//! sequence as the plain loop.

use gnutella::dynamic::GnutellaConfig;
use gossip::Config as GossipConfig;
use guess::config::Config as GuessConfig;
use guess::engine::GuessSim;
use guess_bench::runner::Ctx;
use guess_bench::scale::Scale;
use simkit::scenario::Scenario;
use simkit::sim::Runnable;

#[test]
fn empty_timeline_matches_plain_run_at_any_jobs_level() {
    for jobs in [1, 4] {
        let ctx = Ctx::new(Scale::Quick, jobs);

        let guess = ctx.map(vec![false, true], |intervened| {
            let sim = GuessSim::new(GuessConfig::small_test(0xA11)).expect("valid config");
            if intervened {
                format!("{:?}", sim.run_scenario(&Scenario::new()).expect("empty"))
            } else {
                format!("{:?}", sim.run())
            }
        });
        assert_eq!(guess[0], guess[1], "guess drifted at jobs={jobs}");

        let gnutella = ctx.map(vec![false, true], |intervened| {
            let sim = GnutellaConfig::small_test(0xA12)
                .build()
                .expect("valid config");
            if intervened {
                format!("{:?}", sim.run_scenario(&Scenario::new()).expect("empty"))
            } else {
                format!("{:?}", sim.run())
            }
        });
        assert_eq!(gnutella[0], gnutella[1], "gnutella drifted at jobs={jobs}");

        let gossip = ctx.map(vec![false, true], |intervened| {
            let sim = GossipConfig::small_test(0xA13)
                .build()
                .expect("valid config");
            if intervened {
                format!("{:?}", sim.run_scenario(&Scenario::new()).expect("empty"))
            } else {
                format!("{:?}", sim.run())
            }
        });
        assert_eq!(gossip[0], gossip[1], "gossip drifted at jobs={jobs}");
    }
}
