//! Quick-scale golden guard: every experiment's rendered quick report
//! must stay byte-identical to the committed manifest.
//!
//! Each experiment seeds its own RNG streams, so adding an engine or an
//! experiment must never perturb existing reports. The manifest pins an
//! FNV-1a-64 hash of `render_text()` per experiment; a mismatch means a
//! change leaked into somebody else's RNG stream (or an intentional
//! output change that needs a manifest refresh — see below).
//!
//! The full quick suite takes a minute or two, so the test is `#[ignore]`d
//! for plain `cargo test`; `scripts/verify.sh` runs it explicitly with
//! `cargo test -q --release -p guess-bench --test quick_goldens -- --ignored`.
//!
//! To refresh after an intentional output change, print the new manifest:
//!
//! ```text
//! cargo test -p guess-bench --test quick_goldens -- --ignored --nocapture
//! ```
//!
//! and copy the `name  hash` lines it echoes into
//! `tests/golden/quick.fnv1a.txt`.

use guess_bench::experiments;
use guess_bench::runner::Ctx;
use guess_bench::scale::Scale;

const MANIFEST: &str = include_str!("golden/quick.fnv1a.txt");

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn manifest_entries() -> Vec<(&'static str, u64)> {
    MANIFEST
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut parts = l.split_whitespace();
            let name = parts.next().expect("manifest line has a name");
            let hash = parts.next().expect("manifest line has a hash");
            let hash = u64::from_str_radix(hash.trim_start_matches("0x"), 16)
                .expect("manifest hash parses as hex");
            (name, hash)
        })
        .collect()
}

#[test]
#[ignore = "runs the full quick suite (~minutes); invoked by scripts/verify.sh"]
fn quick_reports_match_committed_hashes() {
    let entries = manifest_entries();
    let registry = experiments::all();
    assert_eq!(
        entries.len(),
        registry.len(),
        "manifest and registry disagree on the experiment count; \
         refresh tests/golden/quick.fnv1a.txt"
    );
    let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let ctx = Ctx::new(Scale::Quick, jobs);
    let mut mismatches = Vec::new();
    for (name, expected) in entries {
        let e = experiments::find(name).unwrap_or_else(|| {
            panic!("manifest names unknown experiment '{name}'; refresh the manifest")
        });
        let got = fnv1a(&(e.run)(&ctx).render_text());
        println!("{name}  0x{got:016x}");
        if got != expected {
            mismatches.push(format!(
                "{name}: expected 0x{expected:016x}, got 0x{got:016x}"
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "quick reports drifted from the committed goldens (RNG-stream \
         perturbation, or an intentional change needing a manifest refresh):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn manifest_is_wellformed_and_covers_the_registry() {
    let entries = manifest_entries();
    assert!(!entries.is_empty());
    let mut names: Vec<&str> = entries.iter().map(|(n, _)| *n).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), entries.len(), "duplicate manifest entries");
    for e in experiments::all() {
        assert!(
            entries.iter().any(|(n, _)| *n == e.name),
            "experiment '{}' missing from tests/golden/quick.fnv1a.txt",
            e.name
        );
    }
}
