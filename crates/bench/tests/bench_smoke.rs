//! Bench-harness smoke gate: the quick workload matrix must run to
//! completion, report non-zero throughput, and do so inside a generous
//! wall-clock ceiling. Run in release by `scripts/verify.sh` (the gate
//! is meaningless in debug, so it is `#[ignore]`d for plain
//! `cargo test`).

use std::time::{Duration, Instant};

use guess_bench::bench::{build_report, run_workloads};

/// Far above any plausible release-mode quick run (a few seconds on a
/// laptop); trips only on a catastrophic perf or hang regression. The
/// finer ≤2× check against the committed BENCH baseline lives in
/// `scripts/verify.sh`.
const QUICK_CEILING: Duration = Duration::from_secs(120);

#[test]
#[ignore = "release-mode perf smoke; invoked by scripts/verify.sh"]
fn quick_bench_completes_with_throughput() {
    let started = Instant::now();
    let results = run_workloads(true, 1, &[], &[1]).expect("empty filter is always valid");
    let elapsed = started.elapsed();
    assert_eq!(results.len(), 3, "one quick workload per engine");
    for r in &results {
        assert!(r.events > 0, "{} processed no events", r.name);
        assert!(r.min_secs > 0.0, "{} reported zero wall time", r.name);
        assert!(
            r.events_per_sec() > 0.0,
            "{} reported zero throughput",
            r.name
        );
    }
    assert!(
        elapsed < QUICK_CEILING,
        "quick bench took {elapsed:?} (ceiling {QUICK_CEILING:?})"
    );
    // The JSON these results render to is the BENCH_<n>.json schema the
    // verify gate parses: every workload must appear as a table row.
    let json = build_report(&results).render_json("bench", "smoke", "Quick");
    for r in &results {
        assert!(json.contains(&format!("\"{}\"", r.name)));
    }
}

#[test]
#[ignore = "release-mode perf smoke; invoked by scripts/verify.sh"]
fn only_filter_restricts_the_matrix() {
    let only = vec!["gnutella-quick".to_string()];
    let results = run_workloads(true, 1, &only, &[1]).expect("gnutella-quick is a known workload");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].name, "gnutella-quick");
    assert!(results[0].events > 0);
}

#[test]
fn only_filter_rejects_unknown_names() {
    let only = vec!["warp-drive".to_string()];
    let err = run_workloads(true, 1, &only, &[1]).unwrap_err();
    assert!(err.contains("unknown workload 'warp-drive'"), "{err}");
    assert!(
        err.contains("gnutella-quick"),
        "error lists valid names: {err}"
    );
}
