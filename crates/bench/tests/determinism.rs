//! Cross-run and cross-`--jobs` determinism.
//!
//! The parallel runner's whole contract is that results depend only on
//! the seeds, never on scheduling: the same seed must reproduce the same
//! [`guess::RunReport`] bit-for-bit, and a report rendered at `--jobs 4`
//! must equal the one rendered at `--jobs 1`.

use guess::{Config, GuessSim};
use guess_bench::experiments;
use guess_bench::runner::Ctx;
use guess_bench::scale::Scale;

#[test]
fn same_seed_means_identical_run_report() {
    let run = || GuessSim::new(Config::small_test(42)).expect("valid config").run();
    assert_eq!(run(), run(), "two runs from one seed diverged");
}

#[test]
fn different_seeds_mean_different_reports() {
    // Guards against the equality above passing vacuously (e.g. a
    // constant report).
    let run = |seed: u64| GuessSim::new(Config::small_test(seed)).expect("valid config").run();
    assert_ne!(run(1), run(2), "seed is not reaching the simulation");
}

#[test]
fn rendered_reports_are_identical_at_any_jobs_level() {
    for name in ["fig6", "fig8"] {
        let e = experiments::find(name).expect("known experiment");
        let serial = (e.run)(&Ctx::new(Scale::Quick, 1)).render_text();
        let parallel = (e.run)(&Ctx::new(Scale::Quick, 4)).render_text();
        assert_eq!(serial, parallel, "{name} differs between --jobs 1 and --jobs 4");
    }
}
