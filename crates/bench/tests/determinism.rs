//! Cross-run and cross-`--jobs` determinism.
//!
//! The parallel runner's whole contract is that results depend only on
//! the seeds, never on scheduling: the same seed must reproduce the same
//! [`guess::RunReport`] bit-for-bit, and a report rendered at `--jobs 4`
//! must equal the one rendered at `--jobs 1`.

use gnutella::dynamic::GnutellaConfig;
use gossip::{Config as GossipConfig, GossipSim};
use guess::{Config, GuessSim};
use guess_bench::experiments;
use guess_bench::runner::Ctx;
use guess_bench::scale::Scale;
use simkit::sim::Runnable;

#[test]
fn same_seed_means_identical_run_report() {
    let run = || {
        GuessSim::new(Config::small_test(42))
            .expect("valid config")
            .run()
    };
    assert_eq!(run(), run(), "two runs from one seed diverged");
}

#[test]
fn same_seed_means_identical_gnutella_report() {
    // lifespan 0.2: enough churn to exercise repairs
    let cfg = |seed: u64| GnutellaConfig::small_test(seed).with_lifespan_multiplier(0.2);
    let run = |seed: u64| cfg(seed).build().expect("valid config").run();
    assert_eq!(
        run(42),
        run(42),
        "two dynamic Gnutella runs from one seed diverged"
    );
    assert_ne!(
        run(1),
        run(2),
        "seed is not reaching the Gnutella simulation"
    );
}

#[test]
fn same_seed_means_identical_gossip_report() {
    let run = |seed: u64| {
        GossipSim::new(GossipConfig::small_test(seed).with_lifespan_multiplier(0.2))
            .expect("valid config")
            .run()
    };
    assert_eq!(run(42), run(42), "two gossip runs from one seed diverged");
    assert_ne!(run(1), run(2), "seed is not reaching the gossip simulation");
}

#[test]
fn different_seeds_mean_different_reports() {
    // Guards against the equality above passing vacuously (e.g. a
    // constant report).
    let run = |seed: u64| {
        GuessSim::new(Config::small_test(seed))
            .expect("valid config")
            .run()
    };
    assert_ne!(run(1), run(2), "seed is not reaching the simulation");
}

#[test]
fn rendered_reports_are_identical_at_any_jobs_level() {
    for name in ["fig6", "fig8", "gossip"] {
        let e = experiments::find(name).expect("known experiment");
        let serial = (e.run)(&Ctx::new(Scale::Quick, 1)).render_text();
        let parallel = (e.run)(&Ctx::new(Scale::Quick, 4)).render_text();
        assert_eq!(
            serial, parallel,
            "{name} differs between --jobs 1 and --jobs 4"
        );
    }
}
