//! Property-style tests for the workload models.
//!
//! Driven by `RngStream` instead of proptest (offline build environment):
//! each test runs many randomized cases from a fixed seed.

use simkit::rng::RngStream;
use workload::content::{Catalog, CatalogParams, ItemId, PeerLibrary};
use workload::files::FileCountModel;
use workload::lifetime::LifetimeModel;
use workload::query::{QueryModel, QueryWorkload};

/// Libraries never exceed the requested file count, and every item is
/// inside the catalog.
#[test]
fn library_bounds() {
    let mut gen = RngStream::from_seed(0x41, "cases");
    let catalog = Catalog::new(CatalogParams {
        items: 2000,
        ..CatalogParams::default()
    })
    .unwrap();
    for _ in 0..30 {
        let files = gen.below(500) as u32;
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let lib = catalog.build_library(files, &mut rng);
        assert!(lib.len() <= files as usize);
        for item in lib.iter() {
            assert!((item.0 as usize) < catalog.item_count());
        }
    }
}

/// Library membership is consistent with the iterator view.
#[test]
fn library_contains_matches_iter() {
    let mut gen = RngStream::from_seed(0x42, "cases");
    for _ in 0..40 {
        let n = gen.below(200);
        let ids: Vec<u32> = (0..n).map(|_| gen.below(5000) as u32).collect();
        let lib: PeerLibrary = ids.iter().map(|&i| ItemId(i)).collect();
        for &i in &ids {
            assert!(lib.contains(ItemId(i)));
        }
        let held: Vec<ItemId> = lib.iter().collect();
        assert_eq!(held.len(), lib.len());
        for item in held {
            assert!(ids.contains(&item.0));
        }
    }
}

/// The query model answers exactly when the library holds the item.
#[test]
fn answers_iff_contains() {
    let mut gen = RngStream::from_seed(0x43, "cases");
    let catalog = Catalog::new(CatalogParams {
        items: 3000,
        ..CatalogParams::default()
    })
    .unwrap();
    let model = QueryModel::new(catalog);
    for _ in 0..30 {
        let files = 1 + gen.below(299) as u32;
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        let lib = model.catalog().build_library(files, &mut rng);
        for _ in 0..50 {
            let t = model.sample_target(&mut rng);
            assert_eq!(model.answers(&lib, t), lib.contains(t.item));
        }
    }
}

/// Lifetimes are at least one second and scale linearly with the
/// multiplier (same seed, same draws).
#[test]
fn lifetimes_scale_with_multiplier() {
    let mut gen = RngStream::from_seed(0x44, "cases");
    for _ in 0..30 {
        let seed = gen.next_u64();
        let mult = gen.uniform(0.05, 5.0);
        let base = LifetimeModel::saroiu_like(1.0);
        let scaled = LifetimeModel::saroiu_like(mult);
        let mut r1 = RngStream::from_seed(seed, "prop");
        let mut r2 = RngStream::from_seed(seed, "prop");
        for _ in 0..50 {
            let a = base.sample_lifetime(&mut r1).as_secs();
            let b = scaled.sample_lifetime(&mut r2).as_secs();
            assert!(b >= 1.0);
            // Clamping at 1s breaks exact proportionality only below it.
            if a * mult >= 1.0 {
                assert!((b - a * mult).abs() < 1e-9 * (1.0 + b));
            }
        }
    }
}

/// File counts respect the configured bounds.
#[test]
fn file_counts_bounded() {
    let mut gen = RngStream::from_seed(0x45, "cases");
    for _ in 0..30 {
        let frac = gen.uniform(0.0, 0.9);
        let model = FileCountModel::new(frac, 2.0, 100.0, 1.0).unwrap();
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        for _ in 0..200 {
            let c = model.sample_file_count(&mut rng);
            assert!(c == 0 || (2..=100).contains(&c));
        }
    }
}

/// Burst sizes stay in the protocol range and gaps are non-negative, for
/// any positive rate.
#[test]
fn workload_outputs_sane() {
    let mut gen = RngStream::from_seed(0x46, "cases");
    for _ in 0..30 {
        let rate = gen.uniform(1e-5, 1.0);
        let wl = QueryWorkload::with_rate(rate).unwrap();
        let mut rng = RngStream::from_seed(gen.next_u64(), "prop");
        for _ in 0..100 {
            assert!((1..=5).contains(&wl.sample_burst_size(&mut rng)));
            assert!(wl.sample_burst_gap(&mut rng).as_secs() >= 0.0);
        }
    }
}
