//! Property-based tests for the workload models.

use proptest::prelude::*;

use simkit::rng::RngStream;
use workload::content::{Catalog, CatalogParams, ItemId, PeerLibrary};
use workload::files::FileCountModel;
use workload::lifetime::LifetimeModel;
use workload::query::{QueryModel, QueryWorkload};

proptest! {
    /// Libraries never exceed the requested file count, and every item is
    /// inside the catalog.
    #[test]
    fn library_bounds(seed in any::<u64>(), files in 0u32..500) {
        let catalog = Catalog::new(CatalogParams { items: 2000, ..CatalogParams::default() }).unwrap();
        let mut rng = RngStream::from_seed(seed, "prop");
        let lib = catalog.build_library(files, &mut rng);
        prop_assert!(lib.len() <= files as usize);
        for item in lib.iter() {
            prop_assert!((item.0 as usize) < catalog.item_count());
        }
    }

    /// Library membership is consistent with the iterator view.
    #[test]
    fn library_contains_matches_iter(ids in prop::collection::vec(0u32..5000, 0..200)) {
        let lib: PeerLibrary = ids.iter().map(|&i| ItemId(i)).collect();
        for &i in &ids {
            prop_assert!(lib.contains(ItemId(i)));
        }
        let held: Vec<ItemId> = lib.iter().collect();
        prop_assert_eq!(held.len(), lib.len());
        for item in held {
            prop_assert!(ids.contains(&item.0));
        }
    }

    /// The query model answers exactly when the library holds the item.
    #[test]
    fn answers_iff_contains(seed in any::<u64>(), files in 1u32..300) {
        let catalog = Catalog::new(CatalogParams { items: 3000, ..CatalogParams::default() }).unwrap();
        let model = QueryModel::new(catalog);
        let mut rng = RngStream::from_seed(seed, "prop");
        let lib = model.catalog().build_library(files, &mut rng);
        for _ in 0..50 {
            let t = model.sample_target(&mut rng);
            prop_assert_eq!(model.answers(&lib, t), lib.contains(t.item));
        }
    }

    /// Lifetimes are at least one second and scale linearly with the
    /// multiplier (same seed, same draws).
    #[test]
    fn lifetimes_scale_with_multiplier(seed in any::<u64>(), mult in 0.05f64..5.0) {
        let base = LifetimeModel::saroiu_like(1.0);
        let scaled = LifetimeModel::saroiu_like(mult);
        let mut r1 = RngStream::from_seed(seed, "prop");
        let mut r2 = RngStream::from_seed(seed, "prop");
        for _ in 0..50 {
            let a = base.sample_lifetime(&mut r1).as_secs();
            let b = scaled.sample_lifetime(&mut r2).as_secs();
            prop_assert!(b >= 1.0);
            // Clamping at 1s breaks exact proportionality only below it.
            if a * mult >= 1.0 {
                prop_assert!((b - a * mult).abs() < 1e-9 * (1.0 + b));
            }
        }
    }

    /// File counts respect the configured bounds.
    #[test]
    fn file_counts_bounded(seed in any::<u64>(), frac in 0.0f64..0.9) {
        let model = FileCountModel::new(frac, 2.0, 100.0, 1.0).unwrap();
        let mut rng = RngStream::from_seed(seed, "prop");
        for _ in 0..200 {
            let c = model.sample_file_count(&mut rng);
            prop_assert!(c == 0 || (2..=100).contains(&c));
        }
    }

    /// Burst sizes stay in the protocol range and gaps are non-negative,
    /// for any positive rate.
    #[test]
    fn workload_outputs_sane(seed in any::<u64>(), rate in 1e-5f64..1.0) {
        let wl = QueryWorkload::with_rate(rate).unwrap();
        let mut rng = RngStream::from_seed(seed, "prop");
        for _ in 0..100 {
            prop_assert!((1..=5).contains(&wl.sample_burst_size(&mut rng)));
            prop_assert!(wl.sample_burst_gap(&mut rng).as_secs() >= 0.0);
        }
    }
}
