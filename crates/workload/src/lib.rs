//! `workload` — churn, content, and query models for P2P search simulation.
//!
//! The ICDCS 2004 GUESS study plugs three measured artifacts into its
//! simulator:
//!
//! 1. a measured Gnutella *session-length* sample (peer lifetimes),
//! 2. a measured per-peer *shared-file-count* distribution,
//! 3. the VLDB 2001 hybrid-P2P *query model* deciding which probes return
//!    results.
//!
//! This crate supplies faithful synthetic stand-ins for all three (see the
//! substitution table in `DESIGN.md`) behind explicit, testable APIs:
//!
//! * [`lifetime::LifetimeModel`] — heavy-tailed session lengths with the
//!   paper's `LifespanMultiplier`;
//! * [`files::FileCountModel`] — free riders plus a Pareto sharing tail;
//! * [`content::Catalog`] / [`content::PeerLibrary`] — a Zipf item universe
//!   and per-peer collections;
//! * [`query::QueryModel`] / [`query::QueryWorkload`] — query targets and
//!   the bursty Poisson arrival process.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod content;
pub mod files;
pub mod lifetime;
pub mod query;

pub use content::{Catalog, CatalogParams, ItemId, PeerLibrary};
pub use files::FileCountModel;
pub use lifetime::LifetimeModel;
pub use query::{QueryModel, QueryTarget, QueryWorkload};
