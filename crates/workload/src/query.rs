//! Query workload: what gets asked for, and how often.
//!
//! Queries arrive in *bursts*: a peer submits between 1 and 5 queries in
//! quick succession, then goes quiet; burst arrivals form a Poisson
//! process tuned so the long-run per-user query rate equals the paper's
//! `QueryRate` (default `9.26e-3` queries/user/second).

use simkit::dist::{ContinuousDist, Exponential};
use simkit::rng::RngStream;
use simkit::time::SimDuration;

use crate::content::{Catalog, ItemId, LibraryArena, LibraryHandle, PeerLibrary};

/// The paper's default per-user query rate, in queries per second.
pub const DEFAULT_QUERY_RATE: f64 = 9.26e-3;

/// Smallest and largest burst sizes (uniform in between).
pub const BURST_RANGE: (u64, u64) = (1, 5);

/// What a query is looking for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryTarget {
    /// The catalog item being sought.
    pub item: ItemId,
}

/// Decides whether a probed peer can answer a query.
///
/// # Examples
///
/// ```
/// use workload::content::{Catalog, CatalogParams, ItemId};
/// use workload::query::QueryModel;
/// use simkit::rng::RngStream;
///
/// let catalog = Catalog::new(CatalogParams::default()).unwrap();
/// let model = QueryModel::new(catalog);
/// let mut rng = RngStream::from_seed(1, "doc");
/// let target = model.sample_target(&mut rng);
/// let lib = model.catalog().build_library(10, &mut rng);
/// let _answers: bool = model.answers(&lib, target);
/// ```
#[derive(Debug, Clone)]
pub struct QueryModel {
    catalog: Catalog,
}

impl QueryModel {
    /// Wraps a catalog as a query model.
    #[must_use]
    pub fn new(catalog: Catalog) -> Self {
        QueryModel { catalog }
    }

    /// The underlying catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Draws the target of a fresh query.
    #[must_use]
    pub fn sample_target(&self, rng: &mut RngStream) -> QueryTarget {
        QueryTarget {
            item: self.catalog.sample_query_item(rng),
        }
    }

    /// Whether a peer with library `lib` returns a result for `target`.
    #[must_use]
    pub fn answers(&self, lib: &PeerLibrary, target: QueryTarget) -> bool {
        lib.contains(target.item)
    }

    /// Arena-handle variant of [`QueryModel::answers`] for engines that
    /// keep peer libraries in a [`LibraryArena`].
    #[must_use]
    pub fn answers_in(
        &self,
        arena: &LibraryArena,
        lib: LibraryHandle,
        target: QueryTarget,
    ) -> bool {
        arena.contains(lib, target.item)
    }
}

/// Generates the bursty query arrival process for one peer.
///
/// # Examples
///
/// ```
/// use workload::query::QueryWorkload;
/// use simkit::rng::RngStream;
///
/// let wl = QueryWorkload::with_rate(9.26e-3).unwrap();
/// let mut rng = RngStream::from_seed(1, "doc");
/// let gap = wl.sample_burst_gap(&mut rng);
/// let size = wl.sample_burst_size(&mut rng);
/// assert!(gap.as_secs() >= 0.0);
/// assert!((1..=5).contains(&size));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkload {
    rate: f64,
    burst_gap: Exponential,
}

/// Error constructing a [`QueryWorkload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidQueryRateError;

impl std::fmt::Display for InvalidQueryRateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query rate must be finite and positive")
    }
}

impl std::error::Error for InvalidQueryRateError {}

impl QueryWorkload {
    /// Builds a workload with the given long-run per-user query rate
    /// (queries per second).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidQueryRateError`] unless the rate is finite and
    /// positive.
    pub fn with_rate(rate: f64) -> Result<Self, InvalidQueryRateError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(InvalidQueryRateError);
        }
        let mean_burst = (BURST_RANGE.0 + BURST_RANGE.1) as f64 / 2.0;
        let burst_rate = rate / mean_burst;
        let burst_gap = Exponential::new(burst_rate).map_err(|_| InvalidQueryRateError)?;
        Ok(QueryWorkload { rate, burst_gap })
    }

    /// The paper's default workload.
    #[must_use]
    pub fn paper_default() -> Self {
        QueryWorkload::with_rate(DEFAULT_QUERY_RATE).expect("default rate is valid")
    }

    /// The configured per-user query rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws the wait until a peer's next query burst.
    #[must_use]
    pub fn sample_burst_gap(&self, rng: &mut RngStream) -> SimDuration {
        SimDuration::from_secs(self.burst_gap.sample(rng))
    }

    /// Draws the number of queries in a burst (uniform 1..=5).
    #[must_use]
    pub fn sample_burst_size(&self, rng: &mut RngStream) -> u64 {
        rng.range_inclusive(BURST_RANGE.0, BURST_RANGE.1)
    }
}

impl Default for QueryWorkload {
    fn default() -> Self {
        QueryWorkload::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::CatalogParams;

    #[test]
    fn rejects_bad_rates() {
        assert!(QueryWorkload::with_rate(0.0).is_err());
        assert!(QueryWorkload::with_rate(-1.0).is_err());
        assert!(QueryWorkload::with_rate(f64::NAN).is_err());
    }

    #[test]
    fn burst_sizes_in_range() {
        let wl = QueryWorkload::paper_default();
        let mut rng = RngStream::from_seed(1, "q");
        for _ in 0..1000 {
            assert!((1..=5).contains(&wl.sample_burst_size(&mut rng)));
        }
    }

    #[test]
    fn long_run_rate_matches_config() {
        let wl = QueryWorkload::with_rate(0.01).unwrap();
        let mut rng = RngStream::from_seed(2, "q");
        let mut queries = 0u64;
        let mut elapsed = 0.0;
        for _ in 0..20_000 {
            elapsed += wl.sample_burst_gap(&mut rng).as_secs();
            queries += wl.sample_burst_size(&mut rng);
        }
        let rate = queries as f64 / elapsed;
        assert!((rate / 0.01 - 1.0).abs() < 0.05, "long-run rate {rate}");
    }

    #[test]
    fn answers_iff_library_holds_item() {
        let catalog = Catalog::new(CatalogParams::default()).unwrap();
        let model = QueryModel::new(catalog);
        let mut rng = RngStream::from_seed(3, "q");
        let lib = model.catalog().build_library(200, &mut rng);
        let held = lib.iter().next().expect("library is non-empty");
        assert!(model.answers(&lib, QueryTarget { item: held }));
        let absent = (0..model.catalog().item_count() as u32)
            .map(crate::content::ItemId)
            .find(|i| !lib.contains(*i))
            .expect("some item is absent");
        assert!(!model.answers(&lib, QueryTarget { item: absent }));
    }

    #[test]
    fn default_workload_uses_paper_rate() {
        let wl = QueryWorkload::default();
        assert_eq!(wl.rate(), DEFAULT_QUERY_RATE);
    }
}
