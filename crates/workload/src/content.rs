//! Content catalog and per-peer libraries.
//!
//! The query model of Yang & Garcia-Molina (VLDB 2001) makes the
//! probability that a probed peer answers depend on the peer's collection
//! and the queried content's popularity. We realize it concretely: a fixed
//! catalog of items with Zipf-distributed replication; each peer's library
//! is its (Saroiu-distributed) number of files sampled from the catalog by
//! popularity; a probe answers a query iff the probed peer's library
//! contains the queried item.

use simkit::dist::{DiscreteDist, Zipf};
use simkit::hash::FxHashMap;
use simkit::rng::RngStream;

/// Identifier of a catalog item. Lower ids are more popular.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

impl std::fmt::Display for ItemId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// Parameters of the content catalog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogParams {
    /// Number of distinct items in the universe.
    pub items: usize,
    /// Zipf exponent for item *replication* (how peers' libraries fill).
    pub replication_exponent: f64,
    /// Zipf exponent for *query* popularity (which items get asked for).
    pub query_exponent: f64,
}

impl Default for CatalogParams {
    /// Calibrated so that with 1000 peers under the default file-count
    /// model, roughly 5–6 % of queries cannot be satisfied even by probing
    /// the entire network (the floor the paper reports in §6.2), and the
    /// mean first-hit rank of answerable queries is ≈45 — which makes the
    /// Random-policy GUESS cost land near the paper's ≈99 probes/query.
    fn default() -> Self {
        CatalogParams {
            items: 20_000,
            replication_exponent: 0.95,
            query_exponent: 1.2,
        }
    }
}

/// The shared content universe.
///
/// # Examples
///
/// ```
/// use workload::content::{Catalog, CatalogParams};
/// use simkit::rng::RngStream;
///
/// let catalog = Catalog::new(CatalogParams::default()).unwrap();
/// let mut rng = RngStream::from_seed(1, "doc");
/// let lib = catalog.build_library(50, &mut rng);
/// assert!(lib.len() <= 50);
/// ```
#[derive(Debug, Clone)]
pub struct Catalog {
    params: CatalogParams,
    replication: Zipf,
    query_pop: Zipf,
}

/// Error constructing a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCatalogError;

impl std::fmt::Display for InvalidCatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "catalog requires items > 0 and finite non-negative exponents"
        )
    }
}

impl std::error::Error for InvalidCatalogError {}

impl Catalog {
    /// Builds the catalog.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCatalogError`] if there are zero items or an
    /// exponent is negative/non-finite.
    pub fn new(params: CatalogParams) -> Result<Self, InvalidCatalogError> {
        let replication = Zipf::new(params.items, params.replication_exponent)
            .map_err(|_| InvalidCatalogError)?;
        let query_pop =
            Zipf::new(params.items, params.query_exponent).map_err(|_| InvalidCatalogError)?;
        Ok(Catalog {
            params,
            replication,
            query_pop,
        })
    }

    /// The catalog parameters.
    #[must_use]
    pub fn params(&self) -> CatalogParams {
        self.params
    }

    /// Number of distinct items.
    #[must_use]
    pub fn item_count(&self) -> usize {
        self.params.items
    }

    /// Builds the library of a peer sharing `num_files` files: `num_files`
    /// popularity-weighted draws, deduplicated (a peer holds at most one
    /// copy of an item).
    #[must_use]
    pub fn build_library(&self, num_files: u32, rng: &mut RngStream) -> PeerLibrary {
        let mut ids: Vec<u32> = (0..num_files)
            .map(|_| self.replication.sample_index(rng) as u32)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        PeerLibrary { items: ids }
    }

    /// Draws the item targeted by a query, by query popularity.
    #[must_use]
    pub fn sample_query_item(&self, rng: &mut RngStream) -> ItemId {
        ItemId(self.query_pop.sample_index(rng) as u32)
    }

    /// Arena-backed variant of [`Catalog::build_library`]: same draws, same
    /// RNG consumption, but the item ids land in `arena`'s shared backing
    /// store instead of a fresh per-peer `Vec`. Returns a handle that the
    /// caller must eventually [`LibraryArena::free`].
    pub fn build_library_in(
        &self,
        num_files: u32,
        rng: &mut RngStream,
        arena: &mut LibraryArena,
    ) -> LibraryHandle {
        let mut ids = std::mem::take(&mut arena.scratch);
        ids.clear();
        ids.extend((0..num_files).map(|_| self.replication.sample_index(rng) as u32));
        ids.sort_unstable();
        ids.dedup();
        let handle = arena.insert_sorted(&ids);
        arena.scratch = ids;
        handle
    }
}

/// Handle to one peer's library inside a [`LibraryArena`].
///
/// A handle is `(offset, len)` into the arena's shared item vector — 8
/// bytes of peer state instead of a 24-byte `Vec` header plus its own
/// heap block. [`LibraryHandle::EMPTY`] denotes the empty library (free
/// riders, fabricated stubs) and is always safe to read or free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LibraryHandle {
    offset: u32,
    len: u32,
}

impl LibraryHandle {
    /// The empty library: zero items, no arena storage.
    pub const EMPTY: LibraryHandle = LibraryHandle { offset: 0, len: 0 };

    /// Number of distinct items held.
    #[must_use]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Returns true if the library holds nothing.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// Contiguous storage for every live peer's library.
///
/// Libraries are immutable after construction (a peer's collection is
/// fixed for its lifetime), so the arena only needs block allocation and
/// recycling: freed blocks are kept on per-length free lists and reused
/// for the next newborn with the same (post-dedup) item count. Because
/// library sizes repeat heavily under the Saroiu file-count model, reuse
/// keeps the backing vector's growth bounded through churn.
#[derive(Debug, Clone, Default)]
pub struct LibraryArena {
    items: Vec<u32>,
    /// Freed blocks, keyed by exact length.
    free: FxHashMap<u32, Vec<u32>>,
    /// Reusable draw buffer for [`Catalog::build_library_in`].
    scratch: Vec<u32>,
    /// Items currently reachable through live handles.
    live: usize,
}

impl LibraryArena {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a sorted, deduplicated id slice; returns its handle.
    fn insert_sorted(&mut self, ids: &[u32]) -> LibraryHandle {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        if ids.is_empty() {
            return LibraryHandle::EMPTY;
        }
        let len = u32::try_from(ids.len()).expect("library exceeds u32 item count");
        let offset = match self.free.get_mut(&len).and_then(Vec::pop) {
            Some(off) => {
                self.items[off as usize..off as usize + ids.len()].copy_from_slice(ids);
                off
            }
            None => {
                let off = u32::try_from(self.items.len()).expect("library arena exceeds u32 items");
                self.items.extend_from_slice(ids);
                off
            }
        };
        self.live += ids.len();
        LibraryHandle { offset, len }
    }

    /// The items of library `h`, in ascending id order.
    #[must_use]
    pub fn items(&self, h: LibraryHandle) -> &[u32] {
        &self.items[h.offset as usize..h.offset as usize + h.len as usize]
    }

    /// Membership test for library `h`.
    #[must_use]
    pub fn contains(&self, h: LibraryHandle, item: ItemId) -> bool {
        self.items(h).binary_search(&item.0).is_ok()
    }

    /// Returns library `h`'s block to the free list. The handle must not
    /// be used afterwards; freeing [`LibraryHandle::EMPTY`] is a no-op.
    pub fn free(&mut self, h: LibraryHandle) {
        if h.len == 0 {
            return;
        }
        self.live -= h.len as usize;
        self.free.entry(h.len).or_default().push(h.offset);
    }

    /// Total items ever allocated (backing-vector length).
    #[must_use]
    pub fn allocated_items(&self) -> usize {
        self.items.len()
    }

    /// Items currently reachable through live handles.
    #[must_use]
    pub fn live_items(&self) -> usize {
        self.live
    }
}

/// A peer's collection of items, optimized for membership tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PeerLibrary {
    items: Vec<u32>, // sorted, deduplicated
}

impl PeerLibrary {
    /// The empty library (a free rider's collection).
    #[must_use]
    pub fn empty() -> Self {
        PeerLibrary { items: Vec::new() }
    }

    /// Number of distinct items held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns true if the library holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, item: ItemId) -> bool {
        self.items.binary_search(&item.0).is_ok()
    }

    /// Iterates over held items in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.iter().map(|&i| ItemId(i))
    }
}

impl FromIterator<ItemId> for PeerLibrary {
    fn from_iter<T: IntoIterator<Item = ItemId>>(iter: T) -> Self {
        let mut items: Vec<u32> = iter.into_iter().map(|i| i.0).collect();
        items.sort_unstable();
        items.dedup();
        PeerLibrary { items }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::new(CatalogParams::default()).unwrap()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Catalog::new(CatalogParams {
            items: 0,
            ..CatalogParams::default()
        })
        .is_err());
        assert!(Catalog::new(CatalogParams {
            replication_exponent: -1.0,
            ..CatalogParams::default()
        })
        .is_err());
    }

    #[test]
    fn library_respects_file_count() {
        let c = catalog();
        let mut rng = RngStream::from_seed(1, "c");
        let lib = c.build_library(100, &mut rng);
        assert!(lib.len() <= 100);
        assert!(!lib.is_empty());
        for item in lib.iter() {
            assert!((item.0 as usize) < c.item_count());
        }
    }

    #[test]
    fn empty_library_contains_nothing() {
        let lib = PeerLibrary::empty();
        assert!(lib.is_empty());
        assert!(!lib.contains(ItemId(0)));
        assert_eq!(lib.len(), 0);
    }

    #[test]
    fn contains_finds_held_items() {
        let lib: PeerLibrary = [ItemId(5), ItemId(2), ItemId(5)].into_iter().collect();
        assert_eq!(lib.len(), 2, "duplicates collapse");
        assert!(lib.contains(ItemId(2)));
        assert!(lib.contains(ItemId(5)));
        assert!(!lib.contains(ItemId(3)));
    }

    #[test]
    fn popular_items_are_widely_replicated() {
        let c = catalog();
        let mut rng = RngStream::from_seed(2, "c");
        let libs: Vec<PeerLibrary> = (0..300).map(|_| c.build_library(120, &mut rng)).collect();
        let holders_head = libs.iter().filter(|l| l.contains(ItemId(0))).count();
        let holders_tail = libs.iter().filter(|l| l.contains(ItemId(30_000))).count();
        assert!(
            holders_head > holders_tail,
            "rank-0 item held by {holders_head}, rank-30000 by {holders_tail}"
        );
    }

    #[test]
    fn query_items_are_in_range() {
        let c = catalog();
        let mut rng = RngStream::from_seed(3, "c");
        for _ in 0..1000 {
            let item = c.sample_query_item(&mut rng);
            assert!((item.0 as usize) < c.item_count());
        }
    }

    #[test]
    fn zero_files_gives_empty_library() {
        let c = catalog();
        let mut rng = RngStream::from_seed(4, "c");
        assert!(c.build_library(0, &mut rng).is_empty());
    }

    #[test]
    fn arena_library_matches_owned_library() {
        // Same seed, same draws: the arena-backed builder must produce the
        // exact item set (and consume the exact RNG stream) of the owned
        // builder — this is what keeps goldens byte-identical.
        let c = catalog();
        let mut arena = LibraryArena::new();
        let mut r1 = RngStream::from_seed(9, "c");
        let mut r2 = RngStream::from_seed(9, "c");
        for files in [0u32, 1, 7, 120, 300] {
            let owned = c.build_library(files, &mut r1);
            let h = c.build_library_in(files, &mut r2, &mut arena);
            let owned_items: Vec<u32> = owned.iter().map(|i| i.0).collect();
            assert_eq!(arena.items(h), owned_items.as_slice());
            assert_eq!(h.len(), owned.len());
            for item in owned.iter() {
                assert!(arena.contains(h, item));
            }
        }
        assert_eq!(r1.next_u64(), r2.next_u64(), "streams stayed in lockstep");
    }

    #[test]
    fn arena_recycles_freed_blocks() {
        let c = catalog();
        let mut arena = LibraryArena::new();
        let mut rng = RngStream::from_seed(5, "c");
        let a = c.build_library_in(80, &mut rng, &mut arena);
        let len_a = a.len();
        let grown = arena.allocated_items();
        assert_eq!(arena.live_items(), len_a);
        arena.free(a);
        assert_eq!(arena.live_items(), 0);
        // A same-size successor must reuse the freed block, not grow.
        let mut probe = None;
        for _ in 0..200 {
            let h = c.build_library_in(80, &mut rng, &mut arena);
            if h.len() == len_a {
                probe = Some(h);
                break;
            }
            arena.free(h);
        }
        let h = probe.expect("a same-size library shows up within 200 draws");
        assert_eq!(arena.allocated_items(), grown, "block was recycled");
        assert_eq!(arena.live_items(), h.len());
        assert!(arena.items(h).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_handle_is_inert() {
        let mut arena = LibraryArena::new();
        let h = LibraryHandle::EMPTY;
        assert!(h.is_empty());
        assert_eq!(arena.items(h), &[] as &[u32]);
        assert!(!arena.contains(h, ItemId(0)));
        arena.free(h); // no-op
        assert_eq!(arena.allocated_items(), 0);
    }
}
