//! Shared-file-count model.
//!
//! Per-peer file counts in the paper follow the distribution measured over
//! Gnutella by Saroiu et al.: roughly a quarter of peers are *free riders*
//! sharing nothing, most sharers offer a few dozen files, and a small
//! minority share thousands. We reproduce that shape with a free-rider
//! point mass plus a bounded Pareto tail.

use simkit::dist::{BoundedPareto, ContinuousDist};
use simkit::rng::RngStream;

/// Generates the number of files a newborn peer shares.
///
/// # Examples
///
/// ```
/// use workload::files::FileCountModel;
/// use simkit::rng::RngStream;
///
/// let model = FileCountModel::gnutella_like();
/// let mut rng = RngStream::from_seed(1, "doc");
/// let files = model.sample_file_count(&mut rng);
/// assert!(files <= model.max_files());
/// ```
#[derive(Debug, Clone)]
pub struct FileCountModel {
    free_rider_fraction: f64,
    sharers: BoundedPareto,
}

/// Error constructing a [`FileCountModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidFileModelError;

impl std::fmt::Display for InvalidFileModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "file-count model requires a free-rider fraction in [0,1)"
        )
    }
}

impl std::error::Error for InvalidFileModelError {}

impl FileCountModel {
    /// The Gnutella-like default: 25 % free riders; sharers draw from a
    /// bounded Pareto on `[4, 5000]` with tail index 0.85.
    #[must_use]
    pub fn gnutella_like() -> Self {
        FileCountModel {
            free_rider_fraction: 0.25,
            sharers: BoundedPareto::new(4.0, 5000.0, 0.85).expect("valid defaults"),
        }
    }

    /// Builds a custom model.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFileModelError`] if `free_rider_fraction` is not in
    /// `[0, 1)` or the Pareto parameters are invalid.
    pub fn new(
        free_rider_fraction: f64,
        min_files: f64,
        max_files: f64,
        alpha: f64,
    ) -> Result<Self, InvalidFileModelError> {
        if !(0.0..1.0).contains(&free_rider_fraction) {
            return Err(InvalidFileModelError);
        }
        let sharers =
            BoundedPareto::new(min_files, max_files, alpha).map_err(|_| InvalidFileModelError)?;
        Ok(FileCountModel {
            free_rider_fraction,
            sharers,
        })
    }

    /// Fraction of peers sharing zero files.
    #[must_use]
    pub fn free_rider_fraction(&self) -> f64 {
        self.free_rider_fraction
    }

    /// Upper bound on any peer's file count.
    #[must_use]
    pub fn max_files(&self) -> u32 {
        self.sharers.upper() as u32
    }

    /// Draws the file count for a newborn peer.
    #[must_use]
    pub fn sample_file_count(&self, rng: &mut RngStream) -> u32 {
        if rng.chance(self.free_rider_fraction) {
            0
        } else {
            self.sharers.sample(rng).round() as u32
        }
    }
}

impl Default for FileCountModel {
    fn default() -> Self {
        FileCountModel::gnutella_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_rider_fraction_is_respected() {
        let m = FileCountModel::gnutella_like();
        let mut rng = RngStream::from_seed(1, "f");
        let n = 20_000;
        let free = (0..n)
            .filter(|_| m.sample_file_count(&mut rng) == 0)
            .count();
        let frac = free as f64 / n as f64;
        assert!((0.23..0.27).contains(&frac), "free-rider fraction {frac}");
    }

    #[test]
    fn sharers_stay_in_bounds() {
        let m = FileCountModel::gnutella_like();
        let mut rng = RngStream::from_seed(2, "f");
        for _ in 0..20_000 {
            let c = m.sample_file_count(&mut rng);
            assert!(c == 0 || (4..=5000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn distribution_is_skewed() {
        let m = FileCountModel::gnutella_like();
        let mut rng = RngStream::from_seed(3, "f");
        let n = 20_000;
        let mut counts: Vec<u32> = (0..n).map(|_| m.sample_file_count(&mut rng)).collect();
        counts.sort_unstable();
        let median = counts[n / 2];
        let p99 = counts[n * 99 / 100];
        assert!(p99 > median * 10, "p99 {p99} should dwarf median {median}");
    }

    #[test]
    fn rejects_bad_params() {
        assert!(FileCountModel::new(1.0, 1.0, 10.0, 1.0).is_err());
        assert!(FileCountModel::new(-0.1, 1.0, 10.0, 1.0).is_err());
        assert!(FileCountModel::new(0.2, 10.0, 5.0, 1.0).is_err());
        assert!(FileCountModel::new(0.2, 1.0, 10.0, 1.0).is_ok());
    }

    #[test]
    fn zero_free_riders_always_share() {
        let m = FileCountModel::new(0.0, 1.0, 100.0, 1.0).unwrap();
        let mut rng = RngStream::from_seed(4, "f");
        for _ in 0..1000 {
            assert!(m.sample_file_count(&mut rng) >= 1);
        }
    }
}
