//! Peer session-length (lifetime) model.
//!
//! The paper draws each peer's lifetime from a large *measured* sample of
//! Gnutella session lengths (Saroiu et al., MMCN 2002) and scales the draws
//! with a `LifespanMultiplier`. The measured trace is not publicly
//! distributable, so this module synthesizes a fixed sample with the same
//! published shape — median around one hour, a large mass of very short
//! sessions, and a heavy right tail of multi-hour sessions — and exposes it
//! through the identical interface: i.i.d. resampling plus a multiplier.

use simkit::dist::{ContinuousDist, EmpiricalDist, LogNormal};
use simkit::rng::RngStream;
use simkit::time::SimDuration;

/// Default number of observations in the synthetic session-length sample.
pub const DEFAULT_SAMPLE_SIZE: usize = 20_000;

/// Internal seed fixing the synthetic "measured" trace. The trace is a
/// build-time artifact, the same for every simulation run regardless of the
/// run seed — exactly like a file of measurements on disk.
const TRACE_SEED: u64 = 0x5a70_11fe_2002;

/// A model of peer lifetimes backed by an empirical sample.
///
/// # Examples
///
/// ```
/// use workload::lifetime::LifetimeModel;
/// use simkit::rng::RngStream;
///
/// let model = LifetimeModel::saroiu_like(1.0);
/// let mut rng = RngStream::from_seed(1, "doc");
/// let life = model.sample_lifetime(&mut rng);
/// assert!(life.as_secs() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct LifetimeModel {
    dist: EmpiricalDist,
    multiplier: f64,
}

impl LifetimeModel {
    /// Builds the synthetic Saroiu-like lifetime model with the given
    /// `LifespanMultiplier` (the paper's default is `1.0`; the cache-size
    /// experiments use `0.2` for extra churn strain).
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is non-finite or not positive.
    #[must_use]
    pub fn saroiu_like(multiplier: f64) -> Self {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "LifespanMultiplier must be positive"
        );
        let dist = synthesize_trace(DEFAULT_SAMPLE_SIZE);
        LifetimeModel {
            dist: dist.scaled(multiplier),
            multiplier,
        }
    }

    /// Builds a model from a caller-provided sample of session lengths in
    /// seconds, scaled by `multiplier`. Use this to plug in a real trace.
    ///
    /// # Errors
    ///
    /// Returns an error if the sample is empty or contains non-finite
    /// values.
    pub fn from_trace(
        sample: Vec<f64>,
        multiplier: f64,
    ) -> Result<Self, simkit::dist::BuildEmpiricalError> {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "LifespanMultiplier must be positive"
        );
        let dist = EmpiricalDist::from_sample(sample)?;
        Ok(LifetimeModel {
            dist: dist.scaled(multiplier),
            multiplier,
        })
    }

    /// The configured `LifespanMultiplier`.
    #[must_use]
    pub fn multiplier(&self) -> f64 {
        self.multiplier
    }

    /// Draws one lifetime.
    #[must_use]
    pub fn sample_lifetime(&self, rng: &mut RngStream) -> SimDuration {
        // Clamp to at least one second so a peer always exists long enough
        // to be observed by the event loop.
        SimDuration::from_secs(self.dist.sample(rng).max(1.0))
    }

    /// Median lifetime of the (scaled) sample.
    #[must_use]
    pub fn median(&self) -> SimDuration {
        SimDuration::from_secs(self.dist.median())
    }

    /// Mean lifetime of the (scaled) sample.
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_secs(self.dist.mean().expect("non-empty sample"))
    }
}

/// The churn hook of the shared simulation kernel: a
/// [`simkit::sim::ChurnDriver`] can drive any engine's churn straight
/// off this model.
impl simkit::sim::Lifetimes for LifetimeModel {
    fn sample_lifetime(&self, rng: &mut RngStream) -> SimDuration {
        LifetimeModel::sample_lifetime(self, rng)
    }
}

/// Synthesizes the fixed session-length trace: a 50/35/15 mixture of
/// log-normals producing a median near 3600 s, a thick mass of sub-10-minute
/// sessions, and a tail beyond 24 h, matching the published Gnutella
/// session-length shape.
fn synthesize_trace(n: usize) -> EmpiricalDist {
    let mut rng = RngStream::from_seed(TRACE_SEED, "saroiu-trace");
    let short = LogNormal::new(300.0_f64.ln(), 1.0).expect("valid");
    let medium = LogNormal::new(3600.0_f64.ln(), 0.8).expect("valid");
    let long = LogNormal::new(18_000.0_f64.ln(), 0.9).expect("valid");
    let mut sample = Vec::with_capacity(n);
    for _ in 0..n {
        let u = rng.f64();
        let x = if u < 0.35 {
            short.sample(&mut rng)
        } else if u < 0.85 {
            medium.sample(&mut rng)
        } else {
            long.sample(&mut rng)
        };
        // Sessions shorter than 10 s or longer than 3 days are trimmed, as
        // measurement studies do.
        sample.push(x.clamp(10.0, 259_200.0));
    }
    EmpiricalDist::from_sample(sample).expect("synthesized sample is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let a = LifetimeModel::saroiu_like(1.0);
        let b = LifetimeModel::saroiu_like(1.0);
        assert_eq!(a.median().as_secs(), b.median().as_secs());
        assert_eq!(a.mean().as_secs(), b.mean().as_secs());
    }

    #[test]
    fn median_is_near_an_hour() {
        let m = LifetimeModel::saroiu_like(1.0);
        let med = m.median().as_secs();
        assert!(
            (1800.0..7200.0).contains(&med),
            "median {med} outside plausible range"
        );
    }

    #[test]
    fn distribution_is_right_skewed() {
        let m = LifetimeModel::saroiu_like(1.0);
        assert!(
            m.mean().as_secs() > m.median().as_secs(),
            "heavy tail means mean > median"
        );
    }

    #[test]
    fn multiplier_scales_draws() {
        let base = LifetimeModel::saroiu_like(1.0);
        let strained = LifetimeModel::saroiu_like(0.2);
        let ratio = strained.median().as_secs() / base.median().as_secs();
        assert!((ratio - 0.2).abs() < 1e-9, "ratio {ratio}");
        assert_eq!(strained.multiplier(), 0.2);
    }

    #[test]
    fn sample_lifetime_is_positive() {
        let m = LifetimeModel::saroiu_like(0.2);
        let mut rng = RngStream::from_seed(3, "lt");
        for _ in 0..1000 {
            assert!(m.sample_lifetime(&mut rng).as_secs() >= 1.0);
        }
    }

    #[test]
    fn custom_trace_round_trips() {
        let m = LifetimeModel::from_trace(vec![100.0, 200.0, 300.0], 2.0).unwrap();
        assert_eq!(m.median().as_secs(), 400.0);
        assert!(LifetimeModel::from_trace(vec![], 1.0).is_err());
    }

    #[test]
    #[should_panic(expected = "LifespanMultiplier")]
    fn zero_multiplier_rejected() {
        let _ = LifetimeModel::saroiu_like(0.0);
    }

    #[test]
    fn has_many_short_sessions() {
        let m = LifetimeModel::saroiu_like(1.0);
        let mut rng = RngStream::from_seed(4, "lt");
        let n = 10_000;
        let short = (0..n)
            .filter(|_| m.sample_lifetime(&mut rng).as_secs() < 600.0)
            .count();
        // The Saroiu trace has a substantial sub-10-minute mass.
        assert!(
            short > n / 20,
            "only {short} of {n} sessions under 10 minutes"
        );
    }
}
