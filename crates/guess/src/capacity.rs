//! Per-peer probe-rate limiting (`MaxProbesPerSecond`).
//!
//! A peer is *overloaded* when more probes arrive within a one-second
//! window than its configured limit; excess probes are **refused** (§6.3).
//! The meter counts probes per integer-second bucket of simulation time,
//! which matches the paper's "probes it must process per second" phrasing
//! and is O(1) per probe.

use simkit::time::SimTime;

/// Outcome of offering a probe to a capacity meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The probe is within capacity and will be processed.
    Accepted,
    /// The peer is overloaded this second; the probe is refused.
    Refused,
}

/// A per-second probe counter with a fixed admission limit.
///
/// # Examples
///
/// ```
/// use guess::capacity::{Admission, CapacityMeter};
/// use simkit::time::SimTime;
///
/// let mut m = CapacityMeter::with_limit(Some(2));
/// let t = SimTime::from_secs(10.2);
/// assert_eq!(m.admit(t), Admission::Accepted);
/// assert_eq!(m.admit(t), Admission::Accepted);
/// assert_eq!(m.admit(t), Admission::Refused);
/// // The next second opens a fresh window.
/// assert_eq!(m.admit(SimTime::from_secs(11.0)), Admission::Accepted);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CapacityMeter {
    limit: Option<u32>,
    bucket: u64,
    count: u32,
}

impl CapacityMeter {
    /// Creates a meter admitting at most `limit` probes per second;
    /// `None` means unlimited.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is `Some(0)` — a peer that can process nothing is
    /// indistinguishable from a dead peer and should be modeled as one.
    #[must_use]
    pub fn with_limit(limit: Option<u32>) -> Self {
        if let Some(l) = limit {
            assert!(
                l > 0,
                "MaxProbesPerSecond must be positive; use a dead peer for zero"
            );
        }
        CapacityMeter {
            limit,
            bucket: 0,
            count: 0,
        }
    }

    /// The configured per-second limit.
    #[must_use]
    pub fn limit(&self) -> Option<u32> {
        self.limit
    }

    /// Offers a probe arriving at `now`; counts it and reports admission.
    pub fn admit(&mut self, now: SimTime) -> Admission {
        let Some(limit) = self.limit else {
            return Admission::Accepted;
        };
        let bucket = now.second_bucket();
        if bucket != self.bucket {
            self.bucket = bucket;
            self.count = 0;
        }
        if self.count >= limit {
            Admission::Refused
        } else {
            self.count += 1;
            Admission::Accepted
        }
    }

    /// Probes admitted in the current one-second window.
    #[must_use]
    pub fn current_window_count(&self) -> u32 {
        self.count
    }
}

impl Default for CapacityMeter {
    /// An unlimited meter.
    fn default() -> Self {
        CapacityMeter::with_limit(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn unlimited_never_refuses() {
        let mut m = CapacityMeter::with_limit(None);
        for i in 0..10_000 {
            assert_eq!(m.admit(t(f64::from(i) * 1e-4)), Admission::Accepted);
        }
    }

    #[test]
    fn refuses_beyond_limit_within_second() {
        let mut m = CapacityMeter::with_limit(Some(3));
        assert_eq!(m.admit(t(5.1)), Admission::Accepted);
        assert_eq!(m.admit(t(5.5)), Admission::Accepted);
        assert_eq!(m.admit(t(5.9)), Admission::Accepted);
        assert_eq!(m.admit(t(5.95)), Admission::Refused);
        assert_eq!(m.current_window_count(), 3);
    }

    #[test]
    fn window_resets_each_second() {
        let mut m = CapacityMeter::with_limit(Some(1));
        assert_eq!(m.admit(t(1.0)), Admission::Accepted);
        assert_eq!(m.admit(t(1.5)), Admission::Refused);
        assert_eq!(m.admit(t(2.0)), Admission::Accepted);
        assert_eq!(
            m.admit(t(7.0)),
            Admission::Accepted,
            "skipping seconds still resets"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_limit_rejected() {
        let _ = CapacityMeter::with_limit(Some(0));
    }

    #[test]
    fn limit_accessor() {
        assert_eq!(CapacityMeter::with_limit(Some(5)).limit(), Some(5));
        assert_eq!(CapacityMeter::default().limit(), None);
    }
}
