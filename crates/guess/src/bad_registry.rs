//! Slot-indexed registry of live malicious peers.
//!
//! The engine needs three pieces of adversary bookkeeping on the churn
//! hot path:
//!
//! 1. *membership* — is this dying peer a live bad peer? (every death
//!    checks);
//! 2. *uniform sampling* — `BadPongBehavior::Bad` pongs pick colluders
//!    uniformly from the live bad population;
//! 3. *fabricated pools* — each attacker that answers with
//!    `BadPongBehavior::Dead` owns a lazily allocated pool of dead
//!    addresses.
//!
//! These used to live in a `Vec<PeerAddr>` + two `PeerAddr`-keyed
//! `HashMap`s. [`BadRegistry`] folds all three into one slab indexed by
//! [`SlotId`]: the network keeps a constant population of slots, so a
//! slot index is a perfect dense key, and the occupying [`PeerAddr`]
//! (monotone, never reused) acts as the generation stamp that detects
//! stale slots. Membership checks and removals become two array reads
//! instead of a hash probe.
//!
//! ## Determinism contract
//!
//! The dense `members` list must reproduce *exactly* the push /
//! `swap_remove` / back-patch order of the old `live_bad` vector:
//! `sample_indices(len, k)` draws positions into this list, so any
//! reordering would change which colluder addresses get sampled and
//! break the golden reports. [`insert`](BadRegistry::insert) appends and
//! [`remove`](BadRegistry::remove) swap-removes, mirroring the old code
//! path one-for-one.

use crate::addr::{PeerAddr, SlotId};

/// Per-slot adversary state. `occupant` doubles as the generation
/// stamp: it is `Some(addr)` exactly while the live peer `addr` in this
/// slot is malicious.
#[derive(Debug, Clone, Default)]
struct SlotEntry {
    occupant: Option<PeerAddr>,
    /// Position of `occupant` in `members`; meaningless when vacant.
    pos: u32,
    /// Fabricated dead-address pool of the current occupant. Cleared on
    /// removal so a later bad occupant of the same slot re-allocates,
    /// exactly as the old per-address map did.
    fabricated: Vec<PeerAddr>,
}

/// Dense bookkeeping for the live malicious population.
///
/// # Examples
///
/// ```
/// use guess::addr::{AddrAllocator, SlotId};
/// use guess::bad_registry::BadRegistry;
///
/// let mut alloc = AddrAllocator::new();
/// let (a, b) = (alloc.allocate(), alloc.allocate());
/// let mut reg = BadRegistry::new(8);
/// reg.insert(SlotId(0), a);
/// reg.insert(SlotId(3), b);
/// assert_eq!(reg.len(), 2);
/// assert_eq!(reg.member(0), a);
/// assert!(reg.remove(SlotId(0), a));
/// assert_eq!(reg.member(0), b); // b swapped into a's dense position
/// assert!(!reg.remove(SlotId(0), a)); // stamp no longer matches
/// ```
#[derive(Debug, Clone)]
pub struct BadRegistry {
    /// One entry per network slot, indexed by `SlotId::index()`.
    slots: Vec<SlotEntry>,
    /// Dense list of live bad peers for O(1) uniform sampling; each
    /// element carries its slot so removal can back-patch `pos`.
    members: Vec<(PeerAddr, SlotId)>,
}

impl BadRegistry {
    /// An empty registry for a network of `network_size` slots.
    #[must_use]
    pub fn new(network_size: usize) -> Self {
        BadRegistry {
            slots: vec![SlotEntry::default(); network_size],
            members: Vec::new(),
        }
    }

    /// Grows the registry to cover `network_size` slots (no-op when it
    /// already does). Mass-join interventions add slots past the
    /// construction-time population; the new slots start vacant.
    pub fn grow_to(&mut self, network_size: usize) {
        if network_size > self.slots.len() {
            self.slots.resize(network_size, SlotEntry::default());
        }
    }

    /// Registers the newborn bad peer `addr` occupying `slot`.
    pub fn insert(&mut self, slot: SlotId, addr: PeerAddr) {
        let e = &mut self.slots[slot.index()];
        debug_assert!(e.occupant.is_none(), "slot already holds a live bad peer");
        debug_assert!(e.fabricated.is_empty(), "stale pool survived a removal");
        e.occupant = Some(addr);
        e.pos = u32::try_from(self.members.len()).expect("population fits u32");
        self.members.push((addr, slot));
    }

    /// Unregisters `addr` if it is the live bad occupant of `slot`;
    /// returns whether it was. Drops the slot's fabricated pool and
    /// keeps `members` dense by swap-removing.
    pub fn remove(&mut self, slot: SlotId, addr: PeerAddr) -> bool {
        let e = &mut self.slots[slot.index()];
        if e.occupant != Some(addr) {
            return false;
        }
        let pos = e.pos as usize;
        e.occupant = None;
        e.fabricated.clear();
        self.members.swap_remove(pos);
        if let Some(&(_, moved_slot)) = self.members.get(pos) {
            self.slots[moved_slot.index()].pos = pos as u32;
        }
        true
    }

    /// Number of live bad peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no bad peer is alive.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The live bad peer at dense position `i` (for uniform sampling
    /// via `sample_indices(len, k)`).
    #[must_use]
    pub fn member(&self, i: usize) -> PeerAddr {
        self.members[i].0
    }

    /// The live bad peer occupying `slot`, if any.
    #[must_use]
    pub fn occupant(&self, slot: SlotId) -> Option<PeerAddr> {
        self.slots[slot.index()].occupant
    }

    /// The fabricated dead-address pool of `slot`'s occupant (empty
    /// until [`set_pool`](Self::set_pool) fills it).
    #[must_use]
    pub fn pool(&self, slot: SlotId) -> &[PeerAddr] {
        &self.slots[slot.index()].fabricated
    }

    /// Installs the lazily allocated fabricated pool for `slot`.
    pub fn set_pool(&mut self, slot: SlotId, pool: Vec<PeerAddr>) {
        let e = &mut self.slots[slot.index()];
        debug_assert!(e.occupant.is_some(), "pool for a vacant slot");
        debug_assert!(e.fabricated.is_empty(), "pool allocated twice");
        e.fabricated = pool;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrAllocator;

    fn addrs(n: usize) -> Vec<PeerAddr> {
        let mut alloc = AddrAllocator::new();
        (0..n).map(|_| alloc.allocate()).collect()
    }

    /// The dense list must evolve exactly like the old `live_bad` vec:
    /// append on insert, swap_remove + back-patch on remove.
    #[test]
    fn dense_order_matches_a_vec_oracle() {
        let a = addrs(6);
        let mut reg = BadRegistry::new(6);
        let mut oracle: Vec<PeerAddr> = Vec::new();
        for (i, &addr) in a.iter().enumerate() {
            reg.insert(SlotId(i as u32), addr);
            oracle.push(addr);
        }
        // Remove from the middle, the front, and the back.
        for (slot, addr) in [(2u32, a[2]), (0, a[0]), (5, a[5])] {
            let pos = oracle.iter().position(|&x| x == addr).unwrap();
            oracle.swap_remove(pos);
            assert!(reg.remove(SlotId(slot), addr));
            assert_eq!(reg.len(), oracle.len());
            for (i, &want) in oracle.iter().enumerate() {
                assert_eq!(reg.member(i), want, "dense position {i}");
            }
        }
    }

    #[test]
    fn stale_stamp_is_not_removed() {
        let a = addrs(3);
        let mut reg = BadRegistry::new(2);
        reg.insert(SlotId(0), a[0]);
        assert!(reg.remove(SlotId(0), a[0]));
        // A later bad occupant of the same slot is a different address;
        // the dead one must no longer match.
        reg.insert(SlotId(0), a[1]);
        assert!(!reg.remove(SlotId(0), a[0]));
        assert_eq!(reg.occupant(SlotId(0)), Some(a[1]));
        assert!(!reg.remove(SlotId(1), a[2]), "vacant slot");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn pool_lives_and_dies_with_the_occupant() {
        let a = addrs(4);
        let mut reg = BadRegistry::new(1);
        reg.insert(SlotId(0), a[0]);
        assert!(reg.pool(SlotId(0)).is_empty());
        reg.set_pool(SlotId(0), vec![a[2], a[3]]);
        assert_eq!(reg.pool(SlotId(0)), &[a[2], a[3]]);
        assert!(reg.remove(SlotId(0), a[0]));
        // The next occupant starts with no pool, like the old
        // per-address map after `fabricated.remove(&addr)`.
        reg.insert(SlotId(0), a[1]);
        assert!(reg.pool(SlotId(0)).is_empty());
    }

    #[test]
    fn empty_registry_reports_empty() {
        let reg = BadRegistry::new(4);
        assert!(reg.is_empty());
        assert_eq!(reg.len(), 0);
        assert_eq!(reg.occupant(SlotId(3)), None);
    }
}
