//! The GUESS network simulator: churn, maintenance, query execution.
//!
//! One [`GuessSim`] owns the whole simulated network and drives it with a
//! discrete-event loop. Three event families exist per peer — query bursts,
//! maintenance pings, and death — plus a periodic metrics snapshot.
//!
//! ## Fidelity notes (see DESIGN.md §5)
//!
//! * A query executes *atomically* at its start time, but its probes carry
//!   timestamps spaced `probe_interval / parallel_probes` apart, so
//!   per-second capacity meters observe the true arrival rate.
//! * Maintenance pings bypass the capacity meter: the paper's
//!   `MaxProbesPerSecond` governs query probes.
//! * A refused probe looks like a timeout to the prober: the entry is
//!   evicted ("believing it is dead", §6.3) unless `DoBackoff` is set, in
//!   which case the entry is retained but skipped for the rest of the
//!   query.

use simkit::rng::RngStream;
use simkit::scenario::MaintenanceMode;
use simkit::sim::{ChurnDriver, Kernel, KernelParams, Runnable, SimCtx, SimReport, Simulation};
use simkit::time::SimTime;
use simkit::trace::{ProbeKind, ProbeOutcome, TraceRecord, TraceSink, NO_QUERY};
use workload::content::{Catalog, LibraryArena, LibraryHandle};
use workload::files::FileCountModel;
use workload::lifetime::LifetimeModel;
use workload::query::{QueryModel, QueryTarget, QueryWorkload};

use crate::addr::{AddrAllocator, PeerAddr, SlotId};
use crate::bad_registry::BadRegistry;
use crate::capacity::Admission;
use crate::config::{BadPongBehavior, Config, ConfigError};
use crate::entry::CacheEntry;
use crate::graph::UnionFind;
use crate::link_cache::{CacheArena, InsertOutcome};
use crate::message::Pong;
use crate::metrics::{MetricsCollector, QueryOutcome, RunReport};
use crate::peer::{Behavior, PeerState};
use crate::policy::{select_top_k, ProbeQueue, SelectionPolicy};
use crate::push::{Interest, PushJob, PushPlane, UpdateKind};

mod lanes;
mod query_exec;
mod sampling;
mod scenario_ops;

pub use lanes::run_lanes;

/// Number of distinct fabricated dead addresses each malicious peer cycles
/// through in its poisoned pongs.
const FABRICATED_POOL_SIZE: usize = 40;

/// Inflated `NumRes` claim carried by poisoned pong entries, so that
/// results-trusting policies rank them first.
const POISON_NUM_RES: u32 = 50;

/// The runtime side of the config/state split: the knobs a
/// [`simkit::scenario::Scenario`] may legally flip mid-run. Initialized
/// from the validated [`Config`] at build time and mutated *only* by
/// [`simkit::scenario::Intervenable::intervene`]; the `Config` itself
/// stays immutable after `GuessSim::new`. Every hot-path read of one of
/// these knobs goes through here, so a run with no interventions reads
/// exactly the configured values and stays byte-identical.
#[derive(Debug, Clone)]
struct Runtime {
    /// Current per-peer query rate (queries/sec); mirrors the workload.
    query_rate: f64,
    /// Fraction of newborns that are malicious.
    bad_peer_fraction: f64,
    /// Ping interval assigned to newborns.
    ping_interval: simkit::time::SimDuration,
    /// Walk width for honest queries.
    parallel_probes: usize,
    /// Active network partition: peers in different `slot % groups`
    /// classes cannot reach each other. `None` means fully connected.
    partition: Option<u32>,
    /// How link caches are kept fresh: pull-only (the paper's protocol),
    /// push invalidations + refreshes, or the hybrid of both.
    maintenance: MaintenanceMode,
}

impl Runtime {
    fn from_config(cfg: &Config) -> Self {
        Runtime {
            query_rate: cfg.system.query_rate,
            bad_peer_fraction: cfg.system.bad_peer_fraction,
            ping_interval: cfg.protocol.ping_interval,
            parallel_probes: cfg.protocol.parallel_probes,
            partition: None,
            maintenance: cfg.protocol.maintenance_mode,
        }
    }
}

/// The engine's event alphabet (public because it is the
/// [`Simulation::Event`] associated type). The periodic metrics snapshot
/// that used to be a fourth variant is now the kernel's own sample tick.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub enum Event {
    Burst {
        slot: SlotId,
        addr: PeerAddr,
    },
    Ping {
        slot: SlotId,
        addr: PeerAddr,
    },
    Death {
        slot: SlotId,
        addr: PeerAddr,
    },
    /// One relay hop of an in-flight push dissemination tree; `id` names
    /// a parked [`PushJob`] in the plane's slab.
    PushStep {
        id: u32,
    },
    /// Coalesced refresh flush for the subject occupying `slot`.
    PushFlush {
        slot: SlotId,
        addr: PeerAddr,
    },
    /// Lane mode only: a query from another lane spills over and probes
    /// one random peer of this lane for `target`. `pending` names the
    /// parked query in the origin lane's slab. Never scheduled on the
    /// serial path, so serial runs are byte-identical.
    RemoteProbe {
        src_lane: u32,
        pending: u32,
        target: QueryTarget,
    },
    /// Lane mode only: the answer to a [`Event::RemoteProbe`], routed
    /// back to the origin lane.
    RemotePong {
        pending: u32,
        outcome: RemoteOutcome,
    },
}

/// What a cross-lane spill probe found at its randomly chosen victim.
/// Lane-resident peers are always alive (deaths rebirth in place), so
/// there is no `Dead` arm — the serial probe loop's fourth outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteOutcome {
    /// The victim's capacity meter dropped the probe.
    Refused,
    /// Answered, but the library does not hold the wanted item.
    NoHit,
    /// Answered with a result.
    Hit,
}

/// A complete GUESS network simulation.
///
/// # Examples
///
/// ```no_run
/// use guess::config::Config;
/// use guess::engine::GuessSim;
/// use guess::Runnable;
///
/// let report = GuessSim::new(Config::default())?.run();
/// println!("probes/query = {:.1}", report.probes_per_query());
/// println!("unsatisfied  = {:.1}%", report.unsatisfaction() * 100.0);
/// # Ok::<(), guess::config::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct GuessSim {
    cfg: Config,
    rt: Runtime,
    peers: Vec<PeerState>,
    slots: Vec<PeerAddr>,
    /// Every live peer's link-cache block; dead peers' blocks are freed
    /// at death and recycled by their replacements, so the arena's
    /// footprint tracks the *population*, not the churn history.
    caches: CacheArena,
    /// Every live peer's library items, same recycling discipline.
    libs: LibraryArena,
    alloc: AddrAllocator,
    bad: BadRegistry,
    /// Push-maintenance state: who watches whom, plus in-flight update
    /// trees. Completely inert in `MaintenanceMode::Pull`.
    push: PushPlane,
    churn: ChurnDriver<LifetimeModel>,
    files: FileCountModel,
    qmodel: QueryModel,
    workload: QueryWorkload,
    rng_churn: RngStream,
    rng_query: RngStream,
    rng_policy: RngStream,
    rng_intro: RngStream,
    /// Drawn from only by the sampled measurement sweeps, and only once
    /// the population exceeds `metrics_sample_threshold` — runs that
    /// stay at or below the threshold never touch this stream, so their
    /// other streams (and reports) are byte-identical with sampling
    /// configured or not.
    rng_metrics: RngStream,
    /// Drawn from only by the lane runner (spill-lane selection and
    /// remote victim picks). Serial runs never touch it, so creating the
    /// stream cannot perturb golden outputs.
    rng_remote: RngStream,
    metrics: MetricsCollector,
    next_query: u64,
    /// Per-address "last query that considered this address" stamps —
    /// the dense replacement for a per-query `HashSet<PeerAddr>`.
    /// Indexed by `PeerAddr::index()`; the stamp is query id + 1, so 0
    /// means "never seen". See `query_first_visit`.
    query_seen: Vec<u64>,
    /// Reused copy buffer for "iterate one peer's cache while mutating
    /// another's" sites (query seeding, newborn cache seeding), so the
    /// per-event `to_vec` allocation is paid once per run.
    entry_scratch: Vec<CacheEntry>,
}

impl GuessSim {
    /// Builds a simulator for `cfg` and seeds the initial population.
    ///
    /// # Errors
    ///
    /// Returns the validation error if `cfg` is inconsistent.
    pub fn new(cfg: Config) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let seed = cfg.run.seed;
        let lifetimes = LifetimeModel::saroiu_like(cfg.system.lifespan_multiplier);
        let files = FileCountModel::gnutella_like();
        let catalog = Catalog::new(cfg.catalog).map_err(|_| ConfigError::EmptyNetwork)?;
        let qmodel = QueryModel::new(catalog);
        let workload = QueryWorkload::with_rate(cfg.system.query_rate)
            .map_err(|_| ConfigError::BadQueryRate)?;

        let network_size = cfg.system.network_size;
        let cache_size = cfg.protocol.cache_size;
        let interest_cap = cfg.protocol.push.interest_cap;
        let rt = Runtime::from_config(&cfg);
        let mut sim = GuessSim {
            cfg,
            rt,
            peers: Vec::new(),
            slots: Vec::new(),
            caches: CacheArena::with_peer_capacity(cache_size, network_size),
            libs: LibraryArena::new(),
            alloc: AddrAllocator::new(),
            bad: BadRegistry::new(network_size),
            push: PushPlane::new(interest_cap, network_size),
            churn: ChurnDriver::new(lifetimes),
            files,
            qmodel,
            workload,
            rng_churn: RngStream::from_seed(seed, "churn"),
            rng_query: RngStream::from_seed(seed, "query"),
            rng_policy: RngStream::from_seed(seed, "policy"),
            rng_intro: RngStream::from_seed(seed, "intro"),
            rng_metrics: RngStream::from_seed(seed, "metrics"),
            rng_remote: RngStream::from_seed(seed, "remote"),
            metrics: MetricsCollector::new(),
            next_query: 0,
            // Pre-sized for the initial population; grows with churn.
            query_seen: vec![0; network_size],
            entry_scratch: Vec::new(),
        };
        sim.populate();
        Ok(sim)
    }

    /// The configuration this simulator runs.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The peer table (all instances ever born, plus fabricated stubs).
    #[must_use]
    pub fn peers(&self) -> &[PeerState] {
        &self.peers
    }

    /// Addresses of the currently live peers, one per slot.
    #[must_use]
    pub fn live_addrs(&self) -> &[PeerAddr] {
        &self.slots
    }

    /// Creates the initial population and seeds its link caches. Event
    /// scheduling happens later, in [`GuessSim::schedule_initial`], once
    /// the kernel exists — the RNG draw order across both phases is
    /// unchanged, so runs stay byte-identical.
    fn populate(&mut self) {
        let n = self.cfg.system.network_size;
        for s in 0..n {
            let slot = SlotId(s as u32);
            let addr = self.birth_peer(slot, SimTime::ZERO);
            self.slots.push(addr);
        }
        // Seed link caches with pointers to random other initial peers.
        let seed_size = self.cfg.run.cache_seed_size.min(n - 1);
        for s in 0..n {
            let me = self.slots[s];
            let mut picks = Vec::with_capacity(seed_size);
            let raw = self.rng_churn.sample_indices(n - 1, seed_size);
            for r in raw {
                let other = if r >= s { r + 1 } else { r };
                picks.push(self.slots[other]);
            }
            for other in picks {
                let advertised = self.peers[other.index()].advertised_files();
                let entry = CacheEntry::new(other, SimTime::ZERO, advertised);
                let policy = self.cfg.protocol.cache_replacement;
                let h = self.peers[me.index()].cache();
                let outcome = self.caches.offer(h, entry, policy, &mut self.rng_policy);
                if !matches!(outcome, InsertOutcome::Rejected) {
                    self.push_register(me, other);
                }
            }
        }
    }

    /// Schedules every initial peer's events into the kernel's queue.
    fn schedule_initial<T: TraceSink>(&mut self, ctx: &mut SimCtx<'_, Event, T>) {
        for s in 0..self.slots.len() {
            let slot = SlotId(s as u32);
            let addr = self.slots[s];
            self.schedule_peer_events(slot, addr, SimTime::ZERO, true, ctx);
        }
    }

    /// Creates one peer instance (without installing it in a slot).
    fn birth_peer(&mut self, slot: SlotId, now: SimTime) -> PeerAddr {
        let addr = self.alloc.allocate();
        debug_assert_eq!(addr.index(), self.peers.len());
        let bad = self.rng_churn.chance(self.rt.bad_peer_fraction);
        let (behavior, advertised, library) = if bad {
            // Malicious peers advertise the largest plausible library to
            // game metadata-trusting policies, but hold nothing.
            (
                Behavior::Malicious,
                self.files.max_files(),
                LibraryHandle::EMPTY,
            )
        } else {
            let count = self.files.sample_file_count(&mut self.rng_churn);
            let library =
                self.qmodel
                    .catalog()
                    .build_library_in(count, &mut self.rng_churn, &mut self.libs);
            (Behavior::Good, count, library)
        };
        let mut peer = PeerState::new(
            addr,
            slot,
            behavior,
            now,
            advertised,
            library,
            self.caches.alloc(),
            self.cfg.system.max_probes_per_second,
        );
        peer.set_ping_interval(self.rt.ping_interval);
        if let Some(pp) = self.cfg.protocol.probe_payments {
            peer.open_account(crate::payments::ProbeAccount::new(pp, now));
        }
        if behavior == Behavior::Good && self.rng_churn.chance(self.cfg.system.selfish_fraction) {
            peer.set_selfish(true);
            self.metrics.counters_mut().incr("selfish_births");
        }
        self.peers.push(peer);
        if bad {
            self.bad.insert(slot, addr);
        }
        self.metrics.counters_mut().incr("births");
        addr
    }

    /// Schedules death / ping / burst events for a (newly born) peer.
    /// The lifetime draw happens inside [`ChurnDriver::spawn`], at the
    /// same position in the churn stream it always occupied.
    fn schedule_peer_events<T: TraceSink>(
        &mut self,
        slot: SlotId,
        addr: PeerAddr,
        now: SimTime,
        initial: bool,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        self.churn.spawn(
            ctx,
            &mut self.rng_churn,
            now,
            addr.index() as u64,
            Event::Death { slot, addr },
        );
        // Stagger the first ping uniformly within one interval so the
        // network's pings do not arrive in lockstep.
        let base = self.effective_ping_interval(self.rt.ping_interval);
        let ping_phase = if initial {
            base * self.rng_churn.f64()
        } else {
            base
        };
        ctx.schedule(now + ping_phase, Event::Ping { slot, addr });
        if self.cfg.run.simulate_queries && self.peers[addr.index()].behavior() == Behavior::Good {
            let gap = self.workload.sample_burst_gap(&mut self.rng_query);
            ctx.schedule(now + gap, Event::Burst { slot, addr });
        }
    }

    /// True if the event's subject still occupies its slot.
    fn is_current(&self, slot: SlotId, addr: PeerAddr) -> bool {
        self.slots[slot.index()] == addr
    }

    /// True when no active partition separates `a` from `b`. Peers in
    /// different `slot % groups` classes cannot exchange messages; to
    /// the sender the target is indistinguishable from a dead peer.
    /// Callers must check liveness first: fabricated dead stubs carry a
    /// meaningless slot.
    fn reachable(&self, a: PeerAddr, b: PeerAddr) -> bool {
        match self.rt.partition {
            None => true,
            Some(groups) => {
                let g = groups as usize;
                self.peers[a.index()].slot().index() % g == self.peers[b.index()].slot().index() % g
            }
        }
    }

    // ------------------------------------------------------------------
    // Churn
    // ------------------------------------------------------------------

    fn on_death<T: TraceSink>(
        &mut self,
        slot: SlotId,
        addr: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if !self.is_current(slot, addr) {
            return;
        }
        self.churn.died(ctx, now, addr.index() as u64);
        self.metrics.counters_mut().incr("deaths");
        let (load, cache_h, lib_h) = {
            let p = &mut self.peers[addr.index()];
            p.kill(now);
            let (cache_h, lib_h) = p.release_storage();
            (p.probes_received(), cache_h, lib_h)
        };
        // The dead peer's arena blocks go straight back on the free
        // lists; its replacement (or a later newborn) recycles them.
        self.caches.free(cache_h);
        self.libs.free(lib_h);
        self.metrics.record_load(load);
        self.bad.remove(slot, addr);

        // Constant population: a replacement is born immediately and seeds
        // its cache with the random-friend policy — copy a live friend's
        // link cache.
        let newborn = self.birth_peer(slot, now);
        self.slots[slot.index()] = newborn;
        if let Some(friend) = self
            .random_live_peer(Some(newborn))
            .filter(|&f| self.reachable(newborn, f))
        {
            let mut entries = std::mem::take(&mut self.entry_scratch);
            entries.clear();
            let fh = self.peers[friend.index()].cache();
            entries.extend_from_slice(self.caches.entries(fh));
            let policy = self.cfg.protocol.cache_replacement;
            let nh = self.peers[newborn.index()].cache();
            for &e in &entries {
                if e.addr() != newborn {
                    let outcome = self.caches.offer(nh, e, policy, &mut self.rng_policy);
                    self.trace_eviction(ctx, now, newborn, outcome);
                    if !matches!(outcome, InsertOutcome::Rejected) {
                        self.push_register(newborn, e.addr());
                    }
                }
            }
            self.entry_scratch = entries;
        }
        self.schedule_peer_events(slot, newborn, now, false, ctx);

        // The departed instance pushes its own obituary: every registered
        // watcher gets an invalidation. Draining the list unconditionally
        // keeps the registry clean for the slot's next occupant (a no-op
        // take of an empty list in pull mode).
        let watchers = self.push.take_interest(slot);
        if self.rt.maintenance != MaintenanceMode::Pull && !watchers.is_empty() {
            self.disseminate(
                UpdateKind::Invalidate,
                addr,
                watchers,
                self.cfg.protocol.push.ttl,
                now,
                ctx,
            );
        }
    }

    /// Emits a [`TraceRecord::CacheEvict`] when a cache offer displaced
    /// an incumbent. Free for untraced runs: the outcome is computed
    /// anyway and the guard folds to `false`.
    fn trace_eviction<T: TraceSink>(
        &self,
        ctx: &mut SimCtx<'_, Event, T>,
        now: SimTime,
        owner: PeerAddr,
        outcome: InsertOutcome,
    ) {
        if ctx.tracing() {
            if let InsertOutcome::Replaced(victim) = outcome {
                ctx.emit(
                    now,
                    TraceRecord::CacheEvict {
                        owner: owner.index() as u64,
                        evicted: victim.index() as u64,
                    },
                );
            }
        }
    }

    /// A uniformly random live peer, excluding `not` if given.
    fn random_live_peer(&mut self, not: Option<PeerAddr>) -> Option<PeerAddr> {
        let n = self.slots.len();
        if n == 0 {
            return None;
        }
        for _ in 0..32 {
            let cand = self.slots[self.rng_churn.below(n)];
            if Some(cand) != not {
                return Some(cand);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Maintenance pings
    // ------------------------------------------------------------------

    fn on_ping<T: TraceSink>(
        &mut self,
        slot: SlotId,
        addr: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if !self.is_current(slot, addr) {
            return;
        }
        if self.peers[addr.index()].behavior() == Behavior::Malicious {
            self.malicious_ping(addr, now, ctx);
        } else {
            let outcome = self.good_ping(addr, now, ctx);
            self.adapt_ping_interval(addr, outcome);
            // In push mode the ping doubles as the subject's re-publication
            // cycle: watchers get a (coalesced) refresh of our entry.
            self.maybe_request_refresh(slot, addr, now, ctx);
        }
        let interval = self.effective_ping_interval(self.peers[addr.index()].ping_interval());
        ctx.schedule(now + interval, Event::Ping { slot, addr });
    }

    /// An honest peer pings one cached neighbor chosen by `PingProbe`.
    /// Returns whether the neighbor was found alive.
    fn good_ping<T: TraceSink>(
        &mut self,
        pinger: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) -> Option<bool> {
        // Under push maintenance the refresh plane keeps re-dating live
        // entries' TS, so the stretched (rarer) pings audit stalest-first:
        // they converge on dead entries — the one job pushes can't do —
        // instead of re-touching what refreshes already keep fresh.
        let probe_policy = if self.rt.maintenance == MaintenanceMode::Push {
            SelectionPolicy::Lru
        } else {
            self.cfg.protocol.ping_probe
        };
        let picked = {
            let h = self.peers[pinger.index()].cache();
            select_top_k(
                probe_policy,
                self.caches.entries(h),
                1,
                &mut self.rng_policy,
            )
        };
        let entry = picked.first().copied()?; // empty cache: nothing to maintain
        let dst = entry.addr();
        self.metrics.counters_mut().incr("pings_sent");
        if !self.peers[dst.index()].is_alive() || !self.reachable(pinger, dst) {
            if ctx.tracing() {
                ctx.emit(
                    now,
                    TraceRecord::Probe {
                        query: NO_QUERY,
                        target: dst.index() as u64,
                        kind: ProbeKind::Ping,
                        outcome: ProbeOutcome::Dead,
                    },
                );
            }
            let h = self.peers[pinger.index()].cache();
            self.caches.remove(h, dst);
            if self.cfg.protocol.distrust_pongs {
                self.note_dead_entry(pinger, dst);
            }
            self.metrics.counters_mut().incr("pings_dead");
            return Some(false);
        }
        if ctx.tracing() {
            ctx.emit(
                now,
                TraceRecord::Probe {
                    query: NO_QUERY,
                    target: dst.index() as u64,
                    kind: ProbeKind::Ping,
                    outcome: ProbeOutcome::Good,
                },
            );
        }
        // The neighbor answers: refresh our TS for it and absorb its pong.
        let h = self.peers[pinger.index()].cache();
        self.caches.touch(h, dst, now);
        if self.cfg.protocol.distrust_pongs {
            self.peers[pinger.index()].reputation_mut().note_alive(dst);
        }
        self.apply_introduction(dst, pinger, now, ctx);
        let dh = self.peers[dst.index()].cache();
        self.caches.touch(dh, pinger, now);
        let pong = self.build_pong(dst, self.cfg.protocol.ping_pong, now);
        self.absorb_pong(pinger, dst, &pong, now, ctx);
        self.metrics.counters_mut().incr("pings_answered");
        Some(true)
    }

    /// §6.1's runtime guidance: shrink the ping interval when probes keep
    /// hitting dead addresses, stretch it when the cache looks healthy.
    fn adapt_ping_interval(&mut self, addr: PeerAddr, outcome: Option<bool>) {
        let Some(params) = self.cfg.protocol.adaptive_ping else {
            return;
        };
        let Some(alive) = outcome else {
            return;
        };
        let peer = &mut self.peers[addr.index()];
        let factor = if alive {
            params.on_alive
        } else {
            params.on_dead
        };
        let next = (peer.ping_interval().as_secs() * factor)
            .clamp(params.min_interval.as_secs(), params.max_interval.as_secs());
        peer.set_ping_interval(simkit::time::SimDuration::from_secs(next));
    }

    /// Charges the reputation of whoever shared the now-dead `subject`
    /// with `owner`; a source crossing the blacklist threshold is also
    /// evicted from `owner`'s link cache on the spot.
    fn note_dead_entry(&mut self, owner: PeerAddr, subject: PeerAddr) {
        let before = self.peers[owner.index()].reputation().blacklisted_count();
        let source = self.peers[owner.index()]
            .reputation_mut()
            .note_dead(subject);
        if self.peers[owner.index()].reputation().blacklisted_count() > before {
            self.metrics.counters_mut().incr("sources_blacklisted");
            if let Some(source) = source {
                let h = self.peers[owner.index()].cache();
                self.caches.remove(h, source);
            }
        }
    }

    /// A malicious peer pings a random live victim purely to trigger the
    /// introduction rule and worm its way into caches.
    fn malicious_ping<T: TraceSink>(
        &mut self,
        pinger: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        let Some(dst) = self.random_live_peer(Some(pinger)) else {
            return;
        };
        if self.peers[dst.index()].behavior() == Behavior::Good && self.reachable(pinger, dst) {
            self.apply_introduction(dst, pinger, now, ctx);
        }
    }

    /// The probed/pinged peer `dst` adds the initiator to its own cache
    /// with probability `IntroProb` (§2.2).
    fn apply_introduction<T: TraceSink>(
        &mut self,
        dst: PeerAddr,
        initiator: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if !self.rng_intro.chance(self.cfg.protocol.intro_prob) {
            return;
        }
        if self.peers[dst.index()].behavior() == Behavior::Malicious {
            return; // attackers do not maintain honest caches
        }
        let advertised = self.peers[initiator.index()].advertised_files();
        let entry = CacheEntry::new(initiator, now, advertised);
        let policy = self.cfg.protocol.cache_replacement;
        let h = self.peers[dst.index()].cache();
        let outcome = self.caches.offer(h, entry, policy, &mut self.rng_policy);
        self.trace_eviction(ctx, now, dst, outcome);
        if !matches!(outcome, InsertOutcome::Rejected) {
            self.push_register(dst, initiator);
        }
        self.metrics.counters_mut().incr("introductions");
    }

    /// Builds the pong `responder` attaches to a reply, honest or poisoned.
    fn build_pong(
        &mut self,
        responder: PeerAddr,
        policy: crate::policy::SelectionPolicy,
        now: SimTime,
    ) -> Pong {
        if self.peers[responder.index()].behavior() == Behavior::Malicious {
            return self.build_poison_pong(responder, now);
        }
        let entries = {
            let h = self.peers[responder.index()].cache();
            select_top_k(
                policy,
                self.caches.entries(h),
                self.cfg.protocol.pong_size,
                &mut self.rng_policy,
            )
        };
        Pong { entries }
    }

    /// A malicious pong: dead fabricated addresses, colluder addresses, or
    /// (for the control case) real good peers — always with inflated
    /// metadata.
    fn build_poison_pong(&mut self, attacker: PeerAddr, now: SimTime) -> Pong {
        let k = self.cfg.protocol.pong_size;
        let inflated_files = self.files.max_files();
        let mut entries = Vec::with_capacity(k);
        match self.cfg.system.bad_pong_behavior {
            BadPongBehavior::Dead => {
                let slot = self.ensure_fabricated_pool(attacker, now);
                let pool_len = self.bad.pool(slot).len();
                for i in self.rng_churn.sample_indices(pool_len, k) {
                    entries.push(CacheEntry::from_pong(
                        self.bad.pool(slot)[i],
                        now,
                        inflated_files,
                        POISON_NUM_RES,
                    ));
                }
            }
            BadPongBehavior::Bad => {
                if !self.bad.is_empty() {
                    let m = self.bad.len();
                    for i in self.rng_churn.sample_indices(m, k) {
                        entries.push(CacheEntry::from_pong(
                            self.bad.member(i),
                            now,
                            inflated_files,
                            POISON_NUM_RES,
                        ));
                    }
                }
            }
            BadPongBehavior::Good => {
                for _ in 0..k {
                    if let Some(p) = self.random_live_peer(Some(attacker)) {
                        entries.push(CacheEntry::from_pong(
                            p,
                            now,
                            inflated_files,
                            POISON_NUM_RES,
                        ));
                    }
                }
            }
        }
        Pong { entries }
    }

    /// Lazily allocates `attacker`'s fabricated pool and returns the
    /// attacker's slot (the registry key the pool is stored under).
    fn ensure_fabricated_pool(&mut self, attacker: PeerAddr, now: SimTime) -> SlotId {
        let slot = self.peers[attacker.index()].slot();
        debug_assert_eq!(self.bad.occupant(slot), Some(attacker));
        if !self.bad.pool(slot).is_empty() {
            return slot;
        }
        let mut pool = Vec::with_capacity(FABRICATED_POOL_SIZE);
        for _ in 0..FABRICATED_POOL_SIZE {
            let fake = self.alloc.allocate();
            debug_assert_eq!(fake.index(), self.peers.len());
            self.peers.push(PeerState::dead_stub(fake, now));
            pool.push(fake);
        }
        self.bad.set_pool(slot, pool);
        slot
    }

    /// The receiver of a pong merges its entries into the link cache,
    /// honouring `ResetNumResults` (MR\*) and the pong-source reputation
    /// filter (entries from blacklisted sources are dropped unseen).
    fn absorb_pong<T: TraceSink>(
        &mut self,
        receiver: PeerAddr,
        source: PeerAddr,
        pong: &Pong,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if self.cfg.protocol.distrust_pongs
            && self.peers[receiver.index()]
                .reputation()
                .is_blacklisted(source)
        {
            self.metrics.counters_mut().incr("pongs_filtered");
            return;
        }
        let policy = self.cfg.protocol.cache_replacement;
        for e in &pong.entries {
            if e.addr() == receiver {
                continue;
            }
            let mut entry = *e;
            if self.cfg.protocol.reset_num_results {
                entry.reset_num_res();
            }
            if self.cfg.protocol.distrust_pongs {
                if self.peers[receiver.index()]
                    .reputation()
                    .is_blacklisted(entry.addr())
                {
                    continue; // never re-admit a known liar
                }
                self.peers[receiver.index()]
                    .reputation_mut()
                    .note_shared(source, entry.addr());
            }
            let h = self.peers[receiver.index()].cache();
            let outcome = self.caches.offer(h, entry, policy, &mut self.rng_policy);
            self.trace_eviction(ctx, now, receiver, outcome);
            if !matches!(outcome, InsertOutcome::Rejected) {
                self.push_register(receiver, entry.addr());
            }
        }
    }

    // ------------------------------------------------------------------
    // Push maintenance (see crate::push and DESIGN.md)
    // ------------------------------------------------------------------

    /// The ping interval actually scheduled. Push mode relaxes pull
    /// maintenance by `ping_stretch`: refreshes ride the rarer ping
    /// cycle, so the polling bandwidth drops with it. Pull and hybrid
    /// runs pass the base interval through untouched.
    fn effective_ping_interval(
        &self,
        base: simkit::time::SimDuration,
    ) -> simkit::time::SimDuration {
        if self.rt.maintenance == MaintenanceMode::Push {
            base * self.cfg.protocol.push.ping_stretch
        } else {
            base
        }
    }

    /// Records `watcher`'s interest in `subject` after an entry about
    /// `subject` landed in `watcher`'s cache — via a pong, an
    /// introduction, or newborn cache seeding. Registration piggybacks
    /// on the exchange that carried the entry (no extra message); it is
    /// skipped when the subject cannot serve pushes — dead, malicious,
    /// or unreachable.
    fn push_register(&mut self, watcher: PeerAddr, subject: PeerAddr) {
        if self.rt.maintenance == MaintenanceMode::Pull {
            return;
        }
        let s = &self.peers[subject.index()];
        if !s.is_alive() || s.behavior() != Behavior::Good {
            return;
        }
        let subject_slot = s.slot();
        if !self.reachable(watcher, subject) {
            return;
        }
        let watcher_slot = self.peers[watcher.index()].slot();
        self.push.register(
            subject_slot,
            Interest {
                slot: watcher_slot,
                addr: watcher,
            },
        );
    }

    /// Requests a refresh push of `addr`'s own entry (push mode only).
    /// The first request in a window schedules the flush; later requests
    /// coalesce into it.
    fn maybe_request_refresh<T: TraceSink>(
        &mut self,
        slot: SlotId,
        addr: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if self.rt.maintenance != MaintenanceMode::Push || self.push.interest(slot).is_empty() {
            return;
        }
        if self.push.request_refresh(slot) {
            let window = self.cfg.protocol.push.coalesce_window;
            ctx.schedule(now + window, Event::PushFlush { slot, addr });
        } else {
            self.metrics.counters_mut().incr("push_coalesced");
        }
    }

    /// The scheduled end of a coalesce window: push one refresh carrying
    /// the subject's latest state. Refreshes are deliberately cheaper
    /// than invalidations — each flush re-dates only the next `fanout`
    /// watchers and rotates the registry, so successive flushes cover
    /// every watcher round-robin without a relay tree. A subject that
    /// died in the window pushes nothing (its death already disseminated
    /// an invalidation), and a run flipped out of push mode stays quiet.
    fn on_push_flush<T: TraceSink>(
        &mut self,
        slot: SlotId,
        addr: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        self.push.clear_refresh(slot);
        if self.rt.maintenance != MaintenanceMode::Push || !self.is_current(slot, addr) {
            return;
        }
        let list = self.push.interest(slot);
        let k = self.cfg.protocol.push.fanout.min(list.len());
        if k == 0 {
            return;
        }
        let watchers = list[..k].to_vec();
        self.push.rotate(slot, k);
        self.disseminate(
            UpdateKind::Refresh,
            addr,
            watchers,
            self.cfg.protocol.push.ttl,
            now,
            ctx,
        );
    }

    /// One relay hop fires: the parked subtree disseminates from here.
    /// Updates in flight when the mode flips to pull are dropped.
    fn on_push_step<T: TraceSink>(
        &mut self,
        id: u32,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        let Some(job) = self.push.take_job(id) else {
            return;
        };
        if self.rt.maintenance == MaintenanceMode::Pull {
            self.metrics
                .counters_mut()
                .add("push_dropped", job.share.len() as u64);
            return;
        }
        self.disseminate(job.kind, job.subject, job.share, job.ttl, now, ctx);
    }

    /// One node of the CUP-style dissemination tree: deliver to the first
    /// `fanout` watchers directly, then split the residue round-robin
    /// among the watchers that accepted delivery — each forwards its
    /// share one `probe_interval` later with the TTL decremented. Shares
    /// whose relay failed (or whose TTL ran out) are lost, exactly like a
    /// broken branch of a real dissemination tree.
    fn disseminate<T: TraceSink>(
        &mut self,
        kind: UpdateKind,
        subject: PeerAddr,
        recipients: Vec<Interest>,
        ttl: u32,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        let fanout = self.cfg.protocol.push.fanout;
        let direct_n = recipients.len().min(fanout);
        let mut relays = 0usize;
        for &w in &recipients[..direct_n] {
            if self.deliver_push(kind, subject, w, now, ctx) {
                relays += 1;
            }
        }
        let residue = &recipients[direct_n..];
        if residue.is_empty() {
            return;
        }
        if relays == 0 || ttl <= 1 {
            self.metrics
                .counters_mut()
                .add("push_dropped", residue.len() as u64);
            return;
        }
        let mut shares: Vec<Vec<Interest>> = vec![Vec::new(); relays];
        for (i, &w) in residue.iter().enumerate() {
            shares[i % relays].push(w);
        }
        let hop = self.cfg.protocol.probe_interval;
        for share in shares {
            if share.is_empty() {
                continue;
            }
            let id = self.push.enqueue_job(PushJob {
                kind,
                subject,
                ttl: ttl - 1,
                share,
            });
            ctx.schedule(now + hop, Event::PushStep { id });
        }
    }

    /// Delivers one pushed update to one watcher. Pushes are first-class
    /// traffic: they pay the same per-second capacity admission as query
    /// probes and count toward the receiver's load. Returns whether the
    /// watcher accepted (and may therefore relay a share of the tree).
    fn deliver_push<T: TraceSink>(
        &mut self,
        kind: UpdateKind,
        subject: PeerAddr,
        w: Interest,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) -> bool {
        let (counter, trace_kind) = match kind {
            UpdateKind::Invalidate => ("push_invalidations", ProbeKind::Invalidate),
            UpdateKind::Refresh => ("push_refreshes", ProbeKind::Refresh),
        };
        self.metrics.counters_mut().incr(counter);
        let trace = |ctx: &mut SimCtx<'_, Event, T>, outcome: ProbeOutcome| {
            if ctx.tracing() {
                ctx.emit(
                    now,
                    TraceRecord::Probe {
                        query: NO_QUERY,
                        target: w.addr.index() as u64,
                        kind: trace_kind,
                        outcome,
                    },
                );
            }
        };
        // The watcher instance must still occupy its slot; `subject` may
        // be freshly dead (invalidations), but its slot field is intact,
        // so the partition check is well-defined either way.
        if !self.is_current(w.slot, w.addr) || !self.reachable(subject, w.addr) {
            trace(ctx, ProbeOutcome::Dead);
            self.metrics.counters_mut().incr("push_dropped");
            return false;
        }
        self.peers[w.addr.index()].note_probe_received();
        if self.peers[w.addr.index()].capacity_mut().admit(now) == Admission::Refused {
            trace(ctx, ProbeOutcome::Refused);
            self.metrics.counters_mut().incr("push_refused");
            return false;
        }
        let h = self.peers[w.addr.index()].cache();
        match kind {
            UpdateKind::Invalidate => {
                self.caches.remove(h, subject);
            }
            UpdateKind::Refresh => {
                self.caches.touch(h, subject, now);
            }
        }
        trace(ctx, ProbeOutcome::Good);
        true
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn on_burst<T: TraceSink>(
        &mut self,
        slot: SlotId,
        addr: PeerAddr,
        now: SimTime,
        ctx: &mut SimCtx<'_, Event, T>,
    ) {
        if !self.is_current(slot, addr) {
            return;
        }
        let burst = self.workload.sample_burst_size(&mut self.rng_query);
        for _ in 0..burst {
            self.execute_query(addr, now, ctx);
        }
        let gap = self.workload.sample_burst_gap(&mut self.rng_query);
        ctx.schedule(now + gap, Event::Burst { slot, addr });
    }
}

impl<T: TraceSink> Simulation<T> for GuessSim {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, ctx: &mut SimCtx<'_, Event, T>) {
        match event {
            Event::Death { slot, addr } => self.on_death(slot, addr, now, ctx),
            Event::Ping { slot, addr } => self.on_ping(slot, addr, now, ctx),
            Event::Burst { slot, addr } => self.on_burst(slot, addr, now, ctx),
            Event::PushStep { id } => self.on_push_step(id, now, ctx),
            Event::PushFlush { slot, addr } => self.on_push_flush(slot, addr, now, ctx),
            Event::RemoteProbe { .. } | Event::RemotePong { .. } => {
                // Intercepted by the lane runner before delegation; a
                // serial kernel never schedules them.
                debug_assert!(false, "remote events reached the serial handler");
            }
        }
    }

    fn sample(&mut self, now: SimTime) {
        self.sample_cache_health(now);
        self.sample_connectivity();
    }

    fn live_peers(&self) -> u64 {
        self.slots
            .iter()
            .filter(|a| self.peers[a.index()].is_alive())
            .count() as u64
    }
}

impl GuessSim {
    /// The one driver both run surfaces share: `scenario: None` is the
    /// plain run, `Some` routes through [`Kernel::run_scenario`]. The
    /// two paths are byte-identical for an empty timeline.
    fn run_inner<T: TraceSink>(
        mut self,
        sink: T,
        scenario: Option<&simkit::scenario::Scenario>,
    ) -> Result<(RunReport, T), simkit::scenario::ScenarioError> {
        let params = KernelParams::new(self.cfg.run.duration)
            .with_warmup(self.cfg.run.warmup)
            .with_sampling(self.cfg.run.sample_interval);
        let mut kernel = Kernel::new(params, sink);
        self.schedule_initial(&mut kernel.ctx());
        match scenario {
            None => kernel.run(&mut self),
            Some(s) => kernel.run_scenario(&mut self, s)?,
        }
        // Loads of peers still alive at the end of the run.
        for &addr in &self.slots {
            let p = &self.peers[addr.index()];
            if p.is_alive() {
                self.metrics.record_load(p.probes_received());
            }
        }
        let events_processed = kernel.events_processed();
        let mut report = self.metrics.finish();
        report.events_processed = events_processed;
        Ok((report, kernel.into_sink()))
    }
}

impl Runnable for GuessSim {
    type Report = RunReport;

    fn run_traced<T: TraceSink>(self, sink: T) -> (RunReport, T) {
        self.run_inner(sink, None)
            .expect("runs without a scenario cannot fail")
    }

    fn run_scenario_traced<T: TraceSink>(
        self,
        scenario: &simkit::scenario::Scenario,
        sink: T,
    ) -> Result<(RunReport, T), simkit::scenario::ScenarioError> {
        self.run_inner(sink, Some(scenario))
    }
}

impl SimReport for RunReport {
    fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::policy::SelectionPolicy;
    use simkit::time::SimDuration;

    fn tiny(seed: u64) -> Config {
        let mut cfg = Config::small_test(seed);
        cfg.run.duration = SimDuration::from_secs(200.0);
        cfg.run.warmup = SimDuration::from_secs(50.0);
        cfg
    }

    #[test]
    fn runs_to_completion_and_reports() {
        let report = GuessSim::new(tiny(1)).unwrap().run();
        assert!(report.queries > 0, "some queries must execute");
        assert!(report.probes_per_query() > 0.0);
        assert!(report.unsatisfaction() <= 1.0);
        assert!(!report.loads.is_empty());
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = GuessSim::new(tiny(7)).unwrap().run();
        let b = GuessSim::new(tiny(7)).unwrap().run();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.unsatisfied, b.unsatisfied);
        assert_eq!(a.probes_per_query(), b.probes_per_query());
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.counters.get("births"), b.counters.get("births"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = GuessSim::new(tiny(1)).unwrap().run();
        let b = GuessSim::new(tiny(2)).unwrap().run();
        // Astronomically unlikely to coincide exactly.
        assert!(a.probes_per_query() != b.probes_per_query() || a.queries != b.queries);
    }

    #[test]
    fn churn_replaces_peers_keeping_population_constant() {
        let mut cfg = tiny(3);
        cfg.system.lifespan_multiplier = 0.05; // aggressive churn
        let sim = GuessSim::new(cfg.clone()).unwrap();
        let n = cfg.system.network_size;
        let report = sim.run();
        assert!(
            report.counters.get("deaths") > 0,
            "peers must die under churn"
        );
        assert_eq!(
            report.counters.get("births"),
            report.counters.get("deaths") + n as u64,
            "every death births a replacement"
        );
    }

    #[test]
    fn queries_can_be_disabled() {
        let mut cfg = tiny(4);
        cfg.run.simulate_queries = false;
        let report = GuessSim::new(cfg).unwrap().run();
        assert_eq!(report.queries, 0);
        assert!(
            report.counters.get("pings_sent") > 0,
            "maintenance continues"
        );
        assert!(report.largest_component.is_some());
    }

    #[test]
    fn connectivity_sampled_and_mostly_connected_with_short_ping_interval() {
        let mut cfg = tiny(5);
        cfg.run.simulate_queries = false;
        cfg.protocol.ping_interval = SimDuration::from_secs(5.0);
        let report = GuessSim::new(cfg.clone()).unwrap().run();
        let lcc = report.largest_component.expect("sampled");
        assert!(
            lcc > cfg.system.network_size as f64 * 0.8,
            "well-maintained overlay should be mostly connected, got {lcc}"
        );
    }

    #[test]
    fn sampled_metrics_at_stride_one_match_exhaustive_exactly() {
        // Threshold 0 with sample size = N forces the sampled code path
        // (stride 1, phase 0) over every slot — the reports must be
        // byte-identical to the default exhaustive sweep.
        let exhaustive = GuessSim::new(tiny(41)).unwrap().run();
        let n = tiny(41).system.network_size;
        let sampled = GuessSim::new(tiny(41).with_metrics_sampling(0, n))
            .unwrap()
            .run();
        assert_eq!(exhaustive.queries, sampled.queries);
        assert_eq!(exhaustive.loads, sampled.loads);
        assert_eq!(exhaustive.live_fraction, sampled.live_fraction);
        assert_eq!(exhaustive.live_absolute, sampled.live_absolute);
        assert_eq!(exhaustive.good_entries, sampled.good_entries);
        assert_eq!(exhaustive.largest_component, sampled.largest_component);
        assert_eq!(exhaustive.mean_staleness, sampled.mean_staleness);
    }

    #[test]
    fn sampled_metrics_approximate_the_exhaustive_sweep() {
        // Stride-2 sampling estimates the same quantities from half the
        // slots. The non-metrics streams are untouched, so the query
        // metrics stay identical; the sampled estimates must land close.
        let mut cfg = tiny(42);
        cfg.protocol.ping_interval = SimDuration::from_secs(5.0);
        let exhaustive = GuessSim::new(cfg.clone()).unwrap().run();
        let n = cfg.system.network_size;
        let sampled = GuessSim::new(cfg.with_metrics_sampling(0, n / 2))
            .unwrap()
            .run();
        assert_eq!(exhaustive.queries, sampled.queries);
        assert_eq!(exhaustive.loads, sampled.loads);
        let (e_lcc, s_lcc) = (
            exhaustive.largest_component.unwrap(),
            sampled.largest_component.unwrap(),
        );
        assert!(
            (s_lcc - e_lcc).abs() / e_lcc < 0.25,
            "sampled LCC {s_lcc} vs exhaustive {e_lcc}"
        );
        let (e_live, s_live) = (
            exhaustive.live_fraction.unwrap(),
            sampled.live_fraction.unwrap(),
        );
        assert!(
            (s_live - e_live).abs() < 0.1,
            "sampled live fraction {s_live} vs exhaustive {e_live}"
        );
    }

    #[test]
    fn mfs_beats_random_on_probe_cost() {
        let mut base = tiny(6);
        base.run.duration = SimDuration::from_secs(400.0);
        base.run.warmup = SimDuration::from_secs(100.0);
        let random = GuessSim::new(base.clone()).unwrap().run();
        let mut mfs_cfg = base;
        mfs_cfg.protocol = mfs_cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
        let mfs = GuessSim::new(mfs_cfg).unwrap().run();
        assert!(
            mfs.probes_per_query() < random.probes_per_query(),
            "MFS ({:.1}) should beat Random ({:.1})",
            mfs.probes_per_query(),
            random.probes_per_query()
        );
    }

    #[test]
    fn bad_peers_receive_no_result_credit() {
        let mut cfg = tiny(8);
        cfg.system.bad_peer_fraction = 0.3;
        let report = GuessSim::new(cfg).unwrap().run();
        // With 30% attackers the run must still complete and report sanely.
        assert!(report.queries > 0);
        assert!(report.good_entries.is_some());
    }

    #[test]
    fn capacity_limit_produces_refusals_under_pressure() {
        let mut cfg = tiny(9);
        cfg.system.max_probes_per_second = Some(1);
        cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
        let report = GuessSim::new(cfg).unwrap().run();
        assert!(
            report.refused_per_query() > 0.0,
            "a 1-probe/s cap under MFS hotspotting must refuse something"
        );
    }

    #[test]
    fn unlimited_capacity_never_refuses() {
        let mut cfg = tiny(10);
        cfg.system.max_probes_per_second = None;
        let report = GuessSim::new(cfg).unwrap().run();
        assert_eq!(report.refused_per_query(), 0.0);
    }

    #[test]
    fn live_fraction_is_a_fraction() {
        let report = GuessSim::new(tiny(11)).unwrap().run();
        let f = report.live_fraction.expect("sampled");
        assert!((0.0..=1.0).contains(&f), "live fraction {f}");
        assert!(report.live_absolute.unwrap() >= 0.0);
    }

    #[test]
    fn selfish_peers_blast_wide_volleys() {
        let mut cfg = tiny(21);
        cfg.system.selfish_fraction = 0.3;
        cfg.system.selfish_parallelism = 40;
        let report = GuessSim::new(cfg).unwrap().run();
        assert!(report.counters.get("selfish_births") > 0);
        assert!(report.counters.get("selfish_queries") > 0);
        // Selfish volleys finish almost immediately; mean response falls
        // below the all-serial baseline.
        let serial = GuessSim::new(tiny(21)).unwrap().run();
        assert!(report.mean_response_secs() < serial.mean_response_secs());
    }

    #[test]
    fn selfish_volleys_inflate_load_under_capacity_limits() {
        let mut honest = tiny(22);
        honest.system.max_probes_per_second = Some(5);
        let mut selfish = honest.clone();
        selfish.system.selfish_fraction = 0.5;
        selfish.system.selfish_parallelism = 60;
        let h = GuessSim::new(honest).unwrap().run();
        let s = GuessSim::new(selfish).unwrap().run();
        assert!(
            s.refused_per_query() >= h.refused_per_query(),
            "selfish volleys should push receivers into refusal at least as hard \
             ({:.2} vs {:.2})",
            s.refused_per_query(),
            h.refused_per_query()
        );
    }

    #[test]
    fn adaptive_ping_speeds_up_under_churn() {
        use crate::config::AdaptivePing;
        let mut fixed = tiny(23);
        fixed.run.simulate_queries = false;
        fixed.system.lifespan_multiplier = 0.1; // brutal churn
        fixed.protocol.ping_interval = SimDuration::from_secs(120.0);
        let mut adaptive = fixed.clone();
        adaptive.protocol.adaptive_ping = Some(AdaptivePing::default());
        let f = GuessSim::new(fixed).unwrap().run();
        let a = GuessSim::new(adaptive).unwrap().run();
        assert!(
            a.counters.get("pings_sent") > f.counters.get("pings_sent"),
            "dead probes should drive the adaptive interval down: {} vs {}",
            a.counters.get("pings_sent"),
            f.counters.get("pings_sent")
        );
        // In expectation faster pinging keeps caches fresher; allow noise
        // at this tiny scale.
        assert!(a.live_fraction.unwrap() >= f.live_fraction.unwrap() - 0.05);
    }

    #[test]
    fn adaptive_parallelism_trims_the_response_tail() {
        use crate::config::AdaptiveParallelism;
        let mut fixed = tiny(24);
        fixed.run.duration = SimDuration::from_secs(300.0);
        let mut adaptive = fixed.clone();
        adaptive.protocol.adaptive_parallelism = Some(AdaptiveParallelism::default());
        let f = GuessSim::new(fixed).unwrap().run();
        let a = GuessSim::new(adaptive).unwrap().run();
        assert!(
            a.response_p95.unwrap() < f.response_p95.unwrap(),
            "widening walks must shrink the p95 response: {:.1}s vs {:.1}s",
            a.response_p95.unwrap(),
            f.response_p95.unwrap()
        );
    }

    #[test]
    fn probe_payments_throttle_heavy_probers() {
        use crate::payments::PaymentParams;
        let mut free = tiny(26);
        free.system.selfish_fraction = 0.4;
        free.system.selfish_parallelism = 80;
        let mut paid = free.clone();
        paid.protocol.probe_payments = Some(PaymentParams {
            initial_balance: 20.0,
            allowance_per_sec: 0.3,
            max_balance: 60.0,
            earn_per_answer: 0.5,
        });
        let free_run = GuessSim::new(free).unwrap().run();
        let paid_run = GuessSim::new(paid).unwrap().run();
        assert!(
            paid_run.counters.get("probe_budget_exhausted") > 0,
            "volley senders must run out of credit"
        );
        assert!(
            paid_run.probes_per_query() < free_run.probes_per_query(),
            "payments must curb total probing: {:.1} vs {:.1}",
            paid_run.probes_per_query(),
            free_run.probes_per_query()
        );
    }

    #[test]
    fn generous_payments_do_not_hurt_honest_traffic() {
        use crate::payments::PaymentParams;
        let base = tiny(27);
        let mut paid = base.clone();
        paid.protocol.probe_payments = Some(PaymentParams::default());
        let b = GuessSim::new(base).unwrap().run();
        let p = GuessSim::new(paid).unwrap().run();
        // Default allowances comfortably fund the honest query rate.
        assert!(
            p.unsatisfaction() < b.unsatisfaction() + 0.1,
            "honest peers should barely notice the economy: {:.3} vs {:.3}",
            p.unsatisfaction(),
            b.unsatisfaction()
        );
    }

    #[test]
    fn pong_distrust_blacklists_poisoners() {
        let mut cfg = tiny(25);
        cfg.system.bad_peer_fraction = 0.25;
        cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
        cfg.protocol.distrust_pongs = true;
        let defended = GuessSim::new(cfg.clone()).unwrap().run();
        assert!(
            defended.counters.get("sources_blacklisted") > 0,
            "attackers sharing dead IPs must get blacklisted"
        );
        let mut undefended_cfg = cfg;
        undefended_cfg.protocol.distrust_pongs = false;
        let undefended = GuessSim::new(undefended_cfg).unwrap().run();
        assert!(
            defended.good_entries.unwrap() >= undefended.good_entries.unwrap(),
            "the filter should keep caches at least as clean: {:.1} vs {:.1}",
            defended.good_entries.unwrap(),
            undefended.good_entries.unwrap()
        );
    }

    #[test]
    fn pull_mode_never_touches_the_push_plane() {
        let report = GuessSim::new(tiny(51)).unwrap().run();
        for c in [
            "push_invalidations",
            "push_refreshes",
            "push_coalesced",
            "push_refused",
            "push_dropped",
        ] {
            assert_eq!(report.counters.get(c), 0, "{c} must stay zero in pull mode");
        }
        assert!(
            report.mean_staleness.is_some(),
            "staleness is still sampled"
        );
    }

    #[test]
    fn hybrid_mode_pushes_invalidations_on_death() {
        let mut cfg = tiny(52);
        cfg.system.lifespan_multiplier = 0.1; // heavy churn
        let hybrid = cfg.clone().with_maintenance_mode(MaintenanceMode::Hybrid);
        let pull = GuessSim::new(cfg).unwrap().run();
        let hy = GuessSim::new(hybrid).unwrap().run();
        assert!(
            hy.counters.get("push_invalidations") > 0,
            "deaths of watched subjects must push invalidations"
        );
        assert_eq!(
            hy.counters.get("push_refreshes"),
            0,
            "hybrid pushes invalidations only"
        );
        // Hybrid pings at the full pull rate; the pull-side volume is
        // driven by the same churn stream, so it stays in the same
        // ballpark rather than being stretched away.
        assert!(hy.counters.get("pings_sent") > pull.counters.get("pings_sent") / 2);
    }

    #[test]
    fn push_mode_stretches_pings_and_pushes_refreshes() {
        let mut cfg = tiny(53);
        cfg.system.lifespan_multiplier = 0.2;
        cfg.run.duration = SimDuration::from_secs(400.0);
        cfg.run.warmup = SimDuration::from_secs(100.0);
        let pushed = cfg.clone().with_maintenance_mode(MaintenanceMode::Push);
        let pull = GuessSim::new(cfg).unwrap().run();
        let push = GuessSim::new(pushed).unwrap().run();
        assert!(
            push.counters.get("pings_sent") < pull.counters.get("pings_sent"),
            "the ping stretch must cut pull volume: {} vs {}",
            push.counters.get("pings_sent"),
            pull.counters.get("pings_sent")
        );
        assert!(
            push.counters.get("push_refreshes") > 0,
            "subjects with watchers must push refreshes"
        );
        assert!(push.counters.get("push_invalidations") > 0);
    }

    #[test]
    fn push_mode_cuts_staleness_at_lower_maintenance_volume() {
        // The tentpole tradeoff at test scale: under churn, push-mode
        // invalidations purge the stalest (dead) entries and refreshes
        // re-date watched entries, while the ping stretch cuts the pull
        // bandwidth — staleness and message volume both drop.
        let mut cfg = tiny(54);
        cfg.system.lifespan_multiplier = 0.2;
        cfg.run.duration = SimDuration::from_secs(400.0);
        cfg.run.warmup = SimDuration::from_secs(100.0);
        let pushed = cfg.clone().with_maintenance_mode(MaintenanceMode::Push);
        let pull = GuessSim::new(cfg).unwrap().run();
        let push = GuessSim::new(pushed).unwrap().run();
        let pull_msgs = pull.counters.get("pings_sent");
        let push_msgs = push.counters.get("pings_sent")
            + push.counters.get("push_invalidations")
            + push.counters.get("push_refreshes");
        assert!(
            push_msgs <= pull_msgs,
            "push maintenance must not cost more messages: {push_msgs} vs {pull_msgs}"
        );
        assert!(
            push.mean_staleness.unwrap() < pull.mean_staleness.unwrap(),
            "push maintenance must keep entries fresher: {:.1}s vs {:.1}s",
            push.mean_staleness.unwrap(),
            pull.mean_staleness.unwrap()
        );
    }

    #[test]
    fn parallel_probes_cut_response_time() {
        let mut serial = tiny(12);
        serial.run.duration = SimDuration::from_secs(300.0);
        let mut parallel = serial.clone();
        parallel.protocol.parallel_probes = 5;
        let rs = GuessSim::new(serial).unwrap().run();
        let rp = GuessSim::new(parallel).unwrap().run();
        assert!(
            rp.mean_response_secs() < rs.mean_response_secs(),
            "k=5 ({:.2}s) must answer faster than serial ({:.2}s)",
            rp.mean_response_secs(),
            rs.mean_response_secs()
        );
    }
}
