//! The GUESS network simulator: churn, maintenance, query execution.
//!
//! One [`GuessSim`] owns the whole simulated network and drives it with a
//! discrete-event loop. Three event families exist per peer — query bursts,
//! maintenance pings, and death — plus a periodic metrics snapshot.
//!
//! ## Fidelity notes (see DESIGN.md §5)
//!
//! * A query executes *atomically* at its start time, but its probes carry
//!   timestamps spaced `probe_interval / parallel_probes` apart, so
//!   per-second capacity meters observe the true arrival rate.
//! * Maintenance pings bypass the capacity meter: the paper's
//!   `MaxProbesPerSecond` governs query probes.
//! * A refused probe looks like a timeout to the prober: the entry is
//!   evicted ("believing it is dead", §6.3) unless `DoBackoff` is set, in
//!   which case the entry is retained but skipped for the rest of the
//!   query.

use std::collections::{HashMap, HashSet};

use simkit::event::EventQueue;
use simkit::rng::RngStream;
use simkit::time::SimTime;
use workload::content::Catalog;
use workload::files::FileCountModel;
use workload::lifetime::LifetimeModel;
use workload::query::{QueryModel, QueryWorkload};

use crate::addr::{AddrAllocator, PeerAddr, SlotId};
use crate::capacity::Admission;
use crate::config::{BadPongBehavior, Config, ConfigError};
use crate::entry::CacheEntry;
use crate::graph::UnionFind;
use crate::message::Pong;
use crate::metrics::{MetricsCollector, QueryOutcome, RunReport};
use crate::peer::{Behavior, PeerState};
use crate::policy::{select_top_k, ProbeQueue};

/// Number of distinct fabricated dead addresses each malicious peer cycles
/// through in its poisoned pongs.
const FABRICATED_POOL_SIZE: usize = 40;

/// Inflated `NumRes` claim carried by poisoned pong entries, so that
/// results-trusting policies rank them first.
const POISON_NUM_RES: u32 = 50;

#[derive(Debug, Clone, Copy)]
enum Event {
    Burst { slot: SlotId, addr: PeerAddr },
    Ping { slot: SlotId, addr: PeerAddr },
    Death { slot: SlotId, addr: PeerAddr },
    Sample,
}

/// A complete GUESS network simulation.
///
/// # Examples
///
/// ```no_run
/// use guess::config::Config;
/// use guess::engine::GuessSim;
///
/// let report = GuessSim::new(Config::default())?.run();
/// println!("probes/query = {:.1}", report.probes_per_query());
/// println!("unsatisfied  = {:.1}%", report.unsatisfaction() * 100.0);
/// # Ok::<(), guess::config::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct GuessSim {
    cfg: Config,
    queue: EventQueue<Event>,
    peers: Vec<PeerState>,
    slots: Vec<PeerAddr>,
    alloc: AddrAllocator,
    live_bad: Vec<PeerAddr>,
    live_bad_pos: HashMap<PeerAddr, usize>,
    fabricated: HashMap<PeerAddr, Vec<PeerAddr>>,
    lifetimes: LifetimeModel,
    files: FileCountModel,
    qmodel: QueryModel,
    workload: QueryWorkload,
    rng_churn: RngStream,
    rng_query: RngStream,
    rng_policy: RngStream,
    rng_intro: RngStream,
    metrics: MetricsCollector,
    end: SimTime,
    warmup_end: SimTime,
}

impl GuessSim {
    /// Builds a simulator for `cfg` and seeds the initial population.
    ///
    /// # Errors
    ///
    /// Returns the validation error if `cfg` is inconsistent.
    pub fn new(cfg: Config) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let seed = cfg.run.seed;
        let lifetimes = LifetimeModel::saroiu_like(cfg.system.lifespan_multiplier);
        let files = FileCountModel::gnutella_like();
        let catalog = Catalog::new(cfg.catalog).map_err(|_| ConfigError::EmptyNetwork)?;
        let qmodel = QueryModel::new(catalog);
        let workload =
            QueryWorkload::with_rate(cfg.system.query_rate).map_err(|_| ConfigError::BadQueryRate)?;
        let end = SimTime::ZERO + cfg.run.duration;
        let warmup_end = SimTime::ZERO + cfg.run.warmup;

        let mut sim = GuessSim {
            cfg,
            queue: EventQueue::new(),
            peers: Vec::new(),
            slots: Vec::new(),
            alloc: AddrAllocator::new(),
            live_bad: Vec::new(),
            live_bad_pos: HashMap::new(),
            fabricated: HashMap::new(),
            lifetimes,
            files,
            qmodel,
            workload,
            rng_churn: RngStream::from_seed(seed, "churn"),
            rng_query: RngStream::from_seed(seed, "query"),
            rng_policy: RngStream::from_seed(seed, "policy"),
            rng_intro: RngStream::from_seed(seed, "intro"),
            metrics: MetricsCollector::new(),
            end,
            warmup_end,
        };
        sim.populate();
        Ok(sim)
    }

    /// The configuration this simulator runs.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The peer table (all instances ever born, plus fabricated stubs).
    #[must_use]
    pub fn peers(&self) -> &[PeerState] {
        &self.peers
    }

    /// Addresses of the currently live peers, one per slot.
    #[must_use]
    pub fn live_addrs(&self) -> &[PeerAddr] {
        &self.slots
    }

    /// Creates the initial population and schedules its events.
    fn populate(&mut self) {
        let n = self.cfg.system.network_size;
        for s in 0..n {
            let slot = SlotId(s as u32);
            let addr = self.birth_peer(slot, SimTime::ZERO);
            self.slots.push(addr);
        }
        // Seed link caches with pointers to random other initial peers.
        let seed_size = self.cfg.run.cache_seed_size.min(n - 1);
        for s in 0..n {
            let me = self.slots[s];
            let mut picks = Vec::with_capacity(seed_size);
            let raw = self.rng_churn.sample_indices(n - 1, seed_size);
            for r in raw {
                let other = if r >= s { r + 1 } else { r };
                picks.push(self.slots[other]);
            }
            for other in picks {
                let advertised = self.peers[other.index()].advertised_files();
                let entry = CacheEntry::new(other, SimTime::ZERO, advertised);
                let policy = self.cfg.protocol.cache_replacement;
                let _ = self.peers[me.index()].link_cache_mut().offer(
                    entry,
                    policy,
                    &mut self.rng_policy,
                );
            }
        }
        // Per-peer event schedules.
        for s in 0..n {
            let slot = SlotId(s as u32);
            let addr = self.slots[s];
            self.schedule_peer_events(slot, addr, SimTime::ZERO, true);
        }
        self.queue.schedule(SimTime::ZERO + self.cfg.run.sample_interval, Event::Sample);
    }

    /// Creates one peer instance (without installing it in a slot).
    fn birth_peer(&mut self, slot: SlotId, now: SimTime) -> PeerAddr {
        let addr = self.alloc.allocate();
        debug_assert_eq!(addr.index(), self.peers.len());
        let bad = self.rng_churn.chance(self.cfg.system.bad_peer_fraction);
        let (behavior, advertised, library) = if bad {
            // Malicious peers advertise the largest plausible library to
            // game metadata-trusting policies, but hold nothing.
            (Behavior::Malicious, self.files.max_files(), workload::content::PeerLibrary::empty())
        } else {
            let count = self.files.sample_file_count(&mut self.rng_churn);
            let library = self.qmodel.catalog().build_library(count, &mut self.rng_churn);
            (Behavior::Good, count, library)
        };
        let mut peer = PeerState::new(
            addr,
            slot,
            behavior,
            now,
            advertised,
            library,
            self.cfg.protocol.cache_size,
            self.cfg.system.max_probes_per_second,
        );
        peer.set_ping_interval(self.cfg.protocol.ping_interval);
        if let Some(pp) = self.cfg.protocol.probe_payments {
            peer.open_account(crate::payments::ProbeAccount::new(pp, now));
        }
        if behavior == Behavior::Good && self.rng_churn.chance(self.cfg.system.selfish_fraction) {
            peer.set_selfish(true);
            self.metrics.counters_mut().incr("selfish_births");
        }
        self.peers.push(peer);
        if bad {
            self.live_bad_pos.insert(addr, self.live_bad.len());
            self.live_bad.push(addr);
        }
        self.metrics.counters_mut().incr("births");
        addr
    }

    /// Schedules death / ping / burst events for a (newly born) peer.
    fn schedule_peer_events(&mut self, slot: SlotId, addr: PeerAddr, now: SimTime, initial: bool) {
        let life = self.lifetimes.sample_lifetime(&mut self.rng_churn);
        self.queue.schedule(now + life, Event::Death { slot, addr });
        // Stagger the first ping uniformly within one interval so the
        // network's pings do not arrive in lockstep.
        let ping_phase = if initial {
            self.cfg.protocol.ping_interval * self.rng_churn.f64()
        } else {
            self.cfg.protocol.ping_interval
        };
        self.queue.schedule(now + ping_phase, Event::Ping { slot, addr });
        if self.cfg.run.simulate_queries && self.peers[addr.index()].behavior() == Behavior::Good {
            let gap = self.workload.sample_burst_gap(&mut self.rng_query);
            self.queue.schedule(now + gap, Event::Burst { slot, addr });
        }
    }

    /// Runs the simulation to completion and returns the aggregated report.
    #[must_use]
    pub fn run(mut self) -> RunReport {
        while let Some((now, event)) = self.queue.pop() {
            if now > self.end {
                break;
            }
            match event {
                Event::Death { slot, addr } => self.on_death(slot, addr, now),
                Event::Ping { slot, addr } => self.on_ping(slot, addr, now),
                Event::Burst { slot, addr } => self.on_burst(slot, addr, now),
                Event::Sample => self.on_sample(now),
            }
        }
        // Loads of peers still alive at the end of the run.
        for &addr in &self.slots {
            let p = &self.peers[addr.index()];
            if p.is_alive() {
                self.metrics.record_load(p.probes_received());
            }
        }
        self.metrics.finish()
    }

    /// True if the event's subject still occupies its slot.
    fn is_current(&self, slot: SlotId, addr: PeerAddr) -> bool {
        self.slots[slot.index()] == addr
    }

    // ------------------------------------------------------------------
    // Churn
    // ------------------------------------------------------------------

    fn on_death(&mut self, slot: SlotId, addr: PeerAddr, now: SimTime) {
        if !self.is_current(slot, addr) {
            return;
        }
        self.metrics.counters_mut().incr("deaths");
        let load = {
            let p = &mut self.peers[addr.index()];
            p.kill();
            p.probes_received()
        };
        self.metrics.record_load(load);
        if let Some(pos) = self.live_bad_pos.remove(&addr) {
            self.live_bad.swap_remove(pos);
            if pos < self.live_bad.len() {
                let moved = self.live_bad[pos];
                self.live_bad_pos.insert(moved, pos);
            }
            self.fabricated.remove(&addr);
        }

        // Constant population: a replacement is born immediately and seeds
        // its cache with the random-friend policy — copy a live friend's
        // link cache.
        let newborn = self.birth_peer(slot, now);
        self.slots[slot.index()] = newborn;
        if let Some(friend) = self.random_live_peer(Some(newborn)) {
            let entries: Vec<CacheEntry> =
                self.peers[friend.index()].link_cache().entries().to_vec();
            let policy = self.cfg.protocol.cache_replacement;
            for e in entries {
                if e.addr() != newborn {
                    let _ = self.peers[newborn.index()].link_cache_mut().offer(
                        e,
                        policy,
                        &mut self.rng_policy,
                    );
                }
            }
        }
        self.schedule_peer_events(slot, newborn, now, false);
    }

    /// A uniformly random live peer, excluding `not` if given.
    fn random_live_peer(&mut self, not: Option<PeerAddr>) -> Option<PeerAddr> {
        let n = self.slots.len();
        if n == 0 {
            return None;
        }
        for _ in 0..32 {
            let cand = self.slots[self.rng_churn.below(n)];
            if Some(cand) != not {
                return Some(cand);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Maintenance pings
    // ------------------------------------------------------------------

    fn on_ping(&mut self, slot: SlotId, addr: PeerAddr, now: SimTime) {
        if !self.is_current(slot, addr) {
            return;
        }
        if self.peers[addr.index()].behavior() == Behavior::Malicious {
            self.malicious_ping(addr, now);
        } else {
            let outcome = self.good_ping(addr, now);
            self.adapt_ping_interval(addr, outcome);
        }
        let interval = self.peers[addr.index()].ping_interval();
        self.queue.schedule(now + interval, Event::Ping { slot, addr });
    }

    /// An honest peer pings one cached neighbor chosen by `PingProbe`.
    /// Returns whether the neighbor was found alive.
    fn good_ping(&mut self, pinger: PeerAddr, now: SimTime) -> Option<bool> {
        let picked = {
            let cache = self.peers[pinger.index()].link_cache();
            select_top_k(self.cfg.protocol.ping_probe, cache.entries(), 1, &mut self.rng_policy)
        };
        let entry = picked.first().copied()?; // empty cache: nothing to maintain
        let dst = entry.addr();
        self.metrics.counters_mut().incr("pings_sent");
        if !self.peers[dst.index()].is_alive() {
            self.peers[pinger.index()].link_cache_mut().remove(dst);
            if self.cfg.protocol.distrust_pongs {
                self.note_dead_entry(pinger, dst);
            }
            self.metrics.counters_mut().incr("pings_dead");
            return Some(false);
        }
        // The neighbor answers: refresh our TS for it and absorb its pong.
        self.peers[pinger.index()].link_cache_mut().touch(dst, now);
        if self.cfg.protocol.distrust_pongs {
            self.peers[pinger.index()].reputation_mut().note_alive(dst);
        }
        self.apply_introduction(dst, pinger, now);
        self.peers[dst.index()].link_cache_mut().touch(pinger, now);
        let pong = self.build_pong(dst, self.cfg.protocol.ping_pong, now);
        self.absorb_pong(pinger, dst, &pong);
        self.metrics.counters_mut().incr("pings_answered");
        Some(true)
    }

    /// §6.1's runtime guidance: shrink the ping interval when probes keep
    /// hitting dead addresses, stretch it when the cache looks healthy.
    fn adapt_ping_interval(&mut self, addr: PeerAddr, outcome: Option<bool>) {
        let Some(params) = self.cfg.protocol.adaptive_ping else {
            return;
        };
        let Some(alive) = outcome else {
            return;
        };
        let peer = &mut self.peers[addr.index()];
        let factor = if alive { params.on_alive } else { params.on_dead };
        let next = (peer.ping_interval().as_secs() * factor)
            .clamp(params.min_interval.as_secs(), params.max_interval.as_secs());
        peer.set_ping_interval(simkit::time::SimDuration::from_secs(next));
    }

    /// Charges the reputation of whoever shared the now-dead `subject`
    /// with `owner`; a source crossing the blacklist threshold is also
    /// evicted from `owner`'s link cache on the spot.
    fn note_dead_entry(&mut self, owner: PeerAddr, subject: PeerAddr) {
        let before = self.peers[owner.index()].reputation().blacklisted_count();
        let source = self.peers[owner.index()].reputation_mut().note_dead(subject);
        if self.peers[owner.index()].reputation().blacklisted_count() > before {
            self.metrics.counters_mut().incr("sources_blacklisted");
            if let Some(source) = source {
                self.peers[owner.index()].link_cache_mut().remove(source);
            }
        }
    }

    /// A malicious peer pings a random live victim purely to trigger the
    /// introduction rule and worm its way into caches.
    fn malicious_ping(&mut self, pinger: PeerAddr, now: SimTime) {
        let Some(dst) = self.random_live_peer(Some(pinger)) else {
            return;
        };
        if self.peers[dst.index()].behavior() == Behavior::Good {
            self.apply_introduction(dst, pinger, now);
        }
    }

    /// The probed/pinged peer `dst` adds the initiator to its own cache
    /// with probability `IntroProb` (§2.2).
    fn apply_introduction(&mut self, dst: PeerAddr, initiator: PeerAddr, now: SimTime) {
        if !self.rng_intro.chance(self.cfg.protocol.intro_prob) {
            return;
        }
        if self.peers[dst.index()].behavior() == Behavior::Malicious {
            return; // attackers do not maintain honest caches
        }
        let advertised = self.peers[initiator.index()].advertised_files();
        let entry = CacheEntry::new(initiator, now, advertised);
        let policy = self.cfg.protocol.cache_replacement;
        let _ = self.peers[dst.index()].link_cache_mut().offer(entry, policy, &mut self.rng_policy);
        self.metrics.counters_mut().incr("introductions");
    }

    /// Builds the pong `responder` attaches to a reply, honest or poisoned.
    fn build_pong(&mut self, responder: PeerAddr, policy: crate::policy::SelectionPolicy, now: SimTime) -> Pong {
        if self.peers[responder.index()].behavior() == Behavior::Malicious {
            return self.build_poison_pong(responder, now);
        }
        let entries = {
            let cache = self.peers[responder.index()].link_cache();
            select_top_k(policy, cache.entries(), self.cfg.protocol.pong_size, &mut self.rng_policy)
        };
        Pong { entries }
    }

    /// A malicious pong: dead fabricated addresses, colluder addresses, or
    /// (for the control case) real good peers — always with inflated
    /// metadata.
    fn build_poison_pong(&mut self, attacker: PeerAddr, now: SimTime) -> Pong {
        let k = self.cfg.protocol.pong_size;
        let inflated_files = self.files.max_files();
        let mut entries = Vec::with_capacity(k);
        match self.cfg.system.bad_pong_behavior {
            BadPongBehavior::Dead => {
                self.ensure_fabricated_pool(attacker, now);
                let pool = &self.fabricated[&attacker];
                for i in self.rng_churn.sample_indices(pool.len(), k) {
                    entries.push(CacheEntry::from_pong(pool[i], now, inflated_files, POISON_NUM_RES));
                }
            }
            BadPongBehavior::Bad => {
                if !self.live_bad.is_empty() {
                    let m = self.live_bad.len();
                    for i in self.rng_churn.sample_indices(m, k) {
                        entries.push(CacheEntry::from_pong(
                            self.live_bad[i],
                            now,
                            inflated_files,
                            POISON_NUM_RES,
                        ));
                    }
                }
            }
            BadPongBehavior::Good => {
                for _ in 0..k {
                    if let Some(p) = self.random_live_peer(Some(attacker)) {
                        entries.push(CacheEntry::from_pong(p, now, inflated_files, POISON_NUM_RES));
                    }
                }
            }
        }
        Pong { entries }
    }

    fn ensure_fabricated_pool(&mut self, attacker: PeerAddr, now: SimTime) {
        if self.fabricated.contains_key(&attacker) {
            return;
        }
        let mut pool = Vec::with_capacity(FABRICATED_POOL_SIZE);
        for _ in 0..FABRICATED_POOL_SIZE {
            let fake = self.alloc.allocate();
            debug_assert_eq!(fake.index(), self.peers.len());
            self.peers.push(PeerState::dead_stub(fake, now));
            pool.push(fake);
        }
        self.fabricated.insert(attacker, pool);
    }

    /// The receiver of a pong merges its entries into the link cache,
    /// honouring `ResetNumResults` (MR\*) and the pong-source reputation
    /// filter (entries from blacklisted sources are dropped unseen).
    fn absorb_pong(&mut self, receiver: PeerAddr, source: PeerAddr, pong: &Pong) {
        if self.cfg.protocol.distrust_pongs
            && self.peers[receiver.index()].reputation().is_blacklisted(source)
        {
            self.metrics.counters_mut().incr("pongs_filtered");
            return;
        }
        let policy = self.cfg.protocol.cache_replacement;
        for e in &pong.entries {
            if e.addr() == receiver {
                continue;
            }
            let mut entry = *e;
            if self.cfg.protocol.reset_num_results {
                entry.reset_num_res();
            }
            if self.cfg.protocol.distrust_pongs {
                if self.peers[receiver.index()].reputation().is_blacklisted(entry.addr()) {
                    continue; // never re-admit a known liar
                }
                self.peers[receiver.index()].reputation_mut().note_shared(source, entry.addr());
            }
            let _ = self.peers[receiver.index()].link_cache_mut().offer(
                entry,
                policy,
                &mut self.rng_policy,
            );
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn on_burst(&mut self, slot: SlotId, addr: PeerAddr, now: SimTime) {
        if !self.is_current(slot, addr) {
            return;
        }
        let burst = self.workload.sample_burst_size(&mut self.rng_query);
        for _ in 0..burst {
            self.execute_query(addr, now);
        }
        let gap = self.workload.sample_burst_gap(&mut self.rng_query);
        self.queue.schedule(now + gap, Event::Burst { slot, addr });
    }

    /// Executes one query end-to-end: iterative (or k-parallel) probing of
    /// link-cache and query-cache candidates until `NumDesiredResults`
    /// results arrive or the candidate pool runs dry.
    fn execute_query(&mut self, prober: PeerAddr, now: SimTime) {
        let want = self.qmodel.sample_target(&mut self.rng_query);
        let desired = self.cfg.system.num_desired_results;
        let probe_gap = self.cfg.protocol.probe_interval;
        let distrust = self.cfg.protocol.distrust_pongs;

        // Selfish peers blast wide volleys regardless of the protocol's
        // configured walk width (§3.3); honest peers start at the
        // configured k and may widen it adaptively (§6.2 future work).
        let selfish = self.peers[prober.index()].is_selfish();
        let mut k = if selfish {
            self.cfg.system.selfish_parallelism
        } else {
            self.cfg.protocol.parallel_probes
        };
        let mut resultless_streak = 0u32;

        // The probe pool: link-cache entries first, then everything the
        // query cache accumulates from pongs. `seen` holds every address
        // ever added, enforcing at-most-one probe per address per query.
        let mut pool = ProbeQueue::new(self.cfg.protocol.query_probe);
        let mut seen: HashSet<PeerAddr> = HashSet::new();
        seen.insert(prober);
        for e in self.peers[prober.index()].link_cache().entries().to_vec() {
            if seen.insert(e.addr()) {
                pool.push(e, &mut self.rng_policy);
            }
        }

        let mut results = 0u32;
        let mut good = 0u32;
        let mut dead = 0u32;
        let mut refused = 0u32;
        // Wall-clock rounds elapsed: each probe occupies 1/k of a round.
        let mut rounds = 0.0f64;

        while results < desired {
            let Some(entry) = pool.pop() else {
                break;
            };
            let dst = entry.addr();
            // Serial probes go out one timeout apart; k-parallel walks
            // share each time slot.
            let t_probe = now + probe_gap * rounds;
            // Probe payments: a peer that cannot afford the probe must
            // stop searching until its allowance refills (§3.3).
            if self.cfg.protocol.probe_payments.is_some() {
                let broke = self.peers[prober.index()]
                    .account_mut()
                    .expect("accounts exist when payments are on")
                    .pay_probe(t_probe)
                    .is_err();
                if broke {
                    self.metrics.counters_mut().incr("probe_budget_exhausted");
                    break;
                }
            }
            rounds += 1.0 / k as f64;

            if !self.peers[dst.index()].is_alive() {
                dead += 1;
                self.peers[prober.index()].link_cache_mut().remove(dst);
                if distrust {
                    self.note_dead_entry(prober, dst);
                }
                continue;
            }

            self.peers[dst.index()].note_probe_received();

            let dst_behavior = self.peers[dst.index()].behavior();
            if dst_behavior == Behavior::Good
                && self.peers[dst.index()].capacity_mut().admit(t_probe) == Admission::Refused
            {
                refused += 1;
                if !self.cfg.protocol.do_backoff {
                    // A dropped probe times out; the prober assumes
                    // death and evicts — the inherent throttle.
                    self.peers[prober.index()].link_cache_mut().remove(dst);
                }
                continue;
            }

            good += 1;
            if distrust {
                self.peers[prober.index()].reputation_mut().note_alive(dst);
            }
            if self.cfg.protocol.probe_payments.is_some() {
                if let Some(acct) = self.peers[dst.index()].account_mut() {
                    acct.earn_answer(t_probe);
                }
            }
            let res = if dst_behavior == Behavior::Good
                && self.qmodel.answers(self.peers[dst.index()].library(), want)
            {
                1u32
            } else {
                0u32
            };
            results += res;

            // Adaptive walk widening: double k after a run of resultless
            // probes (only honest, non-selfish queriers bother).
            if let Some(ak) = self.cfg.protocol.adaptive_parallelism {
                if !selfish {
                    if res == 0 {
                        resultless_streak += 1;
                        if resultless_streak >= ak.escalate_after {
                            k = (k * 2).min(ak.max_k);
                            resultless_streak = 0;
                        }
                    } else {
                        resultless_streak = 0;
                    }
                }
            }

            // Both sides record the interaction (§2.1): the prober resets
            // NumRes for the target; the target refreshes TS for the
            // prober if cached, and may add the prober (introduction).
            if !self.peers[prober.index()].link_cache_mut().record_results(dst, now, res) {
                // Probed from the query cache: the entry is not in the
                // link cache; nothing to update.
            }
            self.peers[dst.index()].link_cache_mut().touch(prober, now);
            self.apply_introduction(dst, prober, now);

            // The reply's pong feeds both the query cache (the probe pool)
            // and, subject to replacement policy, the link cache. Pongs
            // from blacklisted sources are dropped wholesale.
            if distrust && self.peers[prober.index()].reputation().is_blacklisted(dst) {
                self.metrics.counters_mut().incr("pongs_filtered");
                continue;
            }
            let pong = self.build_pong(dst, self.cfg.protocol.query_pong, now);
            for e in &pong.entries {
                if e.addr() == prober {
                    continue;
                }
                let mut entry = *e;
                if self.cfg.protocol.reset_num_results {
                    entry.reset_num_res();
                }
                if distrust {
                    if self.peers[prober.index()].reputation().is_blacklisted(entry.addr()) {
                        continue; // never re-admit a known liar
                    }
                    self.peers[prober.index()].reputation_mut().note_shared(dst, entry.addr());
                }
                if seen.insert(entry.addr()) {
                    pool.push(entry, &mut self.rng_policy);
                }
                let policy = self.cfg.protocol.cache_replacement;
                let _ = self.peers[prober.index()].link_cache_mut().offer(
                    entry,
                    policy,
                    &mut self.rng_policy,
                );
            }
        }

        if now >= self.warmup_end {
            self.metrics.record_query(QueryOutcome {
                good_probes: good,
                dead_probes: dead,
                refused_probes: refused,
                satisfied: results >= desired,
                response_secs: rounds.ceil() * probe_gap.as_secs(),
            });
            if selfish {
                self.metrics.counters_mut().incr("selfish_queries");
            }
        }
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    fn on_sample(&mut self, now: SimTime) {
        if now >= self.warmup_end {
            self.sample_cache_health();
            self.sample_connectivity();
        }
        self.queue.schedule(now + self.cfg.run.sample_interval, Event::Sample);
    }

    fn sample_cache_health(&mut self) {
        let mut frac_sum = 0.0;
        let mut frac_n = 0usize;
        let mut live_sum = 0.0;
        let mut good_sum = 0.0;
        let mut peers_n = 0usize;
        for &addr in &self.slots {
            let p = &self.peers[addr.index()];
            if !p.is_good() {
                continue;
            }
            peers_n += 1;
            let total = p.link_cache().len();
            let mut live = 0usize;
            let mut good_entries = 0usize;
            for e in p.link_cache().iter() {
                let t = &self.peers[e.addr().index()];
                if t.is_alive() {
                    live += 1;
                    if t.behavior() == Behavior::Good {
                        good_entries += 1;
                    }
                }
            }
            if total > 0 {
                frac_sum += live as f64 / total as f64;
                frac_n += 1;
            }
            live_sum += live as f64;
            good_sum += good_entries as f64;
        }
        if peers_n > 0 {
            let frac = if frac_n > 0 { frac_sum / frac_n as f64 } else { 0.0 };
            self.metrics.record_cache_health(
                frac,
                live_sum / peers_n as f64,
                good_sum / peers_n as f64,
            );
        }
    }

    fn sample_connectivity(&mut self) {
        let n = self.slots.len();
        let mut dense: HashMap<PeerAddr, usize> = HashMap::with_capacity(n);
        for (i, &addr) in self.slots.iter().enumerate() {
            dense.insert(addr, i);
        }
        let mut uf = UnionFind::new(n);
        for (i, &addr) in self.slots.iter().enumerate() {
            let p = &self.peers[addr.index()];
            if !p.is_alive() {
                continue;
            }
            for e in p.link_cache().iter() {
                if let Some(&j) = dense.get(&e.addr()) {
                    if self.peers[e.addr().index()].is_alive() {
                        uf.union(i, j);
                    }
                }
            }
        }
        self.metrics.record_lcc(uf.largest_component());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::policy::SelectionPolicy;
    use simkit::time::SimDuration;

    fn tiny(seed: u64) -> Config {
        let mut cfg = Config::small_test(seed);
        cfg.run.duration = SimDuration::from_secs(200.0);
        cfg.run.warmup = SimDuration::from_secs(50.0);
        cfg
    }

    #[test]
    fn runs_to_completion_and_reports() {
        let report = GuessSim::new(tiny(1)).unwrap().run();
        assert!(report.queries > 0, "some queries must execute");
        assert!(report.probes_per_query() > 0.0);
        assert!(report.unsatisfaction() <= 1.0);
        assert!(!report.loads.is_empty());
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = GuessSim::new(tiny(7)).unwrap().run();
        let b = GuessSim::new(tiny(7)).unwrap().run();
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.unsatisfied, b.unsatisfied);
        assert_eq!(a.probes_per_query(), b.probes_per_query());
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.counters.get("births"), b.counters.get("births"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = GuessSim::new(tiny(1)).unwrap().run();
        let b = GuessSim::new(tiny(2)).unwrap().run();
        // Astronomically unlikely to coincide exactly.
        assert!(a.probes_per_query() != b.probes_per_query() || a.queries != b.queries);
    }

    #[test]
    fn churn_replaces_peers_keeping_population_constant() {
        let mut cfg = tiny(3);
        cfg.system.lifespan_multiplier = 0.05; // aggressive churn
        let sim = GuessSim::new(cfg.clone()).unwrap();
        let n = cfg.system.network_size;
        let report = sim.run();
        assert!(report.counters.get("deaths") > 0, "peers must die under churn");
        assert_eq!(
            report.counters.get("births"),
            report.counters.get("deaths") + n as u64,
            "every death births a replacement"
        );
    }

    #[test]
    fn queries_can_be_disabled() {
        let mut cfg = tiny(4);
        cfg.run.simulate_queries = false;
        let report = GuessSim::new(cfg).unwrap().run();
        assert_eq!(report.queries, 0);
        assert!(report.counters.get("pings_sent") > 0, "maintenance continues");
        assert!(report.largest_component.is_some());
    }

    #[test]
    fn connectivity_sampled_and_mostly_connected_with_short_ping_interval() {
        let mut cfg = tiny(5);
        cfg.run.simulate_queries = false;
        cfg.protocol.ping_interval = SimDuration::from_secs(5.0);
        let report = GuessSim::new(cfg.clone()).unwrap().run();
        let lcc = report.largest_component.expect("sampled");
        assert!(
            lcc > cfg.system.network_size as f64 * 0.8,
            "well-maintained overlay should be mostly connected, got {lcc}"
        );
    }

    #[test]
    fn mfs_beats_random_on_probe_cost() {
        let mut base = tiny(6);
        base.run.duration = SimDuration::from_secs(400.0);
        base.run.warmup = SimDuration::from_secs(100.0);
        let random = GuessSim::new(base.clone()).unwrap().run();
        let mut mfs_cfg = base;
        mfs_cfg.protocol = mfs_cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
        let mfs = GuessSim::new(mfs_cfg).unwrap().run();
        assert!(
            mfs.probes_per_query() < random.probes_per_query(),
            "MFS ({:.1}) should beat Random ({:.1})",
            mfs.probes_per_query(),
            random.probes_per_query()
        );
    }

    #[test]
    fn bad_peers_receive_no_result_credit() {
        let mut cfg = tiny(8);
        cfg.system.bad_peer_fraction = 0.3;
        let report = GuessSim::new(cfg).unwrap().run();
        // With 30% attackers the run must still complete and report sanely.
        assert!(report.queries > 0);
        assert!(report.good_entries.is_some());
    }

    #[test]
    fn capacity_limit_produces_refusals_under_pressure() {
        let mut cfg = tiny(9);
        cfg.system.max_probes_per_second = Some(1);
        cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
        let report = GuessSim::new(cfg).unwrap().run();
        assert!(
            report.refused_per_query() > 0.0,
            "a 1-probe/s cap under MFS hotspotting must refuse something"
        );
    }

    #[test]
    fn unlimited_capacity_never_refuses() {
        let mut cfg = tiny(10);
        cfg.system.max_probes_per_second = None;
        let report = GuessSim::new(cfg).unwrap().run();
        assert_eq!(report.refused_per_query(), 0.0);
    }

    #[test]
    fn live_fraction_is_a_fraction() {
        let report = GuessSim::new(tiny(11)).unwrap().run();
        let f = report.live_fraction.expect("sampled");
        assert!((0.0..=1.0).contains(&f), "live fraction {f}");
        assert!(report.live_absolute.unwrap() >= 0.0);
    }

    #[test]
    fn selfish_peers_blast_wide_volleys() {
        let mut cfg = tiny(21);
        cfg.system.selfish_fraction = 0.3;
        cfg.system.selfish_parallelism = 40;
        let report = GuessSim::new(cfg).unwrap().run();
        assert!(report.counters.get("selfish_births") > 0);
        assert!(report.counters.get("selfish_queries") > 0);
        // Selfish volleys finish almost immediately; mean response falls
        // below the all-serial baseline.
        let serial = GuessSim::new(tiny(21)).unwrap().run();
        assert!(report.mean_response_secs() < serial.mean_response_secs());
    }

    #[test]
    fn selfish_volleys_inflate_load_under_capacity_limits() {
        let mut honest = tiny(22);
        honest.system.max_probes_per_second = Some(5);
        let mut selfish = honest.clone();
        selfish.system.selfish_fraction = 0.5;
        selfish.system.selfish_parallelism = 60;
        let h = GuessSim::new(honest).unwrap().run();
        let s = GuessSim::new(selfish).unwrap().run();
        assert!(
            s.refused_per_query() >= h.refused_per_query(),
            "selfish volleys should push receivers into refusal at least as hard \
             ({:.2} vs {:.2})",
            s.refused_per_query(),
            h.refused_per_query()
        );
    }

    #[test]
    fn adaptive_ping_speeds_up_under_churn() {
        use crate::config::AdaptivePing;
        let mut fixed = tiny(23);
        fixed.run.simulate_queries = false;
        fixed.system.lifespan_multiplier = 0.1; // brutal churn
        fixed.protocol.ping_interval = SimDuration::from_secs(120.0);
        let mut adaptive = fixed.clone();
        adaptive.protocol.adaptive_ping = Some(AdaptivePing::default());
        let f = GuessSim::new(fixed).unwrap().run();
        let a = GuessSim::new(adaptive).unwrap().run();
        assert!(
            a.counters.get("pings_sent") > f.counters.get("pings_sent"),
            "dead probes should drive the adaptive interval down: {} vs {}",
            a.counters.get("pings_sent"),
            f.counters.get("pings_sent")
        );
        // In expectation faster pinging keeps caches fresher; allow noise
        // at this tiny scale.
        assert!(a.live_fraction.unwrap() >= f.live_fraction.unwrap() - 0.05);
    }

    #[test]
    fn adaptive_parallelism_trims_the_response_tail() {
        use crate::config::AdaptiveParallelism;
        let mut fixed = tiny(24);
        fixed.run.duration = SimDuration::from_secs(300.0);
        let mut adaptive = fixed.clone();
        adaptive.protocol.adaptive_parallelism = Some(AdaptiveParallelism::default());
        let f = GuessSim::new(fixed).unwrap().run();
        let a = GuessSim::new(adaptive).unwrap().run();
        assert!(
            a.response_p95.unwrap() < f.response_p95.unwrap(),
            "widening walks must shrink the p95 response: {:.1}s vs {:.1}s",
            a.response_p95.unwrap(),
            f.response_p95.unwrap()
        );
    }

    #[test]
    fn probe_payments_throttle_heavy_probers() {
        use crate::payments::PaymentParams;
        let mut free = tiny(26);
        free.system.selfish_fraction = 0.4;
        free.system.selfish_parallelism = 80;
        let mut paid = free.clone();
        paid.protocol.probe_payments = Some(PaymentParams {
            initial_balance: 20.0,
            allowance_per_sec: 0.3,
            max_balance: 60.0,
            earn_per_answer: 0.5,
        });
        let free_run = GuessSim::new(free).unwrap().run();
        let paid_run = GuessSim::new(paid).unwrap().run();
        assert!(
            paid_run.counters.get("probe_budget_exhausted") > 0,
            "volley senders must run out of credit"
        );
        assert!(
            paid_run.probes_per_query() < free_run.probes_per_query(),
            "payments must curb total probing: {:.1} vs {:.1}",
            paid_run.probes_per_query(),
            free_run.probes_per_query()
        );
    }

    #[test]
    fn generous_payments_do_not_hurt_honest_traffic() {
        use crate::payments::PaymentParams;
        let base = tiny(27);
        let mut paid = base.clone();
        paid.protocol.probe_payments = Some(PaymentParams::default());
        let b = GuessSim::new(base).unwrap().run();
        let p = GuessSim::new(paid).unwrap().run();
        // Default allowances comfortably fund the honest query rate.
        assert!(
            p.unsatisfaction() < b.unsatisfaction() + 0.1,
            "honest peers should barely notice the economy: {:.3} vs {:.3}",
            p.unsatisfaction(),
            b.unsatisfaction()
        );
    }

    #[test]
    fn pong_distrust_blacklists_poisoners() {
        let mut cfg = tiny(25);
        cfg.system.bad_peer_fraction = 0.25;
        cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
        cfg.protocol.distrust_pongs = true;
        let defended = GuessSim::new(cfg.clone()).unwrap().run();
        assert!(
            defended.counters.get("sources_blacklisted") > 0,
            "attackers sharing dead IPs must get blacklisted"
        );
        let mut undefended_cfg = cfg;
        undefended_cfg.protocol.distrust_pongs = false;
        let undefended = GuessSim::new(undefended_cfg).unwrap().run();
        assert!(
            defended.good_entries.unwrap() >= undefended.good_entries.unwrap(),
            "the filter should keep caches at least as clean: {:.1} vs {:.1}",
            defended.good_entries.unwrap(),
            undefended.good_entries.unwrap()
        );
    }

    #[test]
    fn parallel_probes_cut_response_time() {
        let mut serial = tiny(12);
        serial.run.duration = SimDuration::from_secs(300.0);
        let mut parallel = serial.clone();
        parallel.protocol.parallel_probes = 5;
        let rs = GuessSim::new(serial).unwrap().run();
        let rp = GuessSim::new(parallel).unwrap().run();
        assert!(
            rp.mean_response_secs() < rs.mean_response_secs(),
            "k=5 ({:.2}s) must answer faster than serial ({:.2}s)",
            rp.mean_response_secs(),
            rs.mean_response_secs()
        );
    }
}
