//! `guess` — a faithful implementation and simulator of the GUESS
//! non-forwarding peer-to-peer search protocol.
//!
//! GUESS replaces Gnutella's flooding with direct, client-controlled
//! *probes*: a querying peer iterates through the addresses in its own
//! **link cache** (and a per-query **query cache** fed by pongs), probing
//! one peer at a time until it has enough results. State is maintained by
//! periodic pings, shared pongs, and a probabilistic introduction rule.
//! This crate implements the protocol, the five policy points that govern
//! it, capacity limits, malicious-peer behaviour, and a deterministic
//! discrete-event simulator that reproduces the evaluation of Yang,
//! Vinograd & Garcia-Molina (ICDCS 2004).
//!
//! # Quick start
//!
//! ```no_run
//! use guess::config::Config;
//! use guess::engine::GuessSim;
//! use guess::policy::SelectionPolicy;
//! use guess::Runnable;
//!
//! let mut cfg = Config::default();
//! cfg.protocol = cfg.protocol.with_uniform_policy(SelectionPolicy::Mfs);
//! let report = GuessSim::new(cfg)?.run();
//! println!("probes/query: {:.1}", report.probes_per_query());
//! println!("unsatisfied:  {:.1}%", report.unsatisfaction() * 100.0);
//! # Ok::<(), guess::config::ConfigError>(())
//! ```
//!
//! # Module map
//!
//! | module | contents |
//! |---|---|
//! | [`addr`] | peer addresses, slots, allocation |
//! | [`bad_registry`] | slot-indexed slab of live malicious peers |
//! | [`entry`] | the `{addr, TS, NumFiles, NumRes}` cache entry |
//! | [`link_cache`] | the bounded neighbor cache with policy eviction |
//! | [`policy`] | Random/MRU/LRU/MFS/MR selection + replacement mirrors |
//! | [`capacity`] | `MaxProbesPerSecond` admission metering |
//! | [`message`] | pings, pongs, probes, replies |
//! | [`peer`] | per-peer state, honest and malicious |
//! | [`config`] | Tables 1 & 2 parameters + run controls |
//! | [`engine`] | the discrete-event network simulator |
//! | [`metrics`] | run reports: every number the figures plot |
//! | [`graph`] | union-find connectivity of the conceptual overlay |
//! | [`push`] | CUP-style push maintenance: interest registry + update plane |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod bad_registry;
pub mod capacity;
pub mod config;
pub mod engine;
pub mod entry;
pub mod graph;
pub mod link_cache;
pub mod message;
pub mod metrics;
pub mod payments;
pub mod peer;
pub mod policy;
pub mod push;
pub mod reputation;

pub use config::{
    AdaptiveParallelism, AdaptivePing, BadPongBehavior, Config, ConfigError, ProtocolParams,
    PushParams, RunParams, SystemParams,
};
pub use engine::{run_lanes, GuessSim};
pub use metrics::{MetricsCollector, QueryOutcome, RunReport};
pub use payments::PaymentParams;
pub use policy::{ReplacementPolicy, SelectionPolicy};
pub use simkit::scenario::MaintenanceMode;
pub use simkit::sim::{Runnable, SimReport};
