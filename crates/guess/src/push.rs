//! Push-based cache maintenance plane (CUP-style).
//!
//! GUESS as specified keeps link caches fresh purely by *pulling*: periodic
//! pings elicit pongs, and a stale entry lingers until the next probe
//! discovers it dead. This module adds the bookkeeping for the opposite
//! discipline, modeled on CUP (Roussopoulos & Baker): peers that learned of
//! a cache entry via a pong **register interest** with the entry's subject,
//! and the subject **pushes** controlled updates — invalidations when it
//! dies or leaves, refreshes on its periodic maintenance cycle — along
//! those interest edges.
//!
//! The plane itself is pure state; the engine drives it:
//!
//! * **Interest registry** — per-slot bounded lists of watchers. A watcher
//!   is recorded as `(slot, addr)` so delivery can detect that the watcher
//!   instance has since died and its slot was recycled. Lists are capped at
//!   `interest_cap`; the oldest registration is evicted first, which keeps
//!   per-subject push fan-in bounded no matter how widely a pong travels.
//! * **Dissemination jobs** — in-flight update-tree nodes. An update is
//!   pushed to the first `fanout` watchers directly; the residue is split
//!   round-robin among the watchers that accepted delivery and forwarded
//!   one relay hop later (TTL-bounded), mirroring CUP's tree dissemination.
//!   Jobs live in a free-list slab so the scheduled [`engine`](crate::engine)
//!   event carries only a `u32` id.
//! * **Coalescing flags** — at most one refresh flush is pending per slot;
//!   further refresh requests inside the coalesce window merge into it.
//!
//! Nothing here touches an RNG or schedules events, so a run in
//! [`MaintenanceMode::Pull`](crate::MaintenanceMode) — where the engine
//! never calls into the plane — is byte-identical to a build without it.

use crate::addr::{PeerAddr, SlotId};

/// A registered watcher: a peer holding the subject's cache entry.
///
/// The slot pins the watcher to its incarnation: if the watcher dies and
/// its slot is reborn under a new address, `(slot, addr)` no longer names
/// the current occupant and delivery is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Slot the watcher occupied when it registered.
    pub slot: SlotId,
    /// The watcher's peer address.
    pub addr: PeerAddr,
}

/// What a pushed update does at the recipient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// The subject died or left: drop its entry from the watcher's cache.
    Invalidate,
    /// The subject re-published: touch its entry's timestamp.
    Refresh,
}

/// One in-flight node of a dissemination tree.
///
/// Created by the engine when a subtree is delegated to a relay; consumed
/// when the scheduled `PushStep` event fires.
#[derive(Debug, Clone)]
pub struct PushJob {
    /// Update semantics applied at each recipient.
    pub kind: UpdateKind,
    /// The peer the update is about.
    pub subject: PeerAddr,
    /// Remaining relay hops; the engine drops the residue at zero.
    pub ttl: u32,
    /// Watchers this node must cover (directly or via further relays).
    pub share: Vec<Interest>,
}

/// State for the push maintenance plane: interest registry, coalescing
/// flags, and the slab of in-flight dissemination jobs.
#[derive(Debug)]
pub struct PushPlane {
    cap: usize,
    interest: Vec<Vec<Interest>>,
    refresh_pending: Vec<bool>,
    jobs: Vec<Option<PushJob>>,
    free: Vec<u32>,
}

impl PushPlane {
    /// Creates a plane for `slots` network slots with per-subject interest
    /// lists capped at `interest_cap` watchers.
    ///
    /// # Panics
    ///
    /// Panics if `interest_cap` is zero (validated upstream by
    /// [`Config::validate`](crate::config::Config::validate)).
    #[must_use]
    pub fn new(interest_cap: usize, slots: usize) -> Self {
        assert!(interest_cap > 0, "interest cap must be positive");
        PushPlane {
            cap: interest_cap,
            interest: vec![Vec::new(); slots],
            refresh_pending: vec![false; slots],
            jobs: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Grows the per-slot tables to cover `slots` slots (no-op if already
    /// that large). Called when a scenario mass-join widens the network.
    pub fn grow_to(&mut self, slots: usize) {
        if slots > self.interest.len() {
            self.interest.resize(slots, Vec::new());
            self.refresh_pending.resize(slots, false);
        }
    }

    /// Number of slots the plane currently covers.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.interest.len()
    }

    /// Registers `watcher` on the subject occupying `subject_slot`.
    ///
    /// Duplicate registrations (same watcher address) are ignored. When the
    /// list is full the oldest registration is evicted. Returns `true` if
    /// the watcher was newly added.
    pub fn register(&mut self, subject_slot: SlotId, watcher: Interest) -> bool {
        let list = &mut self.interest[subject_slot.index()];
        if list.iter().any(|w| w.addr == watcher.addr) {
            return false;
        }
        if list.len() == self.cap {
            list.remove(0);
        }
        list.push(watcher);
        true
    }

    /// The current watchers of the subject occupying `slot`.
    #[must_use]
    pub fn interest(&self, slot: SlotId) -> &[Interest] {
        &self.interest[slot.index()]
    }

    /// Drains and returns the watcher list for `slot`, leaving it empty
    /// (and deallocated) for the slot's next occupant. Called on death so
    /// the final invalidation consumes the registry.
    #[must_use]
    pub fn take_interest(&mut self, slot: SlotId) -> Vec<Interest> {
        std::mem::take(&mut self.interest[slot.index()])
    }

    /// Requests a refresh flush for `slot`.
    ///
    /// Returns `true` if no flush was pending — the caller must then
    /// schedule one. Returns `false` if a flush is already scheduled; the
    /// request coalesces into it.
    pub fn request_refresh(&mut self, slot: SlotId) -> bool {
        let pending = &mut self.refresh_pending[slot.index()];
        if *pending {
            false
        } else {
            *pending = true;
            true
        }
    }

    /// Clears the pending-refresh flag for `slot`. Called when the
    /// scheduled flush event fires (whether or not the subject survived).
    pub fn clear_refresh(&mut self, slot: SlotId) {
        self.refresh_pending[slot.index()] = false;
    }

    /// Rotates the first `k` watchers of `slot` to the back of the list.
    /// Refresh flushes are fan-out-limited (unlike invalidations, which
    /// walk the whole tree), so successive flushes rotate through the
    /// registry and cover every watcher round-robin.
    pub fn rotate(&mut self, slot: SlotId, k: usize) {
        let list = &mut self.interest[slot.index()];
        let k = k.min(list.len());
        list.rotate_left(k);
    }

    /// Parks an in-flight dissemination job and returns its slab id, for
    /// embedding in a scheduled event. Freed ids are recycled.
    pub fn enqueue_job(&mut self, job: PushJob) -> u32 {
        if let Some(id) = self.free.pop() {
            self.jobs[id as usize] = Some(job);
            id
        } else {
            let id = u32::try_from(self.jobs.len()).expect("push job slab overflow");
            self.jobs.push(Some(job));
            id
        }
    }

    /// Removes and returns the job with slab id `id`, recycling the slot.
    /// Returns `None` if the id was already consumed.
    pub fn take_job(&mut self, id: u32) -> Option<PushJob> {
        let job = self.jobs.get_mut(id as usize)?.take();
        if job.is_some() {
            self.free.push(id);
        }
        job
    }

    /// Number of dissemination jobs currently in flight.
    #[must_use]
    pub fn jobs_in_flight(&self) -> usize {
        self.jobs.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(raw: u32) -> Interest {
        Interest {
            slot: SlotId(raw),
            addr: PeerAddr::from_raw(raw + 100),
        }
    }

    #[test]
    fn register_dedups_and_caps_with_oldest_out_first() {
        let mut p = PushPlane::new(3, 4);
        let s = SlotId(1);
        assert!(p.register(s, w(0)));
        assert!(!p.register(s, w(0)), "duplicate watcher is ignored");
        assert!(p.register(s, w(1)));
        assert!(p.register(s, w(2)));
        assert_eq!(p.interest(s).len(), 3);
        // Fourth watcher evicts the oldest (w0).
        assert!(p.register(s, w(3)));
        assert_eq!(p.interest(s).len(), 3);
        assert!(!p.interest(s).iter().any(|i| i.addr == w(0).addr));
        assert!(p.interest(s).iter().any(|i| i.addr == w(3).addr));
        // Other slots are untouched.
        assert!(p.interest(SlotId(0)).is_empty());
    }

    #[test]
    fn take_interest_drains_for_the_next_occupant() {
        let mut p = PushPlane::new(4, 2);
        let s = SlotId(0);
        p.register(s, w(5));
        p.register(s, w(6));
        let drained = p.take_interest(s);
        assert_eq!(drained.len(), 2);
        assert!(p.interest(s).is_empty());
        // The slot accepts fresh registrations afterwards.
        assert!(p.register(s, w(7)));
        assert_eq!(p.interest(s).len(), 1);
    }

    #[test]
    fn refresh_requests_coalesce_until_cleared() {
        let mut p = PushPlane::new(2, 2);
        let s = SlotId(1);
        assert!(p.request_refresh(s), "first request schedules a flush");
        assert!(!p.request_refresh(s), "second request coalesces");
        assert!(!p.request_refresh(s));
        p.clear_refresh(s);
        assert!(p.request_refresh(s), "flag resets after the flush fires");
        // Slots are independent.
        assert!(p.request_refresh(SlotId(0)));
    }

    #[test]
    fn rotate_cycles_watchers_round_robin() {
        let mut p = PushPlane::new(4, 2);
        let s = SlotId(0);
        for i in 0..4 {
            p.register(s, w(i));
        }
        p.rotate(s, 2);
        let order: Vec<_> = p.interest(s).iter().map(|i| i.addr).collect();
        assert_eq!(order, vec![w(2).addr, w(3).addr, w(0).addr, w(1).addr]);
        // Over-long rotations clamp to the list length.
        p.rotate(s, 99);
        assert_eq!(p.interest(s).len(), 4);
        p.rotate(SlotId(1), 3); // empty list: no-op
    }

    #[test]
    fn job_slab_recycles_ids() {
        let mut p = PushPlane::new(2, 1);
        let job = |ttl| PushJob {
            kind: UpdateKind::Invalidate,
            subject: PeerAddr::from_raw(9),
            ttl,
            share: vec![w(0)],
        };
        let a = p.enqueue_job(job(3));
        let b = p.enqueue_job(job(2));
        assert_ne!(a, b);
        assert_eq!(p.jobs_in_flight(), 2);
        let got = p.take_job(a).expect("job present");
        assert_eq!(got.ttl, 3);
        assert!(p.take_job(a).is_none(), "double take yields nothing");
        assert_eq!(p.jobs_in_flight(), 1);
        // The freed id is reused before the slab grows.
        let c = p.enqueue_job(job(1));
        assert_eq!(c, a);
        assert_eq!(p.jobs_in_flight(), 2);
        assert_eq!(p.take_job(c).expect("recycled job").ttl, 1);
        assert_eq!(p.take_job(b).expect("job present").ttl, 2);
        assert_eq!(p.jobs_in_flight(), 0);
    }

    #[test]
    fn grow_to_widens_without_losing_state() {
        let mut p = PushPlane::new(2, 2);
        p.register(SlotId(1), w(3));
        assert!(p.request_refresh(SlotId(0)));
        p.grow_to(5);
        assert_eq!(p.slots(), 5);
        assert_eq!(p.interest(SlotId(1)).len(), 1);
        assert!(!p.request_refresh(SlotId(0)), "flag survives the resize");
        assert!(p.interest(SlotId(4)).is_empty());
        // Shrinking is a no-op.
        p.grow_to(3);
        assert_eq!(p.slots(), 5);
    }
}
