//! Run metrics: everything the paper's figures are plotted from.

use simkit::stats::{CounterSet, Histogram, Summary};

/// The outcome of one executed query, fed to the collector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryOutcome {
    /// Probes that reached a live peer which processed the query.
    pub good_probes: u32,
    /// Probes sent to peers that had already left the network.
    pub dead_probes: u32,
    /// Probes refused by overloaded peers.
    pub refused_probes: u32,
    /// Whether `NumDesiredResults` results were obtained.
    pub satisfied: bool,
    /// Wall-clock the querying user waited, in seconds.
    pub response_secs: f64,
}

impl QueryOutcome {
    /// Total probes sent for this query.
    #[must_use]
    pub fn total_probes(&self) -> u32 {
        self.good_probes + self.dead_probes + self.refused_probes
    }
}

/// Aggregated results of a simulation run.
///
/// Every figure in §6 of the paper reads off one or more of these fields;
/// the experiment harness in `guess-bench` assembles them into the paper's
/// tables and series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Number of (post-warm-up) queries executed.
    pub queries: u64,
    /// Queries that ended without enough results.
    pub unsatisfied: u64,
    /// Per-query good probes.
    pub good_probes: Summary,
    /// Per-query dead probes.
    pub dead_probes: Summary,
    /// Per-query refused probes.
    pub refused_probes: Summary,
    /// Per-query total probes.
    pub total_probes: Summary,
    /// Per-query response time, seconds.
    pub response_time: Summary,
    /// 95th-percentile response time, seconds (worst-case user
    /// experience, §6.2).
    pub response_p95: Option<f64>,
    /// Probes received per peer instance, sorted descending — the ranked
    /// load curve of Figure 13.
    pub loads: Vec<u64>,
    /// Mean post-warm-up fraction of link-cache entries that are live.
    pub live_fraction: Option<f64>,
    /// Mean post-warm-up absolute number of live link-cache entries.
    pub live_absolute: Option<f64>,
    /// Mean post-warm-up count of "unpoisoned" entries (live *good* peers)
    /// in good peers' caches — Figures 18 and 21.
    pub good_entries: Option<f64>,
    /// Mean post-warm-up size of the largest connected component of the
    /// live overlay — Figures 6 and 7.
    pub largest_component: Option<f64>,
    /// Mean post-warm-up staleness of link-cache entries in good peers'
    /// caches: seconds the entry's information has been *wrong* — zero
    /// for entries whose subject is still alive, time since the
    /// subject's death otherwise. The `repro maintenance` experiment
    /// trades this coherence lag against maintenance bandwidth across
    /// `MaintenanceMode`s.
    pub mean_staleness: Option<f64>,
    /// Miscellaneous event counters.
    pub counters: CounterSet,
    /// Kernel events processed over the whole run (including warm-up).
    /// Wall-clock throughput denominators for `repro bench`; not part of
    /// any rendered report.
    pub events_processed: u64,
}

impl RunReport {
    /// Fraction of queries that went unsatisfied; zero when no queries ran.
    #[must_use]
    pub fn unsatisfaction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.unsatisfied as f64 / self.queries as f64
        }
    }

    /// Mean probes per query.
    #[must_use]
    pub fn probes_per_query(&self) -> f64 {
        self.total_probes.mean()
    }

    /// Mean good probes per query.
    #[must_use]
    pub fn good_per_query(&self) -> f64 {
        self.good_probes.mean()
    }

    /// Mean dead probes per query.
    #[must_use]
    pub fn dead_per_query(&self) -> f64 {
        self.dead_probes.mean()
    }

    /// Mean refused probes per query.
    #[must_use]
    pub fn refused_per_query(&self) -> f64 {
        self.refused_probes.mean()
    }

    /// Mean response time in seconds.
    #[must_use]
    pub fn mean_response_secs(&self) -> f64 {
        self.response_time.mean()
    }
}

/// Accumulates metrics during a run and finalizes into a [`RunReport`].
#[derive(Debug, Default)]
pub struct MetricsCollector {
    queries: u64,
    unsatisfied: u64,
    good: Summary,
    dead: Summary,
    refused: Summary,
    total: Summary,
    response: Summary,
    response_hist: Histogram,
    loads: Vec<u64>,
    live_fraction_samples: Summary,
    live_absolute_samples: Summary,
    good_entry_samples: Summary,
    staleness_samples: Summary,
    lcc_samples: Summary,
    counters: CounterSet,
}

impl MetricsCollector {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Records one completed query.
    pub fn record_query(&mut self, outcome: QueryOutcome) {
        self.queries += 1;
        if !outcome.satisfied {
            self.unsatisfied += 1;
        }
        self.good.record(f64::from(outcome.good_probes));
        self.dead.record(f64::from(outcome.dead_probes));
        self.refused.record(f64::from(outcome.refused_probes));
        self.total.record(f64::from(outcome.total_probes()));
        self.response.record(outcome.response_secs);
        self.response_hist.record(outcome.response_secs);
    }

    /// Records the lifetime probe load of a peer that died (or survived to
    /// the end of the run).
    pub fn record_load(&mut self, probes_received: u64) {
        self.loads.push(probes_received);
    }

    /// Records one cache-health snapshot. `staleness` is the snapshot's
    /// mean per-entry coherence lag in seconds (zero for entries whose
    /// subject is alive, time since the subject's death otherwise).
    pub fn record_cache_health(
        &mut self,
        live_fraction: f64,
        live_absolute: f64,
        good_entries: f64,
        staleness: f64,
    ) {
        self.live_fraction_samples.record(live_fraction);
        self.live_absolute_samples.record(live_absolute);
        self.good_entry_samples.record(good_entries);
        self.staleness_samples.record(staleness);
    }

    /// Records one connectivity snapshot.
    pub fn record_lcc(&mut self, size: usize) {
        self.lcc_samples.record(size as f64);
    }

    /// Access to the named counters.
    pub fn counters_mut(&mut self) -> &mut CounterSet {
        &mut self.counters
    }

    /// Queries recorded so far.
    #[must_use]
    pub fn queries_recorded(&self) -> u64 {
        self.queries
    }

    /// Absorbs another collector's accumulated state — how the lane
    /// runner ([`crate::engine::run_lanes`]) folds per-lane collectors
    /// into one report, in lane-index order. Welford summaries merge
    /// exactly ([`Summary::merge`]); load vectors concatenate (the
    /// final sort lives in [`MetricsCollector::finish`]); counters add.
    pub fn absorb(&mut self, other: MetricsCollector) {
        self.queries += other.queries;
        self.unsatisfied += other.unsatisfied;
        self.good.merge(&other.good);
        self.dead.merge(&other.dead);
        self.refused.merge(&other.refused);
        self.total.merge(&other.total);
        self.response.merge(&other.response);
        self.response_hist.merge(&other.response_hist);
        self.loads.extend_from_slice(&other.loads);
        self.live_fraction_samples
            .merge(&other.live_fraction_samples);
        self.live_absolute_samples
            .merge(&other.live_absolute_samples);
        self.good_entry_samples.merge(&other.good_entry_samples);
        self.staleness_samples.merge(&other.staleness_samples);
        self.lcc_samples.merge(&other.lcc_samples);
        self.counters.merge(&other.counters);
    }

    /// Finalizes into a report.
    #[must_use]
    pub fn finish(mut self) -> RunReport {
        self.loads.sort_unstable_by(|a, b| b.cmp(a));
        let opt = |s: &Summary| (s.count() > 0).then(|| s.mean());
        let response_p95 = self.response_hist.percentile(95.0);
        RunReport {
            queries: self.queries,
            unsatisfied: self.unsatisfied,
            good_probes: self.good,
            dead_probes: self.dead,
            refused_probes: self.refused,
            total_probes: self.total,
            response_time: self.response,
            response_p95,
            loads: self.loads,
            live_fraction: opt(&self.live_fraction_samples),
            live_absolute: opt(&self.live_absolute_samples),
            good_entries: opt(&self.good_entry_samples),
            largest_component: opt(&self.lcc_samples),
            mean_staleness: opt(&self.staleness_samples),
            counters: self.counters,
            // The collector never sees the kernel; the engine fills this
            // in after `Kernel::run` returns.
            events_processed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(good: u32, dead: u32, refused: u32, satisfied: bool) -> QueryOutcome {
        QueryOutcome {
            good_probes: good,
            dead_probes: dead,
            refused_probes: refused,
            satisfied,
            response_secs: 0.2 * f64::from(good + dead + refused),
        }
    }

    #[test]
    fn totals_add_up() {
        assert_eq!(outcome(3, 2, 1, true).total_probes(), 6);
    }

    #[test]
    fn unsatisfaction_fraction() {
        let mut c = MetricsCollector::new();
        c.record_query(outcome(5, 0, 0, true));
        c.record_query(outcome(10, 2, 0, false));
        c.record_query(outcome(1, 0, 0, true));
        c.record_query(outcome(0, 4, 0, false));
        let r = c.finish();
        assert_eq!(r.queries, 4);
        assert_eq!(r.unsatisfied, 2);
        assert!((r.unsatisfaction() - 0.5).abs() < 1e-12);
        assert_eq!(r.probes_per_query(), (5.0 + 12.0 + 1.0 + 4.0) / 4.0);
        assert_eq!(r.good_per_query(), 4.0);
        assert_eq!(r.dead_per_query(), 1.5);
        assert_eq!(r.refused_per_query(), 0.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = MetricsCollector::new().finish();
        assert_eq!(r.queries, 0);
        assert_eq!(r.unsatisfaction(), 0.0);
        assert_eq!(r.probes_per_query(), 0.0);
        assert!(r.live_fraction.is_none());
        assert!(r.largest_component.is_none());
        assert!(r.loads.is_empty());
    }

    #[test]
    fn loads_sorted_descending() {
        let mut c = MetricsCollector::new();
        c.record_load(5);
        c.record_load(100);
        c.record_load(20);
        let r = c.finish();
        assert_eq!(r.loads, vec![100, 20, 5]);
    }

    #[test]
    fn snapshots_average() {
        let mut c = MetricsCollector::new();
        c.record_cache_health(0.5, 40.0, 30.0, 120.0);
        c.record_cache_health(0.7, 60.0, 50.0, 80.0);
        c.record_lcc(900);
        c.record_lcc(950);
        let r = c.finish();
        assert!((r.live_fraction.unwrap() - 0.6).abs() < 1e-12);
        assert!((r.live_absolute.unwrap() - 50.0).abs() < 1e-12);
        assert!((r.good_entries.unwrap() - 40.0).abs() < 1e-12);
        assert!((r.largest_component.unwrap() - 925.0).abs() < 1e-12);
        assert!((r.mean_staleness.unwrap() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn response_time_recorded() {
        let mut c = MetricsCollector::new();
        c.record_query(outcome(10, 0, 0, true));
        let r = c.finish();
        assert!((r.mean_response_secs() - 2.0).abs() < 1e-12);
        assert_eq!(r.response_p95, Some(2.0));
    }

    #[test]
    fn response_p95_tracks_the_tail() {
        let mut c = MetricsCollector::new();
        for _ in 0..99 {
            c.record_query(outcome(1, 0, 0, true)); // 0.2s each
        }
        c.record_query(outcome(500, 0, 0, false)); // 100s straggler
        let r = c.finish();
        assert_eq!(
            r.response_p95,
            Some(0.2),
            "p95 sits below the single straggler"
        );
        assert!(r.response_time.max().unwrap() > 99.0);
    }

    #[test]
    fn absorb_equals_sequential_recording() {
        let mut all = MetricsCollector::new();
        let mut left = MetricsCollector::new();
        let mut right = MetricsCollector::new();
        for (c, sink) in [(5u32, true), (9, false), (2, true), (7, false)]
            .iter()
            .enumerate()
            .map(|(i, &(g, s))| ((g, s), i % 2))
        {
            let o = outcome(c.0, 1, 0, c.1);
            all.record_query(o);
            if sink == 0 { &mut left } else { &mut right }.record_query(o);
        }
        all.record_load(10);
        all.record_load(3);
        left.record_load(3);
        right.record_load(10);
        all.record_cache_health(0.5, 40.0, 30.0, 10.0);
        right.record_cache_health(0.5, 40.0, 30.0, 10.0);
        all.record_lcc(90);
        left.record_lcc(90);
        all.counters_mut().add("pings", 4);
        left.counters_mut().add("pings", 1);
        right.counters_mut().add("pings", 3);

        left.absorb(right);
        let (merged, direct) = (left.finish(), all.finish());
        assert_eq!(merged.queries, direct.queries);
        assert_eq!(merged.unsatisfied, direct.unsatisfied);
        assert!((merged.probes_per_query() - direct.probes_per_query()).abs() < 1e-12);
        assert!((merged.mean_response_secs() - direct.mean_response_secs()).abs() < 1e-12);
        assert_eq!(merged.response_p95, direct.response_p95);
        assert_eq!(merged.loads, direct.loads);
        assert_eq!(merged.live_fraction, direct.live_fraction);
        assert_eq!(merged.largest_component, direct.largest_component);
        assert_eq!(merged.counters.get("pings"), 4);
    }

    #[test]
    fn counters_pass_through() {
        let mut c = MetricsCollector::new();
        c.counters_mut().add("pings", 7);
        let r = c.finish();
        assert_eq!(r.counters.get("pings"), 7);
    }
}
